#ifndef EXPBSI_ENGINE_DEEPDIVE_H_
#define EXPBSI_ENGINE_DEEPDIVE_H_

#include <cstdint>
#include <vector>

#include "engine/experiment_data.h"
#include "engine/scorecard.h"

namespace expbsi {

// Deep-dive analysis (§4.4): ad-hoc investigation of metric movements by
// analysis-unit attributes (dimension filters -- heterogeneous effects) or
// by time period (daily breakdown -- novelty effects). The computation is
// the scorecard logic with one extra step: filtering the expose log by
// dimension predicates (the paper's "mulBSI(filter)" pipeline, e.g.
// client-type = 1 AND client-version > 134).

// One predicate on a dimension log.
struct DimensionPredicate {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };

  uint32_t dimension_id = 0;
  Op op = Op::kEq;
  uint64_t value = 0;
};

// Units of one segment satisfying ALL predicates on `date` (binary filters
// combined with mulBSI, i.e. intersection). Units missing a dimension value
// do not satisfy predicates on it.
RoaringBitmap DimensionFilterMask(const SegmentBsiData& segment,
                                  const std::vector<DimensionPredicate>& preds,
                                  Date date);

// Scorecard bucket values restricted to units passing the dimension filter
// (evaluated on `dim_date`). Mirrors ComputeStrategyMetricBsi otherwise.
BucketValues ComputeStrategyMetricBsiFiltered(
    const ExperimentBsiData& data, uint64_t strategy_id, uint64_t metric_id,
    Date date_lo, Date date_hi,
    const std::vector<DimensionPredicate>& preds, Date dim_date);

// Heterogeneous-effect breakdown: one scorecard entry per dimension value in
// `dim_values` (e.g. client-type in {1,2,3}), each restricted to units with
// that value on dim_date.
struct DimensionBreakdownEntry {
  uint64_t dimension_value = 0;
  ScorecardEntry entry;
};
std::vector<DimensionBreakdownEntry> ComputeDimensionBreakdown(
    const ExperimentBsiData& data, uint64_t control_id, uint64_t treatment_id,
    uint64_t metric_id, Date date_lo, Date date_hi, uint32_t dimension_id,
    const std::vector<uint64_t>& dim_values, Date dim_date);

// Novelty-effect breakdown: one scorecard entry per day in
// [date_lo, date_hi], each computed over that single day.
std::vector<ScorecardEntry> ComputeDailyBreakdown(
    const ExperimentBsiData& data, uint64_t control_id, uint64_t treatment_id,
    uint64_t metric_id, Date date_lo, Date date_hi);

}  // namespace expbsi

#endif  // EXPBSI_ENGINE_DEEPDIVE_H_
