#ifndef EXPBSI_ENGINE_EXPERIMENT_DATA_H_
#define EXPBSI_ENGINE_EXPERIMENT_DATA_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "expdata/bsi_builder.h"
#include "expdata/generator.h"
#include "expdata/position_encoder.h"
#include "expdata/schema.h"

namespace expbsi {

// All BSI representations of one segment, sharing one position encoder
// (which is what makes every BSI of the segment join-free, §4.1.1).
struct SegmentBsiData {
  PositionEncoder encoder;
  std::unordered_map<uint64_t, ExposeBsi> expose;               // by strategy
  std::map<std::pair<uint64_t, Date>, MetricBsi> metrics;       // (metric, date)
  std::map<std::pair<uint32_t, Date>, DimensionBsi> dimensions; // (dim, date)

  const ExposeBsi* FindExpose(uint64_t strategy_id) const;
  const MetricBsi* FindMetric(uint64_t metric_id, Date date) const;
  const DimensionBsi* FindDimension(uint32_t dimension_id, Date date) const;
};

// The whole dataset in BSI form, segment-major.
struct ExperimentBsiData {
  int num_segments = 0;
  // Number of statistical buckets. When bucket_equals_segment is true, the
  // bucket of a unit IS its segment and per-bucket values have num_segments
  // entries; otherwise expose logs carry a bucket BSI with num_buckets ids.
  int num_buckets = 0;
  bool bucket_equals_segment = true;

  std::vector<SegmentBsiData> segments;

  // Bucket count as used by BucketValues vectors.
  int effective_buckets() const {
    return bucket_equals_segment ? num_segments : num_buckets;
  }
};

// Converts a generated dataset to its BSI representation.
// `engagement_ordered_encoding` pre-assigns positions by engagement rank
// (§3.4.1, the paper's compact layout); otherwise positions are assigned in
// row-arrival order (the ablation baseline).
ExperimentBsiData BuildExperimentBsiData(const Dataset& dataset,
                                         bool engagement_ordered_encoding);

// Parallel variant: segments build concurrently on `num_threads` workers --
// segments are the paper's unit of parallel computing (§3.2), and BSI
// construction is embarrassingly parallel across them. Output is identical
// to the serial builder.
ExperimentBsiData BuildExperimentBsiDataParallel(
    const Dataset& dataset, bool engagement_ordered_encoding,
    int num_threads);

}  // namespace expbsi

#endif  // EXPBSI_ENGINE_EXPERIMENT_DATA_H_
