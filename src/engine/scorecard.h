#ifndef EXPBSI_ENGINE_SCORECARD_H_
#define EXPBSI_ENGINE_SCORECARD_H_

#include <cstdint>
#include <vector>

#include "engine/experiment_data.h"
#include "obs/srm.h"
#include "stats/bucket_stats.h"
#include "stats/ttest.h"

namespace expbsi {

// Scorecard computation (§4.2) on the BSI representation: for each
// (strategy, metric) the per-bucket sums and exposed-unit counts, then the
// metric value and a t-test against the control strategy.
//
// The per-segment, per-day kernel is exactly the paper's SQL:
//   expose         = (expose-date <= date)            -- a range search
//   filtered-value = value * expose                   -- a binary multiply
//   bucket-value   = sum(filtered-value) [by bucket]  -- slice popcounts
// summed across days and merged across segments.

// Per-bucket sums and counts of one strategy-metric over dates
// [date_lo, date_hi] (inclusive). The exposure filter is evaluated per day,
// so a unit's values only count from its first-expose date onward; the
// denominator is the units exposed by date_hi.
BucketValues ComputeStrategyMetricBsi(const ExperimentBsiData& data,
                                      uint64_t strategy_id,
                                      uint64_t metric_id, Date date_lo,
                                      Date date_hi);

// Ratio metric between two metric logs (e.g. page-click-rate = clicks /
// page-views): per-bucket numerator sums paired with denominator sums, so
// EstimateRatio yields the delta-method variance of the ratio-of-sums.
// Both metrics are filtered by the same per-day exposure masks.
BucketValues ComputeStrategyRatioMetricBsi(const ExperimentBsiData& data,
                                           uint64_t strategy_id,
                                           uint64_t numerator_metric_id,
                                           uint64_t denominator_metric_id,
                                           Date date_lo, Date date_hi);

// Unique-visitor variant (§4.2 last paragraph): per-bucket count of distinct
// exposed units with a non-zero value on any day in range. Per-day states
// (value > 0) are merged with distinctPos before counting, which is the
// paper's non-decomposable-aggregate treatment.
BucketValues ComputeStrategyUniqueVisitorsBsi(const ExperimentBsiData& data,
                                              uint64_t strategy_id,
                                              uint64_t metric_id, Date date_lo,
                                              Date date_hi);

// Cached per-day exposure masks of one strategy across all segments. The
// paper's pre-compute jobs batch many metrics of the same strategy precisely
// so this filter work is paid once per batch, not once per pair (§5.2).
class ExposeMaskCache {
 public:
  static ExposeMaskCache Build(const ExperimentBsiData& data,
                               uint64_t strategy_id, Date date_lo,
                               Date date_hi);

  // Units of `segment` exposed on or before `date`.
  const RoaringBitmap& Mask(int segment, Date date) const;

  uint64_t strategy_id() const { return strategy_id_; }
  Date date_lo() const { return date_lo_; }
  Date date_hi() const { return date_hi_; }

 private:
  uint64_t strategy_id_ = 0;
  Date date_lo_ = 0;
  Date date_hi_ = 0;
  int num_days_ = 1;
  // masks_[segment * num_days_ + (date - date_lo_)]
  std::vector<RoaringBitmap> masks_;
};

// ComputeStrategyMetricBsi served from a prebuilt mask cache (identical
// results; the expose range searches are amortized across metrics).
BucketValues ComputeStrategyMetricBsiCached(const ExperimentBsiData& data,
                                            const ExposeMaskCache& cache,
                                            uint64_t metric_id, Date date_lo,
                                            Date date_hi);

// One scorecard line: treatment vs control on one metric.
struct ScorecardEntry {
  uint64_t metric_id = 0;
  uint64_t treatment_id = 0;
  uint64_t control_id = 0;
  MetricEstimate treatment;
  MetricEstimate control;
  TTestResult ttest;
  // Sample-ratio-mismatch check over the two arms' denominators (exposed
  // units on the standard scorecard path), against an even split. A
  // mismatch means the randomization itself is suspect and the t-test above
  // should not be trusted; it is carried here -- never dropped -- so every
  // consumer sees it. See src/obs/srm.h.
  SrmResult srm;
};

// Runs the statistical comparison given the two arms' bucket values.
ScorecardEntry CompareStrategies(uint64_t metric_id, uint64_t treatment_id,
                                 const BucketValues& treatment_buckets,
                                 uint64_t control_id,
                                 const BucketValues& control_buckets);

// Covariance matrix of several ratio-metric estimates of one strategy over
// the SAME buckets (§3.3: "the covariance between metrics should be
// estimated correctly"; it feeds composite-metric inference and CUPED).
// Entry [i][j] is the delta-method covariance of metric i's and metric j's
// means; the diagonal equals each metric's var_of_mean.
std::vector<std::vector<double>> ComputeMetricCovarianceMatrix(
    const ExperimentBsiData& data, uint64_t strategy_id,
    const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi);

// Full scorecard: every (treatment strategy, metric) against the control.
std::vector<ScorecardEntry> ComputeScorecard(
    const ExperimentBsiData& data, uint64_t control_id,
    const std::vector<uint64_t>& treatment_ids,
    const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi);

}  // namespace expbsi

#endif  // EXPBSI_ENGINE_SCORECARD_H_
