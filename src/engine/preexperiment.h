#ifndef EXPBSI_ENGINE_PREEXPERIMENT_H_
#define EXPBSI_ENGINE_PREEXPERIMENT_H_

#include <cstdint>
#include <vector>

#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "stats/cuped.h"
#include "storage/preagg_tree.h"

namespace expbsi {

// Pre-experiment computation (§4.3): joins the expose log with metric data
// from BEFORE the experiment start to build the CUPED covariate. The shape
// is the scorecard computation with two changes: the expose filter is
// "exposed by as_of_date" (not per-day), and C days of metric log are folded
// with sumBSI first -- which the pre-aggregate tree accelerates.

// Per-bucket pre-period sums/counts for `strategy_id`: metric summed over
// [expt_start - lookback_days, expt_start - 1] for every unit exposed by
// `as_of_date`. Folds the days linearly with sumBSI.
BucketValues ComputePreExperimentBsi(const ExperimentBsiData& data,
                                     uint64_t strategy_id, uint64_t metric_id,
                                     Date expt_start, int lookback_days,
                                     Date as_of_date);

// Pre-aggregate index: one sumBSI tree per segment over the metric's days
// [first_date, last_date]. Build once, query any sub-range of days with
// O(log C) merges (Fig. 6).
struct PreAggIndex {
  uint64_t metric_id = 0;
  Date first_date = 0;
  Date last_date = 0;
  std::vector<PreAggTree> per_segment;
};

PreAggIndex BuildPreAggIndex(const ExperimentBsiData& data, uint64_t metric_id,
                             Date first_date, Date last_date);

// Same result as ComputePreExperimentBsi but served from the tree.
BucketValues ComputePreExperimentWithTree(const ExperimentBsiData& data,
                                          const PreAggIndex& index,
                                          uint64_t strategy_id,
                                          Date expt_start, int lookback_days,
                                          Date as_of_date);

// CUPED-adjusted scorecard line: the raw comparison plus the
// variance-reduced one, using a pooled theta across both arms.
struct CupedScorecardEntry {
  ScorecardEntry raw;
  double theta = 0.0;
  MetricEstimate treatment_adjusted;
  MetricEstimate control_adjusted;
  TTestResult adjusted_ttest;
  double treatment_variance_reduction = 0.0;
  double control_variance_reduction = 0.0;
};

CupedScorecardEntry CompareWithCuped(uint64_t metric_id,
                                     uint64_t treatment_id,
                                     const BucketValues& treatment_y,
                                     const BucketValues& treatment_x,
                                     uint64_t control_id,
                                     const BucketValues& control_y,
                                     const BucketValues& control_x);

}  // namespace expbsi

#endif  // EXPBSI_ENGINE_PREEXPERIMENT_H_
