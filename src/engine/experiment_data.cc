#include "engine/experiment_data.h"

#include <algorithm>

#include "common/check.h"
#include "common/threadpool.h"

namespace expbsi {

const ExposeBsi* SegmentBsiData::FindExpose(uint64_t strategy_id) const {
  auto it = expose.find(strategy_id);
  return it == expose.end() ? nullptr : &it->second;
}

const MetricBsi* SegmentBsiData::FindMetric(uint64_t metric_id,
                                            Date date) const {
  auto it = metrics.find({metric_id, date});
  return it == metrics.end() ? nullptr : &it->second;
}

const DimensionBsi* SegmentBsiData::FindDimension(uint32_t dimension_id,
                                                  Date date) const {
  auto it = dimensions.find({dimension_id, date});
  return it == dimensions.end() ? nullptr : &it->second;
}

namespace {

// Builds one segment's BSI data in place.
void BuildSegment(const Dataset& dataset, int seg,
                  bool engagement_ordered_encoding,
                  int bucket_count_for_builder, SegmentBsiData* sbd) {
  const SegmentData& rows = dataset.segments[seg];
  if (engagement_ordered_encoding) {
    sbd->encoder.PreassignRanked(dataset.users_by_engagement[seg]);
  }

  // Group expose rows by strategy.
  std::unordered_map<uint64_t, std::vector<ExposeRow>> expose_groups;
  for (const ExposeRow& row : rows.expose) {
    expose_groups[row.strategy_id].push_back(row);
  }
  for (auto& [strategy_id, group] : expose_groups) {
    sbd->expose.emplace(
        strategy_id,
        BuildExposeBsi(group, sbd->encoder, bucket_count_for_builder));
  }

  // Group metric rows by (metric, date).
  std::map<std::pair<uint64_t, Date>, std::vector<MetricRow>> metric_groups;
  for (const MetricRow& row : rows.metrics) {
    metric_groups[{row.metric_id, row.date}].push_back(row);
  }
  for (auto& [key, group] : metric_groups) {
    sbd->metrics.emplace(key, BuildMetricBsi(group, sbd->encoder));
  }

  // Group dimension rows by (dimension, date).
  std::map<std::pair<uint32_t, Date>, std::vector<DimensionRow>> dim_groups;
  for (const DimensionRow& row : rows.dimensions) {
    dim_groups[{row.dimension_id, row.date}].push_back(row);
  }
  for (auto& [key, group] : dim_groups) {
    sbd->dimensions.emplace(key, BuildDimensionBsi(group, sbd->encoder));
  }
}

ExperimentBsiData MakeShell(const Dataset& dataset) {
  ExperimentBsiData out;
  out.num_segments = dataset.config.num_segments;
  out.num_buckets = dataset.config.num_buckets;
  out.bucket_equals_segment = dataset.config.bucket_equals_segment;
  out.segments.resize(out.num_segments);
  return out;
}

}  // namespace

ExperimentBsiData BuildExperimentBsiData(const Dataset& dataset,
                                         bool engagement_ordered_encoding) {
  ExperimentBsiData out = MakeShell(dataset);
  const int bucket_count_for_builder =
      out.bucket_equals_segment ? 0 : out.num_buckets;
  for (int seg = 0; seg < out.num_segments; ++seg) {
    BuildSegment(dataset, seg, engagement_ordered_encoding,
                 bucket_count_for_builder, &out.segments[seg]);
  }
  return out;
}

ExperimentBsiData BuildExperimentBsiDataParallel(
    const Dataset& dataset, bool engagement_ordered_encoding,
    int num_threads) {
  CHECK_GT(num_threads, 0);
  ExperimentBsiData out = MakeShell(dataset);
  const int bucket_count_for_builder =
      out.bucket_equals_segment ? 0 : out.num_buckets;
  ThreadPool pool(num_threads);
  ParallelFor(pool, out.num_segments,
              [&dataset, &out, engagement_ordered_encoding,
               bucket_count_for_builder](int seg) {
                BuildSegment(dataset, seg, engagement_ordered_encoding,
                             bucket_count_for_builder, &out.segments[seg]);
              });
  return out;
}

}  // namespace expbsi
