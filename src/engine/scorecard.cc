#include "engine/scorecard.h"

#include "bsi/bsi_group_by.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "roaring/union_accumulator.h"

namespace expbsi {
namespace {

// Adds one segment-day's contribution to `out`.
void AccumulateSegmentDay(const ExperimentBsiData& data, int segment,
                          const ExposeBsi& expose, const MetricBsi& metric,
                          Date date, BucketValues* out) {
  const RoaringBitmap mask = expose.ExposedOnOrBefore(date);
  if (mask.IsEmpty()) return;
  if (data.bucket_equals_segment) {
    out->sums[segment] +=
        static_cast<double>(metric.value.SumUnderMask(mask));
  } else {
    const std::vector<uint64_t> sums = GroupSumByBucket(
        metric.value, expose.bucket, data.num_buckets, mask);
    for (int b = 0; b < data.num_buckets; ++b) {
      out->sums[b] += static_cast<double>(sums[b]);
    }
  }
}

// Adds the exposed-unit counts as of `date` (the metric denominator).
void AccumulateExposedCounts(const ExperimentBsiData& data, int segment,
                             const ExposeBsi& expose, Date date,
                             BucketValues* out) {
  const RoaringBitmap mask = expose.ExposedOnOrBefore(date);
  if (mask.IsEmpty()) return;
  if (data.bucket_equals_segment) {
    out->counts[segment] += static_cast<double>(mask.Cardinality());
  } else {
    const std::vector<uint64_t> counts =
        GroupCountByBucket(expose.bucket, data.num_buckets, mask);
    for (int b = 0; b < data.num_buckets; ++b) {
      out->counts[b] += static_cast<double>(counts[b]);
    }
  }
}

BucketValues MakeEmptyBuckets(const ExperimentBsiData& data) {
  BucketValues out;
  out.sums.assign(data.effective_buckets(), 0.0);
  out.counts.assign(data.effective_buckets(), 0.0);
  return out;
}

}  // namespace

BucketValues ComputeStrategyMetricBsi(const ExperimentBsiData& data,
                                      uint64_t strategy_id,
                                      uint64_t metric_id, Date date_lo,
                                      Date date_hi) {
  CHECK_LE(date_lo, date_hi);
  BucketValues out = MakeEmptyBuckets(data);
  for (int seg = 0; seg < data.num_segments; ++seg) {
    const SegmentBsiData& sbd = data.segments[seg];
    const ExposeBsi* expose = sbd.FindExpose(strategy_id);
    if (expose == nullptr) continue;
    for (Date date = date_lo; date <= date_hi; ++date) {
      const MetricBsi* metric = sbd.FindMetric(metric_id, date);
      if (metric == nullptr) continue;
      AccumulateSegmentDay(data, seg, *expose, *metric, date, &out);
    }
    AccumulateExposedCounts(data, seg, *expose, date_hi, &out);
  }
  return out;
}

BucketValues ComputeStrategyRatioMetricBsi(const ExperimentBsiData& data,
                                           uint64_t strategy_id,
                                           uint64_t numerator_metric_id,
                                           uint64_t denominator_metric_id,
                                           Date date_lo, Date date_hi) {
  BucketValues numerator = ComputeStrategyMetricBsi(
      data, strategy_id, numerator_metric_id, date_lo, date_hi);
  const BucketValues denominator = ComputeStrategyMetricBsi(
      data, strategy_id, denominator_metric_id, date_lo, date_hi);
  // The ratio's denominator is the other metric's sum, not the exposed
  // count.
  numerator.counts = denominator.sums;
  return numerator;
}

BucketValues ComputeStrategyUniqueVisitorsBsi(const ExperimentBsiData& data,
                                              uint64_t strategy_id,
                                              uint64_t metric_id, Date date_lo,
                                              Date date_hi) {
  CHECK_LE(date_lo, date_hi);
  BucketValues out = MakeEmptyBuckets(data);
  for (int seg = 0; seg < data.num_segments; ++seg) {
    const SegmentBsiData& sbd = data.segments[seg];
    const ExposeBsi* expose = sbd.FindExpose(strategy_id);
    if (expose == nullptr) continue;
    // distinctPos across days: union of per-day (value > 0 AND exposed)
    // states, accumulated lazily so N days cost one container conversion per
    // key instead of N pairwise unions.
    UnionAccumulator acc;
    for (Date date = date_lo; date <= date_hi; ++date) {
      const MetricBsi* metric = sbd.FindMetric(metric_id, date);
      if (metric == nullptr) continue;
      acc.AddOwned(RoaringBitmap::And(metric->value.existence(),
                                      expose->ExposedOnOrBefore(date)));
    }
    const RoaringBitmap visitors = acc.Finish();
    if (data.bucket_equals_segment) {
      out.sums[seg] += static_cast<double>(visitors.Cardinality());
    } else {
      const std::vector<uint64_t> counts =
          GroupCountByBucket(expose->bucket, data.num_buckets, visitors);
      for (int b = 0; b < data.num_buckets; ++b) {
        out.sums[b] += static_cast<double>(counts[b]);
      }
    }
    AccumulateExposedCounts(data, seg, *expose, date_hi, &out);
  }
  return out;
}

ExposeMaskCache ExposeMaskCache::Build(const ExperimentBsiData& data,
                                       uint64_t strategy_id, Date date_lo,
                                       Date date_hi) {
  CHECK_LE(date_lo, date_hi);
  ExposeMaskCache cache;
  cache.strategy_id_ = strategy_id;
  cache.date_lo_ = date_lo;
  cache.date_hi_ = date_hi;
  cache.num_days_ = static_cast<int>(date_hi - date_lo) + 1;
  cache.masks_.resize(static_cast<size_t>(data.num_segments) *
                      cache.num_days_);
  for (int seg = 0; seg < data.num_segments; ++seg) {
    const ExposeBsi* expose = data.segments[seg].FindExpose(strategy_id);
    if (expose == nullptr) continue;
    for (Date date = date_lo; date <= date_hi; ++date) {
      cache.masks_[static_cast<size_t>(seg) * cache.num_days_ +
                   (date - date_lo)] = expose->ExposedOnOrBefore(date);
    }
  }
  return cache;
}

const RoaringBitmap& ExposeMaskCache::Mask(int segment, Date date) const {
  DCHECK_GE(date, date_lo_);
  DCHECK_LE(date, date_hi_);
  return masks_[static_cast<size_t>(segment) * num_days_ +
                (date - date_lo_)];
}

BucketValues ComputeStrategyMetricBsiCached(const ExperimentBsiData& data,
                                            const ExposeMaskCache& cache,
                                            uint64_t metric_id, Date date_lo,
                                            Date date_hi) {
  CHECK_LE(date_lo, date_hi);
  CHECK_GE(date_lo, cache.date_lo());
  CHECK_LE(date_hi, cache.date_hi());
  BucketValues out = MakeEmptyBuckets(data);
  for (int seg = 0; seg < data.num_segments; ++seg) {
    const SegmentBsiData& sbd = data.segments[seg];
    for (Date date = date_lo; date <= date_hi; ++date) {
      const MetricBsi* metric = sbd.FindMetric(metric_id, date);
      if (metric == nullptr) continue;
      const RoaringBitmap& mask = cache.Mask(seg, date);
      if (mask.IsEmpty()) continue;
      if (data.bucket_equals_segment) {
        out.sums[seg] += static_cast<double>(metric->value.SumUnderMask(mask));
      } else {
        const ExposeBsi* expose = sbd.FindExpose(cache.strategy_id());
        const std::vector<uint64_t> sums = GroupSumByBucket(
            metric->value, expose->bucket, data.num_buckets, mask);
        for (int b = 0; b < data.num_buckets; ++b) {
          out.sums[b] += static_cast<double>(sums[b]);
        }
      }
    }
    const RoaringBitmap& final_mask = cache.Mask(seg, date_hi);
    if (final_mask.IsEmpty()) continue;
    if (data.bucket_equals_segment) {
      out.counts[seg] += static_cast<double>(final_mask.Cardinality());
    } else {
      const ExposeBsi* expose = sbd.FindExpose(cache.strategy_id());
      const std::vector<uint64_t> counts =
          GroupCountByBucket(expose->bucket, data.num_buckets, final_mask);
      for (int b = 0; b < data.num_buckets; ++b) {
        out.counts[b] += static_cast<double>(counts[b]);
      }
    }
  }
  return out;
}

ScorecardEntry CompareStrategies(uint64_t metric_id, uint64_t treatment_id,
                                 const BucketValues& treatment_buckets,
                                 uint64_t control_id,
                                 const BucketValues& control_buckets) {
  ScorecardEntry entry;
  entry.metric_id = metric_id;
  entry.treatment_id = treatment_id;
  entry.control_id = control_id;
  entry.treatment = EstimateRatio(treatment_buckets);
  entry.control = EstimateRatio(control_buckets);
  entry.ttest = WelchTTest(entry.treatment.mean, entry.treatment.var_of_mean,
                           entry.treatment.df, entry.control.mean,
                           entry.control.var_of_mean, entry.control.df);
  // Data-quality gate: the two arms' unit totals must be consistent with
  // the (even) design split before the comparison above means anything.
  entry.srm = obs::SrmCheckCounts(
      static_cast<uint64_t>(treatment_buckets.total_count()),
      static_cast<uint64_t>(control_buckets.total_count()));
  return entry;
}

std::vector<std::vector<double>> ComputeMetricCovarianceMatrix(
    const ExperimentBsiData& data, uint64_t strategy_id,
    const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi) {
  const size_t n = metric_ids.size();
  std::vector<BucketValues> buckets;
  buckets.reserve(n);
  for (uint64_t metric_id : metric_ids) {
    buckets.push_back(ComputeStrategyMetricBsi(data, strategy_id, metric_id,
                                               date_lo, date_hi));
  }
  std::vector<std::vector<double>> cov(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double c = EstimateRatioCovariance(buckets[i], buckets[j]);
      cov[i][j] = c;
      cov[j][i] = c;
    }
  }
  return cov;
}

std::vector<ScorecardEntry> ComputeScorecard(
    const ExperimentBsiData& data, uint64_t control_id,
    const std::vector<uint64_t>& treatment_ids,
    const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi) {
  obs::ScopedSpan span("scorecard");
  span.AddAttr("metrics", metric_ids.size());
  span.AddAttr("treatments", treatment_ids.size());
  std::vector<ScorecardEntry> entries;
  entries.reserve(treatment_ids.size() * metric_ids.size());
  for (uint64_t metric_id : metric_ids) {
    obs::ScopedSpan metric_span("scorecard_metric");
    metric_span.AddAttr("metric_id", metric_id);
    const BucketValues control_buckets = ComputeStrategyMetricBsi(
        data, control_id, metric_id, date_lo, date_hi);
    for (uint64_t treatment_id : treatment_ids) {
      const BucketValues treatment_buckets = ComputeStrategyMetricBsi(
          data, treatment_id, metric_id, date_lo, date_hi);
      entries.push_back(CompareStrategies(metric_id, treatment_id,
                                          treatment_buckets, control_id,
                                          control_buckets));
    }
  }
  static obs::Counter& computed = obs::GetCounter("engine.scorecard_entries");
  computed.Add(entries.size());
  return entries;
}

}  // namespace expbsi
