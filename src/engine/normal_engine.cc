#include "engine/normal_engine.h"

#include <unordered_map>

#include "common/check.h"
#include "expdata/segmenter.h"

namespace expbsi {
namespace {

struct ExposeInfo {
  Date first_expose_date;
  int bucket;
};

int BucketForRow(const Dataset& dataset, int segment, const ExposeRow& row) {
  return dataset.config.bucket_equals_segment
             ? segment
             : BucketOf(row.randomization_unit_id,
                        dataset.config.num_buckets);
}

}  // namespace

BucketValues ComputeStrategyMetricNormal(const Dataset& dataset,
                                         uint64_t strategy_id,
                                         uint64_t metric_id, Date date_lo,
                                         Date date_hi) {
  CHECK_LE(date_lo, date_hi);
  const int num_buckets = dataset.config.bucket_equals_segment
                              ? dataset.config.num_segments
                              : dataset.config.num_buckets;
  BucketValues out;
  out.sums.assign(num_buckets, 0.0);
  out.counts.assign(num_buckets, 0.0);

  for (int seg = 0; seg < dataset.config.num_segments; ++seg) {
    const SegmentData& rows = dataset.segments[seg];
    // Build side: exposed units of this strategy.
    std::unordered_map<UnitId, ExposeInfo> exposed;
    for (const ExposeRow& row : rows.expose) {
      if (row.strategy_id != strategy_id) continue;
      exposed.emplace(row.analysis_unit_id,
                      ExposeInfo{row.first_expose_date,
                                 BucketForRow(dataset, seg, row)});
    }
    if (exposed.empty()) continue;
    // Denominator: units exposed by date_hi.
    for (const auto& [unit, info] : exposed) {
      if (info.first_expose_date <= date_hi) {
        out.counts[info.bucket] += 1.0;
      }
    }
    // Probe side: metric rows in range, filtered by the expose condition.
    for (const MetricRow& row : rows.metrics) {
      if (row.metric_id != metric_id || row.date < date_lo ||
          row.date > date_hi) {
        continue;
      }
      auto it = exposed.find(row.analysis_unit_id);
      if (it == exposed.end()) continue;
      if (it->second.first_expose_date > row.date) continue;
      out.sums[it->second.bucket] += static_cast<double>(row.value);
    }
  }
  return out;
}

NormalDataIndex NormalDataIndex::Build(const Dataset& dataset) {
  NormalDataIndex index;
  for (int seg = 0; seg < dataset.config.num_segments; ++seg) {
    for (const ExposeRow& row : dataset.segments[seg].expose) {
      index.expose_[{row.strategy_id, seg}].push_back(row);
    }
    for (const MetricRow& row : dataset.segments[seg].metrics) {
      index.metrics_[{row.metric_id, seg}].push_back(row);
    }
  }
  return index;
}

const std::vector<ExposeRow>* NormalDataIndex::ExposeRows(
    uint64_t strategy_id, int segment) const {
  auto it = expose_.find({strategy_id, segment});
  return it == expose_.end() ? nullptr : &it->second;
}

const std::vector<MetricRow>* NormalDataIndex::MetricRows(
    uint64_t metric_id, int segment) const {
  auto it = metrics_.find({metric_id, segment});
  return it == metrics_.end() ? nullptr : &it->second;
}

BucketValues ComputeStrategyMetricNormalIndexed(const Dataset& dataset,
                                                const NormalDataIndex& index,
                                                uint64_t strategy_id,
                                                uint64_t metric_id,
                                                Date date_lo, Date date_hi) {
  CHECK_LE(date_lo, date_hi);
  const int num_buckets = dataset.config.bucket_equals_segment
                              ? dataset.config.num_segments
                              : dataset.config.num_buckets;
  BucketValues out;
  out.sums.assign(num_buckets, 0.0);
  out.counts.assign(num_buckets, 0.0);
  for (int seg = 0; seg < dataset.config.num_segments; ++seg) {
    const std::vector<ExposeRow>* expose_rows =
        index.ExposeRows(strategy_id, seg);
    if (expose_rows == nullptr) continue;
    std::unordered_map<UnitId, ExposeInfo> exposed;
    exposed.reserve(expose_rows->size());
    for (const ExposeRow& row : *expose_rows) {
      exposed.emplace(row.analysis_unit_id,
                      ExposeInfo{row.first_expose_date,
                                 BucketForRow(dataset, seg, row)});
    }
    for (const auto& [unit, info] : exposed) {
      (void)unit;
      if (info.first_expose_date <= date_hi) {
        out.counts[info.bucket] += 1.0;
      }
    }
    const std::vector<MetricRow>* metric_rows =
        index.MetricRows(metric_id, seg);
    if (metric_rows == nullptr) continue;
    for (const MetricRow& row : *metric_rows) {
      if (row.date < date_lo || row.date > date_hi) continue;
      auto it = exposed.find(row.analysis_unit_id);
      if (it == exposed.end()) continue;
      if (it->second.first_expose_date > row.date) continue;
      out.sums[it->second.bucket] += static_cast<double>(row.value);
    }
  }
  return out;
}

ExposeBitmapCache ExposeBitmapCache::Build(const Dataset& dataset,
                                           uint64_t strategy_id, Date date_lo,
                                           Date date_hi) {
  CHECK_LE(date_lo, date_hi);
  ExposeBitmapCache cache;
  cache.date_lo_ = date_lo;
  cache.date_hi_ = date_hi;
  cache.num_days_ = static_cast<int>(date_hi - date_lo) + 1;
  cache.bitmaps_.resize(
      static_cast<size_t>(dataset.config.num_segments) * cache.num_days_);
  for (int seg = 0; seg < dataset.config.num_segments; ++seg) {
    for (const ExposeRow& row : dataset.segments[seg].expose) {
      if (row.strategy_id != strategy_id) continue;
      if (row.first_expose_date > date_hi) continue;
      // The unit is exposed from max(first_expose_date, date_lo) onward.
      const Date from =
          row.first_expose_date < date_lo ? date_lo : row.first_expose_date;
      for (Date d = from; d <= date_hi; ++d) {
        cache.bitmaps_[static_cast<size_t>(seg) * cache.num_days_ +
                       (d - date_lo)]
            .Add(static_cast<uint32_t>(row.analysis_unit_id));
      }
    }
  }
  return cache;
}

const RoaringBitmap& ExposeBitmapCache::For(int segment, Date date) const {
  CHECK_GE(date, date_lo_);
  CHECK_LE(date, date_hi_);
  return bitmaps_[static_cast<size_t>(segment) * num_days_ +
                  (date - date_lo_)];
}

size_t ExposeBitmapCache::SizeInBytes() const {
  size_t total = 0;
  for (const RoaringBitmap& bm : bitmaps_) total += bm.SizeInBytes();
  return total;
}

BucketValues ComputeStrategyMetricExposeBitmap(const Dataset& dataset,
                                               const ExposeBitmapCache& cache,
                                               uint64_t metric_id,
                                               Date date_lo, Date date_hi) {
  CHECK(dataset.config.bucket_equals_segment);
  CHECK_GE(date_lo, cache.date_lo());
  CHECK_LE(date_hi, cache.date_hi());
  BucketValues out;
  out.sums.assign(dataset.config.num_segments, 0.0);
  out.counts.assign(dataset.config.num_segments, 0.0);
  for (int seg = 0; seg < dataset.config.num_segments; ++seg) {
    // Scan the metric rows, filtering through the per-day expose bitmap.
    for (const MetricRow& row : dataset.segments[seg].metrics) {
      if (row.metric_id != metric_id || row.date < date_lo ||
          row.date > date_hi) {
        continue;
      }
      if (cache.For(seg, row.date)
              .Contains(static_cast<uint32_t>(row.analysis_unit_id))) {
        out.sums[seg] += static_cast<double>(row.value);
      }
    }
    out.counts[seg] +=
        static_cast<double>(cache.For(seg, date_hi).Cardinality());
  }
  return out;
}

}  // namespace expbsi
