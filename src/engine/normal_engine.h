#ifndef EXPBSI_ENGINE_NORMAL_ENGINE_H_
#define EXPBSI_ENGINE_NORMAL_ENGINE_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "expdata/generator.h"
#include "roaring/roaring_bitmap.h"
#include "stats/bucket_stats.h"

namespace expbsi {

// The two "normal format" baselines the paper compares against (§6.2, §6.3).
// They compute exactly the same bucket values as the BSI engine -- the
// integration tests assert bit-for-bit equality -- just the way the
// pre-BSI production system did.

// Baseline 1 (pre-compute, §6.2): Spark-SQL style. Per segment, hash-join
// the expose rows of `strategy_id` with the metric rows of `metric_id` on
// analysis-unit-id, filter to rows dated on/after the unit's first-expose
// date, and aggregate sums per bucket. Counts are the units exposed by
// date_hi.
BucketValues ComputeStrategyMetricNormal(const Dataset& dataset,
                                         uint64_t strategy_id,
                                         uint64_t metric_id, Date date_lo,
                                         Date date_hi);

// Partition index over the normal-format rows: rows grouped by
// (strategy, segment) and (metric, segment), the layout a Spark job reads
// when it prunes partitions. Build once; the per-pair baseline then only
// touches the rows it actually needs (matching the paper's job inputs,
// rather than rescanning the whole log per pair).
class NormalDataIndex {
 public:
  static NormalDataIndex Build(const Dataset& dataset);

  // Rows for (strategy_id, segment) / (metric_id, segment); nullptr if none.
  const std::vector<ExposeRow>* ExposeRows(uint64_t strategy_id,
                                           int segment) const;
  const std::vector<MetricRow>* MetricRows(uint64_t metric_id,
                                           int segment) const;

 private:
  std::map<std::pair<uint64_t, int>, std::vector<ExposeRow>> expose_;
  std::map<std::pair<uint64_t, int>, std::vector<MetricRow>> metrics_;
};

// Baseline 1 served from the partition index (same results, Spark-like
// partition pruning).
BucketValues ComputeStrategyMetricNormalIndexed(const Dataset& dataset,
                                                const NormalDataIndex& index,
                                                uint64_t strategy_id,
                                                uint64_t metric_id,
                                                Date date_lo, Date date_hi);

// Baseline 2 (ad-hoc, §6.3): ClickHouse style with per-day expose bitmaps.
// "Join is slow in Clickhouse": instead of joining, cache one bitmap of
// exposed user-ids per (segment, day) and filter the metric-log scan
// through it.
class ExposeBitmapCache {
 public:
  // Builds bitmaps for `strategy_id` covering days [date_lo, date_hi].
  static ExposeBitmapCache Build(const Dataset& dataset, uint64_t strategy_id,
                                 Date date_lo, Date date_hi);

  // Exposed unit-ids of `segment` as of `date`.
  const RoaringBitmap& For(int segment, Date date) const;

  Date date_lo() const { return date_lo_; }
  Date date_hi() const { return date_hi_; }

  // Total heap bytes of the cached bitmaps (memory the baseline must pin).
  size_t SizeInBytes() const;

 private:
  Date date_lo_ = 0;
  Date date_hi_ = 0;
  int num_days_ = 0;
  // bitmaps_[segment * num_days_ + day_index]
  std::vector<RoaringBitmap> bitmaps_;
};

// The bitmap-filtered scan itself. Only defined for the common case where
// buckets coincide with segments (the ad-hoc scenario of §6.3).
BucketValues ComputeStrategyMetricExposeBitmap(const Dataset& dataset,
                                               const ExposeBitmapCache& cache,
                                               uint64_t metric_id,
                                               Date date_lo, Date date_hi);

}  // namespace expbsi

#endif  // EXPBSI_ENGINE_NORMAL_ENGINE_H_
