#!/usr/bin/env bash
# Runs the benchmark suite at a pinned small scale and collects every
# measurement into one machine-readable file (BENCH_pr7.json at the repo
# root): [{"op": ..., "ns_per_op": ..., "bytes_per_op": ...,
# "allocs_per_op": ...}, ...]. Three sources feed it:
#
#   * plain bench binaries print one `BENCHJSON {...}` line per measurement,
#     which this script strips and collects verbatim;
#   * the google-benchmark binaries (micro_roaring, micro_bsi) emit their
#     native JSON, converted here to the same shape;
#   * each plain binary scrapes the metrics registry at exit (one
#     `REGISTRYJSON {...}` line, docs/OBSERVABILITY.md), appended as
#     {"op": "<bench>.registry", "registry": {...}} entries so a single
#     file carries both the timings and the counter/histogram evidence
#     behind them (kernel batch sizes, tier traffic, snapshot bytes).
#
# Each binary also writes a Prometheus text exposition to
# $EXPBSI_PROM_DIR/<bench>.prom; scripts/check_metrics.py validates the
# format before this script exits, so a malformed exposition fails CI.
#
# The scale is pinned (EXPBSI_BENCH_USERS, default 20000) so runs stay under
# a minute and results are comparable across machines of the same class; CI
# runs this as a release-mode smoke check (benches build, run, agree with
# the oracle, produce parseable numbers) with no timing assertions.
#
#   scripts/run_benches.sh               # writes ./BENCH_pr7.json
#   OUT=/tmp/b.json scripts/run_benches.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_pr7.json}"
export EXPBSI_BENCH_USERS="${EXPBSI_BENCH_USERS:-20000}"

BENCH="$BUILD_DIR/bench"
if [[ ! -x "$BENCH/ablation_multiop_kernels" ]]; then
  echo "error: bench binaries not found under $BENCH -- build first:" >&2
  echo "  cmake --preset release && cmake --build --preset release" >&2
  exit 1
fi

# Correctness gate: the BSI engine must agree with the scalar oracle before
# any timing is worth recording.
EXPBSI_PREFLIGHT_ONLY=1 "$BENCH/table5_table6_compute"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
export EXPBSI_PROM_DIR="$tmp/prom"
mkdir -p "$EXPBSI_PROM_DIR"

for b in ablation_multiop_kernels ablation_preagg_tree table5_table6_compute \
         snapshot_persistence wal_ingest net_query; do
  echo "=== $b (EXPBSI_BENCH_USERS=$EXPBSI_BENCH_USERS) ==="
  "$BENCH/$b" | tee "$tmp/$b.out"
  sed -n 's/^BENCHJSON //p' "$tmp/$b.out" >> "$tmp/lines.jsonl"
  sed -n 's/^REGISTRYJSON //p' "$tmp/$b.out" >> "$tmp/registry.jsonl"
done

for b in micro_roaring micro_bsi; do
  echo "=== $b ==="
  "$BENCH/$b" --benchmark_format=json > "$tmp/$b.json"
done

python3 - "$tmp" "$OUT" <<'PY'
import json, pathlib, sys

tmp, out = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
results = []
for line in (tmp / "lines.jsonl").read_text().splitlines():
    results.append(json.loads(line))

unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
for f in sorted(tmp.glob("micro_*.json")):
    for b in json.loads(f.read_text())["benchmarks"]:
        if b.get("run_type") != "iteration":
            continue
        results.append({
            "op": b["name"],
            "ns_per_op": b["real_time"] * unit_ns[b["time_unit"]],
        })

# Registry snapshots ride along after the timings, one entry per binary.
n_registry = 0
registry_path = tmp / "registry.jsonl"
if registry_path.exists():
    for line in registry_path.read_text().splitlines():
        snap = json.loads(line)
        results.append({
            "op": snap["bench"] + ".registry",
            "registry": snap["registry"],
        })
        n_registry += 1

out.write_text(json.dumps(results, indent=1) + "\n")
print(f"wrote {out} ({len(results) - n_registry} measurements, "
      f"{n_registry} registry snapshots)")
PY

# Exposition format gate: every .prom file the binaries wrote must be
# well-formed Prometheus text (and the collected file self-consistent).
python3 scripts/check_metrics.py --json "$OUT" "$EXPBSI_PROM_DIR"/*.prom
