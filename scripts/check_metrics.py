#!/usr/bin/env python3
"""Validates metrics registry expositions (docs/OBSERVABILITY.md).

Two kinds of input, both produced by scripts/run_benches.sh:

  * Prometheus text files (one per bench binary, `<bench>.prom`): every
    sample line must parse, every family must carry a `# TYPE` declaration,
    and histogram series must be cumulative with `_count` equal to the
    `+Inf` bucket and consistent with `_sum`. A file containing only the
    EXPBSI_NO_METRICS compiled-out comment is valid.

  * The collected BENCH json (via `--json FILE`): the `<bench>.registry`
    entries appended by run_benches.sh must either be the compiled-out
    marker or carry counters/gauges/histograms maps with monotone,
    count-consistent histogram buckets and dotted lower-case metric names.

Exit status is non-zero on the first malformed exposition, so CI fails
when an instrumentation change breaks the scrape format.

  scripts/check_metrics.py out/*.prom
  scripts/check_metrics.py --json BENCH_pr5.json out/*.prom
"""

import json
import re
import sys

NAME_RE = re.compile(r"^[a-z][a-z0-9_.]*$")
# Label values may contain \" \\ \n escapes (PromEscapeLabelValue); fleet
# expositions label every sample with node="..." (and build="...").
LABEL_PAIR = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')
PROM_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>(?:' + LABEL_PAIR + r',)*(?:' + LABEL_PAIR + r')?)\})?'
    r" (?P<value>-?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|nan|[+-]?inf))$"
)
TYPE_RE = re.compile(r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
                     r"(?P<kind>counter|gauge|histogram)$")


def fail(msg):
    print(f"check_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_prom_file(path):
    text = open(path).read()
    if "metrics compiled out" in text:
        print(f"  {path}: compiled out (EXPBSI_NO_METRICS), ok")
        return
    types = {}       # family -> counter|gauge|histogram
    samples = []     # (name, le, value)
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        m = TYPE_RE.match(line)
        if m:
            if m.group("name") in types:
                fail(f"{path}:{lineno}: duplicate TYPE for {m.group('name')}")
            types[m.group("name")] = m.group("kind")
            continue
        if line.startswith("#"):
            continue  # HELP or free comment
        m = PROM_SAMPLE_RE.match(line)
        if m is None:
            fail(f"{path}:{lineno}: unparseable sample line: {line!r}")
        labels = {lm.group("key"): lm.group("value")
                  for lm in LABEL_RE.finditer(m.group("labels") or "")}
        samples.append((m.group("name"), labels, m.group("value")))

    if not samples:
        fail(f"{path}: no samples and not marked compiled-out")

    # Histogram series are keyed by family plus the non-le labels, so a
    # fleet exposition carrying one series per node validates per node.
    hist = {}  # (family, labels) -> {"buckets": [(le, cum)], "sum", "count"}
    for name, labels, value in samples:
        le = labels.get("le")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if base in types and types[base] == "histogram":
            series = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"))
            entry = hist.setdefault((base, series), {"buckets": []})
            if name.endswith("_bucket"):
                if le is None:
                    fail(f"{path}: {name} sample without le label")
                entry["buckets"].append((le, float(value)))
            elif name.endswith("_sum"):
                entry["sum"] = float(value)
            elif name.endswith("_count"):
                entry["count"] = float(value)
            else:
                fail(f"{path}: stray histogram sample {name}")
            continue
        if name not in types:
            fail(f"{path}: sample {name} has no # TYPE declaration")
        if not name.startswith("expbsi_"):
            fail(f"{path}: metric {name} missing expbsi_ prefix")
        if types[name] == "counter" and float(value) < 0:
            fail(f"{path}: counter {name} is negative ({value})")

    for (family, _series), entry in hist.items():
        if "sum" not in entry or "count" not in entry:
            fail(f"{path}: histogram {family} missing _sum or _count")
        buckets = entry["buckets"]
        if not buckets or buckets[-1][0] != "+Inf":
            fail(f"{path}: histogram {family} does not end with le=+Inf")
        prev_le, prev_cum = None, -1.0
        for le, cum in buckets:
            if cum < prev_cum:
                fail(f"{path}: histogram {family} buckets not cumulative")
            if le != "+Inf":
                le_v = float(le)
                if prev_le is not None and le_v <= prev_le:
                    fail(f"{path}: histogram {family} le bounds not "
                         f"ascending at {le}")
                prev_le = le_v
            prev_cum = cum
        if buckets[-1][1] != entry["count"]:
            fail(f"{path}: histogram {family} +Inf bucket != _count")

    n_hist = len({family for family, _series in hist})
    print(f"  {path}: {len(types)} families ({n_hist} histograms), ok")


def check_registry_json(reg, where):
    if reg.get("compiled_out"):
        return 0
    for section in ("counters", "gauges", "histograms"):
        if section not in reg:
            fail(f"{where}: registry missing {section!r} map")
        for name in reg[section]:
            if not NAME_RE.match(name):
                fail(f"{where}: bad metric name {name!r}")
    for name, value in reg["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{where}: counter {name} not a non-negative int")
    for name, h in reg["histograms"].items():
        total, prev_le = 0, -1
        for le, n in h["buckets"]:
            if le <= prev_le:
                fail(f"{where}: histogram {name} bounds not ascending")
            if n <= 0:
                fail(f"{where}: histogram {name} has empty bucket in view")
            prev_le = le
            total += n
        if total != h["count"]:
            fail(f"{where}: histogram {name} buckets sum {total} != "
                 f"count {h['count']}")
    return len(reg["counters"]) + len(reg["gauges"]) + len(reg["histograms"])


def check_bench_json(path):
    entries = json.load(open(path))
    snaps = [e for e in entries if "registry" in e]
    if not snaps:
        fail(f"{path}: no .registry entries (bench binaries did not scrape)")
    for e in snaps:
        n = check_registry_json(e["registry"], f"{path}:{e['op']}")
        print(f"  {path}: {e['op']} ({n} metrics), ok")


def main(argv):
    args = argv[1:]
    if not args:
        print(__doc__)
        return 2
    while args and args[0] == "--json":
        check_bench_json(args[1])
        args = args[2:]
    for path in args:
        check_prom_file(path)
    print("check_metrics: all expositions well-formed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
