#!/usr/bin/env bash
# Sanitizer matrix for local runs and CI: builds and tests the repo under
# ASan+UBSan and TSan (plus the plain release build), failing on any
# sanitizer report. Mirrors .github/workflows/ci.yml so the matrix can be
# reproduced on a laptop with one command:
#
#   scripts/run_sanitizers.sh            # release + asan + tsan
#   scripts/run_sanitizers.sh asan       # one preset only
#
# The TSan leg narrows ctest to the concurrency and differential suites:
# they are the tests that actually exercise threads, and TSan's ~10x
# slowdown makes the full suite needlessly slow on small CI machines.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
PRESETS=("${@:-release}")
if [[ $# -eq 0 ]]; then
  PRESETS=(release asan tsan)
fi

for preset in "${PRESETS[@]}"; do
  echo "=== [$preset] configure + build ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] ctest ==="
  case "$preset" in
    tsan)
      ctest --preset "$preset" -j "$JOBS" \
        -R 'ConcurrencyTest|DifferentialTest|ChaosTest' ;;
    *)
      ctest --preset "$preset" -j "$JOBS" ;;
  esac
done
echo "sanitizer matrix passed: ${PRESETS[*]}"
