#!/usr/bin/env python3
"""Lint the metric catalog in docs/OBSERVABILITY.md against the source tree.

Every metric the code registers via MetricsRegistry::GetCounter / GetGauge /
GetHistogram must appear in the "### Catalog" table, and every metric the
table documents must still exist in the code.  The table also records the
instrument type ((g) gauge, (h) histogram, counter otherwise), which must
match the registration call.

Exit status is non-zero if the catalog and the code disagree in either
direction, which is how CI keeps the docs honest.
"""

import argparse
import pathlib
import re
import sys

REGISTRATION_RE = re.compile(r'Get(Counter|Gauge|Histogram)\("([a-z][a-z0-9_.]*)"\)')

# Catalog rows look like:
#   | `tier.` | `hot_hits`, `cold_blob_bytes` (h) | meaning |
ROW_RE = re.compile(r"^\|\s*`(?P<prefix>[a-z][a-z0-9_.]*)`\s*\|(?P<metrics>[^|]*)\|")
METRIC_CELL_RE = re.compile(r"`(?P<name>[a-z][a-z0-9_.]*)`(?:\s*\((?P<type>[gh])\))?")

TYPE_BY_MARKER = {None: "counter", "g": "gauge", "h": "histogram"}
TYPE_BY_CALL = {"Counter": "counter", "Gauge": "gauge", "Histogram": "histogram"}


def collect_code_metrics(src_dirs):
    """Map metric name -> (type, first file that registers it)."""
    metrics = {}
    for src_dir in src_dirs:
        for path in sorted(src_dir.rglob("*")):
            if path.suffix not in (".cc", ".h"):
                continue
            text = path.read_text(encoding="utf-8", errors="replace")
            for match in REGISTRATION_RE.finditer(text):
                kind = TYPE_BY_CALL[match.group(1)]
                name = match.group(2)
                prev = metrics.get(name)
                if prev is not None and prev[0] != kind:
                    raise SystemExit(
                        f"error: {name} registered as both {prev[0]} ({prev[1]}) "
                        f"and {kind} ({path})"
                    )
                if prev is None:
                    metrics[name] = (kind, str(path))
    return metrics


def collect_catalog_metrics(doc_path):
    """Map metric name -> type as documented in the Catalog table."""
    text = doc_path.read_text(encoding="utf-8")
    match = re.search(r"^### Catalog$(?P<body>.*?)^### ", text, re.M | re.S)
    if match is None:
        raise SystemExit(f"error: no '### Catalog' section found in {doc_path}")
    documented = {}
    for line in match.group("body").splitlines():
        row = ROW_RE.match(line.strip())
        if row is None:
            continue
        prefix = row.group("prefix")
        for cell in METRIC_CELL_RE.finditer(row.group("metrics")):
            name = prefix + cell.group("name")
            kind = TYPE_BY_MARKER[cell.group("type")]
            if name in documented and documented[name] != kind:
                raise SystemExit(
                    f"error: {name} documented twice with conflicting types"
                )
            documented[name] = kind
    if not documented:
        raise SystemExit(f"error: Catalog table in {doc_path} has no metric rows")
    return documented


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=".", help="repository root")
    args = parser.parse_args()

    root = pathlib.Path(args.repo)
    doc_path = root / "docs" / "OBSERVABILITY.md"
    code = collect_code_metrics([root / "src"])
    documented = collect_catalog_metrics(doc_path)

    failures = []
    for name in sorted(set(code) - set(documented)):
        failures.append(f"undocumented: {name} ({code[name][0]}, {code[name][1]})")
    for name in sorted(set(documented) - set(code)):
        failures.append(f"stale doc entry: {name} (not registered anywhere in src/)")
    for name in sorted(set(code) & set(documented)):
        if code[name][0] != documented[name]:
            failures.append(
                f"type mismatch: {name} is a {code[name][0]} in code "
                f"but documented as a {documented[name]}"
            )

    if failures:
        print(f"metric catalog check FAILED ({len(failures)} problems):")
        for failure in failures:
            print(f"  {failure}")
        print(
            "\nfix: reconcile docs/OBSERVABILITY.md '### Catalog' with the "
            "GetCounter/GetGauge/GetHistogram calls under src/."
        )
        return 1

    print(
        f"metric catalog check passed: {len(code)} metrics in code, "
        f"all documented with matching types."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
