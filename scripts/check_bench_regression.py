#!/usr/bin/env python3
"""Compares a fresh bench run against the committed baseline.

Usage:
    scripts/check_bench_regression.py --baseline BENCH_pr7.json \
        --fresh bench_results.json [--tolerance 2.5] \
        [--expect-faster table6_bsi_metric_C:table6_normal_metric_C]

Both files use the run_benches.sh shape: a JSON array of
{"op": ..., "ns_per_op": ...} entries (".registry" snapshots are skipped).

Checks, in order of severity:
  * every timed op in the baseline must appear in the fresh run (a missing
    op means a bench silently stopped running, which is how regressions
    hide);
  * no fresh timing may exceed baseline * tolerance. The default tolerance
    is deliberately loose (2.5x): CI machines are noisy and shared, so this
    gate only catches order-of-magnitude regressions -- an accidental
    O(n^2) path, a kernel dispatch that silently fell back -- not few-
    percent drift;
  * --expect-faster A:B pairs assert a structural win recorded in the
    baseline still holds in the fresh run (e.g. the BSI engine beating the
    row engine on a Table 6 metric), tolerance-free since both sides ran on
    the same machine in the same session.

Exit code 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import sys


def load_timings(path):
    with open(path) as f:
        entries = json.load(f)
    timings = {}
    for entry in entries:
        if "ns_per_op" in entry:
            timings[entry["op"]] = float(entry["ns_per_op"])
    return timings


def main():
    parser = argparse.ArgumentParser(
        description="bench regression gate (see module docstring)")
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--tolerance", type=float, default=2.5,
                        help="max allowed fresh/baseline ratio (default 2.5)")
    parser.add_argument("--expect-faster", action="append", default=[],
                        metavar="FAST_OP:SLOW_OP",
                        help="assert ns(FAST_OP) < ns(SLOW_OP) in the fresh "
                             "run; repeatable")
    args = parser.parse_args()

    baseline = load_timings(args.baseline)
    fresh = load_timings(args.fresh)
    failures = []

    missing = sorted(set(baseline) - set(fresh))
    for op in missing:
        failures.append(f"op '{op}' in baseline but missing from fresh run")

    for op in sorted(set(baseline) & set(fresh)):
        if baseline[op] <= 0:
            continue
        ratio = fresh[op] / baseline[op]
        marker = ""
        if ratio > args.tolerance:
            failures.append(
                f"op '{op}' regressed {ratio:.2f}x "
                f"(baseline {baseline[op]:.0f} ns, fresh {fresh[op]:.0f} ns, "
                f"tolerance {args.tolerance}x)")
            marker = "  <-- REGRESSED"
        print(f"{op}: {baseline[op]:.0f} ns -> {fresh[op]:.0f} ns "
              f"({ratio:.2f}x){marker}")

    for pair in args.expect_faster:
        try:
            fast_op, slow_op = pair.split(":", 1)
        except ValueError:
            failures.append(f"--expect-faster '{pair}' is not FAST:SLOW")
            continue
        if fast_op not in fresh or slow_op not in fresh:
            failures.append(
                f"--expect-faster {pair}: op missing from fresh run")
            continue
        if fresh[fast_op] >= fresh[slow_op]:
            failures.append(
                f"expected '{fast_op}' ({fresh[fast_op]:.0f} ns) to beat "
                f"'{slow_op}' ({fresh[slow_op]:.0f} ns)")
        else:
            print(f"{fast_op} ({fresh[fast_op]:.0f} ns) beats "
                  f"{slow_op} ({fresh[slow_op]:.0f} ns)")

    if failures:
        print(f"\n{len(failures)} bench regression check(s) FAILED:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall bench regression checks passed "
          f"({len(set(baseline) & set(fresh))} ops compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
