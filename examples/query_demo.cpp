// Ad-hoc queries through the EQL layer (§4.1's fixed query paradigms as a
// small SQL-shaped language): expose filters, dimension deep-dives, range
// predicates and non-decomposable aggregates (exact median across segments).
//
//   ./build/examples/query_demo

#include <cstdio>

#include "engine/experiment_data.h"
#include "expdata/generator.h"
#include "query/executor.h"

using namespace expbsi;

namespace {

void Run(const ExperimentBsiData& bsi, const char* text) {
  std::printf("\neql> %s\n", text);
  Result<QueryResult> result = RunQuery(bsi, text);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s", result.value().ToString().c_str());
}

}  // namespace

int main() {
  DatasetConfig config;
  config.num_users = 30000;
  config.num_segments = 16;
  config.num_days = 7;
  config.seed = 4242;

  ExperimentConfig exp;
  exp.strategy_ids = {8764293, 8764294};
  exp.arm_effects = {1.0, 1.07};
  exp.traffic_salt = 5;

  MetricConfig metric;  // metric 8371: minutes of usage
  metric.metric_id = 8371;
  metric.value_range = 600;
  metric.daily_participation = 0.6;

  DimensionConfig client_type;
  client_type.dimension_id = 1;
  client_type.cardinality = 3;
  DimensionConfig client_version;
  client_version.dimension_id = 2;
  client_version.cardinality = 200;

  std::printf("generating dataset ...\n");
  Dataset dataset = GenerateDataset(config, {exp}, {metric},
                                    {client_type, client_version});
  ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);

  // Simple metric profile for one day.
  Run(bsi,
      "SELECT count(*), sum(value), avg(value), median(value), "
      "quantile(value, 0.95), max(value) FROM metric(8371, date = 3)");

  // The scorecard kernel: metric sums among exposed units.
  Run(bsi,
      "SELECT sum(value), count(*) FROM metric(8371, date = 3) "
      "WHERE exposed(8764294, on_or_before = 3)");

  // The paper's expose-log filter: units first exposed on days 2-5.
  Run(bsi, "SELECT count(*) FROM expose(8764293) "
           "WHERE offset >= 2 AND offset <= 5");

  // Deep dive: the §4.4 example filter, client-type = 1 AND version > 134.
  Run(bsi,
      "SELECT sum(value), count(*), avg(value) FROM metric(8371, date = 3) "
      "WHERE exposed(8764294, on_or_before = 3) "
      "AND dim(1, date = 3) = 1 AND dim(2, date = 3) > 134");

  // Per-bucket values (the statistical replicates behind every t-test);
  // print just the header row and first buckets.
  std::printf("\neql> SELECT sum(value), count(*) FROM metric(8371, date=3) "
              "WHERE exposed(8764294, on_or_before=3) GROUP BY BUCKET\n");
  Result<QueryResult> grouped = RunQuery(
      bsi, "SELECT sum(value), count(*) FROM metric(8371, date = 3) "
           "WHERE exposed(8764294, on_or_before = 3) GROUP BY BUCKET");
  if (grouped.ok()) {
    std::printf("%zu buckets; first three:\n",
                grouped.value().per_bucket.size());
    for (size_t b = 0; b < 3 && b < grouped.value().per_bucket.size(); ++b) {
      std::printf("  bucket %zu: sum=%.0f count=%.0f\n", b,
                  grouped.value().per_bucket[b][0],
                  grouped.value().per_bucket[b][1]);
    }
  }

  // Errors are Status values, not crashes.
  Run(bsi, "SELECT frobnicate(value) FROM metric(8371, date = 3)");
  return 0;
}
