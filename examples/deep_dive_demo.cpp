// Deep-dive analysis (§4.4): investigate a metric movement by analysis-unit
// attributes (heterogeneous effects by client-type) and by time period
// (novelty effects day by day). The filters run as BSI range searches over
// dimension logs, exactly the paper's
//   (value = 1) AND (value > 134) -> mulBSI -> expose filter
// pipeline.
//
//   ./build/examples/deep_dive_demo

#include <cstdio>

#include "engine/deepdive.h"
#include "engine/experiment_data.h"
#include "expdata/generator.h"

using namespace expbsi;

int main() {
  DatasetConfig config;
  config.num_users = 40000;
  config.num_segments = 64;
  config.num_days = 7;
  config.seed = 77;

  ExperimentConfig experiment;
  experiment.strategy_ids = {9001, 9002};
  experiment.arm_effects = {1.0, 1.10};
  experiment.traffic_salt = 8;

  MetricConfig errors;  // error-count-per-user
  errors.metric_id = 555;
  errors.value_range = 40;
  errors.daily_participation = 0.5;

  DimensionConfig client_type;  // 1 = iOS, 2 = Android, 3 = desktop
  client_type.dimension_id = 1;
  client_type.cardinality = 3;
  DimensionConfig client_version;
  client_version.dimension_id = 2;
  client_version.cardinality = 200;

  std::printf("generating dataset ...\n");
  Dataset dataset = GenerateDataset(config, {experiment}, {errors},
                                    {client_type, client_version});
  ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);

  // 1. Heterogeneous effects: break the metric down by client type.
  std::printf("\n== breakdown by client-type (days 0-6) ==\n");
  std::printf("%-12s %12s %12s %9s %9s\n", "client-type", "treat mean",
              "ctrl mean", "delta%", "p-value");
  const char* names[] = {"iOS", "Android", "desktop"};
  for (const DimensionBreakdownEntry& row : ComputeDimensionBreakdown(
           bsi, 9001, 9002, 555, 0, 6, /*dimension_id=*/1, {1, 2, 3},
           /*dim_date=*/0)) {
    std::printf("%-12s %12.4f %12.4f %8.2f%% %9.4f\n",
                names[row.dimension_value - 1], row.entry.treatment.mean,
                row.entry.control.mean,
                100.0 * row.entry.ttest.relative_diff,
                row.entry.ttest.p_value);
  }

  // 2. Compound filter, the paper's example: client-type = 1 AND
  //    client-version > 134.
  const std::vector<DimensionPredicate> preds = {
      {1, DimensionPredicate::Op::kEq, 1},
      {2, DimensionPredicate::Op::kGt, 134},
  };
  const BucketValues treat =
      ComputeStrategyMetricBsiFiltered(bsi, 9002, 555, 0, 6, preds, 0);
  const BucketValues ctrl =
      ComputeStrategyMetricBsiFiltered(bsi, 9001, 555, 0, 6, preds, 0);
  const ScorecardEntry entry = CompareStrategies(555, 9002, treat, 9001, ctrl);
  std::printf("\n== iOS with client-version > 134 ==\n");
  std::printf("%.0f treated / %.0f control units pass the filter\n",
              entry.treatment.total_count, entry.control.total_count);
  std::printf("delta %.2f%% (p=%.4f)\n", 100.0 * entry.ttest.relative_diff,
              entry.ttest.p_value);

  // 3. Novelty check: the effect day by day.
  std::printf("\n== daily breakdown (novelty check) ==\n");
  std::printf("%-5s %12s %12s %9s\n", "day", "treat mean", "ctrl mean",
              "delta%");
  int day = 0;
  for (const ScorecardEntry& d :
       ComputeDailyBreakdown(bsi, 9001, 9002, 555, 0, 6)) {
    std::printf("%-5d %12.4f %12.4f %8.2f%%\n", day++, d.treatment.mean,
                d.control.mean, 100.0 * d.ttest.relative_diff);
  }
  return 0;
}
