// The system architecture end to end (§5, Fig. 7/8): serialize the BSI data
// into the warehouse, run the Spark-like pre-compute pipeline over every
// strategy-metric pair, then serve ad-hoc queries from the ClickHouse-like
// cluster with its hot/cold tier -- and watch the traffic/latency accounting.
//
//   ./build/examples/cluster_demo

#include <cstdio>

#include "cluster/adhoc_cluster.h"
#include "cluster/precompute_pipeline.h"
#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"

using namespace expbsi;

int main() {
  DatasetConfig config;
  config.num_users = 40000;
  config.num_segments = 16;
  config.num_days = 7;
  config.seed = 10101;

  ExperimentConfig exp;
  exp.strategy_ids = {9001, 9002, 9003};
  exp.arm_effects = {1.0, 1.06, 0.98};
  exp.traffic_salt = 21;

  std::vector<MetricConfig> metrics = MakeCoreMetricPopulation(10, 8371, 3);

  std::printf("generating %llu users x %d days, %zu metrics ...\n",
              static_cast<unsigned long long>(config.num_users),
              config.num_days, metrics.size());
  Dataset dataset = GenerateDataset(config, {exp}, metrics, {});
  ExperimentBsiData bsi =
      BuildExperimentBsiDataParallel(dataset, true, /*num_threads=*/4);

  // --- Pre-compute pipeline (Fig. 7 left path) ------------------------------
  std::vector<StrategyMetricPair> pairs;
  for (uint64_t strategy : {9001, 9002, 9003}) {
    for (const MetricConfig& m : metrics) {
      pairs.emplace_back(strategy, m.metric_id);
    }
  }
  PrecomputeConfig precompute_config;
  precompute_config.num_threads = 4;
  precompute_config.batch_size = 16;
  PrecomputePipeline pipeline(&dataset, &bsi, precompute_config);
  const PrecomputeStats stats = pipeline.RunBsi(pairs, 0, 6);
  std::printf("\npre-computed %d strategy-metric pairs: %.3f CPU-s, "
              "%.1f MB read from the warehouse\n",
              stats.pairs_computed, stats.cpu_seconds,
              static_cast<double>(stats.bytes_read) / 1e6);

  // Scorecard assembled from the cached results.
  std::printf("\nscorecard from the pre-compute cache (metric %llu):\n",
              static_cast<unsigned long long>(metrics[0].metric_id));
  const BucketValues* control = pipeline.GetResult({9001,
                                                    metrics[0].metric_id});
  for (uint64_t treatment : {9002, 9003}) {
    const BucketValues* treat =
        pipeline.GetResult({treatment, metrics[0].metric_id});
    const ScorecardEntry entry = CompareStrategies(
        metrics[0].metric_id, treatment, *treat, 9001, *control);
    std::printf("  strategy %llu: delta %+0.2f%% (p=%.4f)\n",
                static_cast<unsigned long long>(treatment),
                100.0 * entry.ttest.relative_diff, entry.ttest.p_value);
  }

  // --- Ad-hoc cluster (Fig. 8) ----------------------------------------------
  AdhocClusterConfig cluster_config;
  cluster_config.num_nodes = 4;
  cluster_config.threads_per_node = 4;
  AdhocCluster cluster(&dataset, &bsi, cluster_config);
  std::printf("\nad-hoc cluster: %zu blobs / %.1f MB in the cold warehouse\n",
              cluster.cold_store().NumBlobs(),
              static_cast<double>(cluster.cold_store().TotalBytes()) / 1e6);

  std::vector<uint64_t> metric_ids;
  for (const MetricConfig& m : metrics) metric_ids.push_back(m.metric_id);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto result =
        cluster.QueryBsi({9001, 9002, 9003}, metric_ids, 0, 6);
    if (!result.ok()) {
      std::printf("query failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("  query %d: latency %.2f ms (%.2f MB cold reads, "
                "%llu hot hits)\n",
                repeat + 1, result.value().latency_seconds * 1e3,
                static_cast<double>(result.value().bytes_from_cold) / 1e6,
                static_cast<unsigned long long>(result.value().hot_hits));
  }
  std::printf("\nthe first query pulls cold blobs into the node-local hot "
              "tier; repeats serve from memory (§5.3).\n");
  return 0;
}
