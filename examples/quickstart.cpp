// Quickstart: the BSI toolkit in isolation -- build bit-sliced indexes over
// Roaring bitmaps, run the paper's arithmetic / comparison / aggregate
// operations, and inspect the results.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "bsi/bsi.h"
#include "bsi/bsi_aggregate.h"

using expbsi::Bsi;
using expbsi::DistinctPos;
using expbsi::MaxBsi;
using expbsi::RoaringBitmap;

int main() {
  // The paper's Figure 1 column: values of 8 rows (zero means "absent").
  Bsi c = Bsi::FromPairs({{1, 5}, {2, 0}, {3, 127}, {4, 23}, {5, 200},
                          {6, 9}, {7, 64}, {8, 39}});
  std::printf("== Figure 1 BSI ==\n");
  std::printf("rows present: %llu (row 2 stored value 0 -> absent)\n",
              static_cast<unsigned long long>(c.Cardinality()));
  std::printf("slices: %d (max value 200 needs 8 bits)\n", c.num_slices());
  std::printf("C[3] = %llu, C[5] = %llu\n",
              static_cast<unsigned long long>(c.Get(3)),
              static_cast<unsigned long long>(c.Get(5)));

  // Figure 2: column addition S = X + Y via slice-wise XOR/AND carries.
  Bsi x = Bsi::FromValues({0, 1, 2, 3, 1, 3, 2, 0});
  Bsi y = Bsi::FromValues({2, 1, 1, 2, 3, 0, 2, 1});
  Bsi s = Bsi::Add(x, y);
  std::printf("\n== Figure 2 addition ==\nS = X + Y:");
  for (uint32_t j = 0; j < 8; ++j) {
    std::printf(" %llu", static_cast<unsigned long long>(s.Get(j)));
  }
  std::printf("\n");

  // Comparisons produce position sets (Algorithms 1-3).
  RoaringBitmap lt = Bsi::Lt(x, y);
  std::printf("\n== Comparisons ==\npositions with 0 < X < Y:");
  lt.ForEach([](uint32_t pos) { std::printf(" %u", pos); });
  std::printf("\n");

  // Range search against a constant + filter by binary multiply.
  RoaringBitmap big = c.RangeGe(50);
  Bsi filtered = Bsi::MultiplyByBinary(c, big);
  std::printf("sum of values >= 50: %llu (of total %llu)\n",
              static_cast<unsigned long long>(filtered.Sum()),
              static_cast<unsigned long long>(c.Sum()));

  // In-BSI aggregates.
  std::printf("\n== Aggregates ==\n");
  std::printf("sum=%llu avg=%.2f min=%llu max=%llu median=%llu\n",
              static_cast<unsigned long long>(c.Sum()), c.Average(),
              static_cast<unsigned long long>(c.MinValue()),
              static_cast<unsigned long long>(c.MaxValue()),
              static_cast<unsigned long long>(c.Median()));

  // Aggregates over BSIs: maxBSI and distinctPos (§4.1.3).
  Bsi m = MaxBsi(x, y);
  std::printf("maxBSI(X, Y) at position 5: %llu (X=3, Y absent)\n",
              static_cast<unsigned long long>(m.Get(5)));
  std::printf("distinct positions with any value: %llu\n",
              static_cast<unsigned long long>(DistinctPos(x, y).Cardinality()));

  // Everything serializes compactly.
  std::string bytes = c.SerializeToString();
  std::printf("\nserialized Figure 1 BSI: %zu bytes\n", bytes.size());
  return 0;
}
