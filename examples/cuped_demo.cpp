// Pre-experiment computation + CUPED variance reduction (§4.3): join the
// expose log with metric data from BEFORE the experiment start (folded with
// sumBSI through the pre-aggregate tree of Fig. 6) and use it as a CUPED
// covariate to tighten the confidence interval.
//
//   ./build/examples/cuped_demo

#include <cstdio>

#include "engine/experiment_data.h"
#include "engine/preexperiment.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"

using namespace expbsi;

int main() {
  // Days 0-13 are pre-period; the experiment runs on days 14-20.
  DatasetConfig config;
  config.num_users = 40000;
  config.num_segments = 64;
  config.num_days = 21;
  config.seed = 555;

  constexpr Date kStart = 14, kEnd = 20;
  constexpr int kLookback = 14;

  ExperimentConfig experiment;
  experiment.strategy_ids = {9001, 9002};
  experiment.arm_effects = {1.0, 1.03};  // a SMALL effect: hard to detect
  experiment.traffic_salt = 17;

  MetricConfig metric;
  metric.metric_id = 8371;
  metric.value_range = 1000;
  metric.zipf_s = 1.2;
  metric.daily_participation = 0.6;

  std::printf("generating %d days (%d pre-period + experiment) ...\n",
              config.num_days, kLookback);
  Dataset dataset = GenerateDataset(config, {experiment}, {metric}, {});
  // NOTE: the generator applies effects only after each user's expose date,
  // so pre-period data is clean by construction.
  ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);

  // Experiment-period bucket values.
  const BucketValues y_t =
      ComputeStrategyMetricBsi(bsi, 9002, 8371, kStart, kEnd);
  const BucketValues y_c =
      ComputeStrategyMetricBsi(bsi, 9001, 8371, kStart, kEnd);

  // Pre-period covariate via the pre-aggregate tree (O(log C) merges).
  const PreAggIndex tree = BuildPreAggIndex(bsi, 8371, 0, kStart - 1);
  const BucketValues x_t =
      ComputePreExperimentWithTree(bsi, tree, 9002, kStart, kLookback, kEnd);
  const BucketValues x_c =
      ComputePreExperimentWithTree(bsi, tree, 9001, kStart, kLookback, kEnd);

  const CupedScorecardEntry result =
      CompareWithCuped(8371, 9002, y_t, x_t, 9001, y_c, x_c);

  std::printf("\n== raw scorecard ==\n");
  std::printf("delta %.3f%%  std-err %.5f  p=%.4f\n",
              100.0 * result.raw.ttest.relative_diff,
              result.raw.ttest.std_error, result.raw.ttest.p_value);

  std::printf("\n== CUPED-adjusted (theta=%.3f) ==\n", result.theta);
  std::printf("delta %.3f%%  std-err %.5f  p=%.4f\n",
              100.0 * (result.adjusted_ttest.mean_diff /
                       result.control_adjusted.mean),
              result.adjusted_ttest.std_error,
              result.adjusted_ttest.p_value);
  std::printf("variance reduction: treatment %.1f%%, control %.1f%%\n",
              100.0 * result.treatment_variance_reduction,
              100.0 * result.control_variance_reduction);

  if (result.adjusted_ttest.p_value < result.raw.ttest.p_value) {
    std::printf("\nCUPED sharpened the test: the pre-period covariate "
                "absorbed between-user noise.\n");
  }
  return 0;
}
