// End-to-end experiment scorecard (§4.2): generate a synthetic A/B/C test,
// convert it to the BSI representation, and print the scorecard with
// bucket-based t-tests -- the paper's core production workflow.
//
//   ./build/examples/scorecard_demo

#include <cstdio>

#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"

using namespace expbsi;

int main() {
  // A user-randomized experiment: control 9001 plus two treatments, one
  // that helps engagement (+8%) and one that hurts it (-6%).
  DatasetConfig config;
  config.num_users = 50000;
  config.num_segments = 64;  // segments double as statistical buckets
  config.num_days = 7;
  config.start_date = 0;
  config.seed = 2024;

  ExperimentConfig experiment;
  experiment.strategy_ids = {9001, 9002, 9003};
  experiment.arm_effects = {1.0, 1.08, 0.94};
  experiment.traffic_salt = 42;

  MetricConfig stay_time;  // "stay-time-per-user" (minutes, capped)
  stay_time.metric_id = 8371;
  stay_time.value_range = 600;
  stay_time.zipf_s = 1.5;
  stay_time.daily_participation = 0.8;

  MetricConfig active_flag;  // binary "was-active"
  active_flag.metric_id = 8372;
  active_flag.value_range = 1;
  active_flag.daily_participation = 0.6;

  std::printf("generating %llu users x %d days ...\n",
              static_cast<unsigned long long>(config.num_users),
              config.num_days);
  Dataset dataset =
      GenerateDataset(config, {experiment}, {stay_time, active_flag}, {});
  ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);

  const std::vector<ScorecardEntry> scorecard =
      ComputeScorecard(bsi, /*control=*/9001, {9002, 9003}, {8371, 8372},
                       /*date_lo=*/0, /*date_hi=*/6);

  std::printf("\n%-8s %-10s %12s %12s %9s %9s  %s\n", "metric", "strategy",
              "treat mean", "ctrl mean", "delta%", "p-value", "verdict");
  for (const ScorecardEntry& e : scorecard) {
    const char* verdict = e.ttest.p_value < 0.05
                              ? (e.ttest.mean_diff > 0 ? "UP *" : "DOWN *")
                              : "flat";
    std::printf("%-8llu %-10llu %12.4f %12.4f %8.2f%% %9.4f  %s\n",
                static_cast<unsigned long long>(e.metric_id),
                static_cast<unsigned long long>(e.treatment_id),
                e.treatment.mean, e.control.mean,
                100.0 * e.ttest.relative_diff, e.ttest.p_value, verdict);
  }

  // Unique visitors, the non-decomposable aggregate (distinctPos merge).
  const BucketValues uv_treat =
      ComputeStrategyUniqueVisitorsBsi(bsi, 9002, 8371, 0, 6);
  const BucketValues uv_ctrl =
      ComputeStrategyUniqueVisitorsBsi(bsi, 9001, 8371, 0, 6);
  const ScorecardEntry uv =
      CompareStrategies(8371, 9002, uv_treat, 9001, uv_ctrl);
  std::printf("\nunique visitors (treatment 9002): %.0f of %.0f exposed "
              "(UV-rate %.3f vs control %.3f, p=%.4f)\n",
              uv.treatment.total_sum, uv.treatment.total_count,
              uv.treatment.mean, uv.control.mean, uv.ttest.p_value);
  return 0;
}
