// Fleet observability plane (DESIGN.md "Fleet observability"): kStatsFetch /
// kStatsReply codec canonicality, the lock-free flight recorder (ordering,
// since-seq cursors, trace stamping, wrap-around and a TSan-targeted
// writer/reader hammer), LocalStatsReply / FetchStats / FleetScraper over
// real loopback NodeServers, the merged Prometheus / JSON renderings, and
// degraded- and slow-query postmortem bundles from both the net Coordinator
// and the in-process AdhocCluster. The cross-process path (real expbsi_node
// children with injected faults) lives in net_process_test.cc.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/adhoc_cluster.h"
#include "common/fault_injector.h"
#include "common/file_io.h"
#include "engine/experiment_data.h"
#include "expdata/generator.h"
#include "net/coordinator.h"
#include "net/node_server.h"
#include "obs/fleet.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"
#include "obs/process_info.h"
#include "obs/trace.h"
#include "storage/bsi_store.h"
#include "wire/messages.h"

namespace expbsi {
namespace {

// ---------------------------------------------------------------------------
// kStatsFetch / kStatsReply codecs
// ---------------------------------------------------------------------------

wire::WireStatsReply SampleReply() {
  wire::WireStatsReply reply;
  reply.node_id = 3;
  reply.uptime_seconds = 12.5;
  reply.build_info = "expbsi/0.10 test x86_64 metrics=on";
  reply.queries_served = 41;
  reply.backpressure_rejections = 2;
  reply.counters = {{"a.count", 7}, {"b.count", 9}};
  reply.gauges = {{"g.bytes", 123.0}};
  wire::WireHistogram h;
  h.name = "h.latency";
  h.count = 5;
  h.sum = 90;
  h.buckets = {{10, 2}, {50, 3}};
  reply.histograms = {h};
  reply.events = {wire::WireFlightEvent{0, 100, 1, 0, 4, 0},
                  wire::WireFlightEvent{2, 300, 1, 1, 1500, 0}};
  reply.next_seq = 5;
  return reply;
}

TEST(WireStatsCodecTest, StatsFetchRoundTripsBitIdentically) {
  wire::WireStatsFetch fetch;
  fetch.since_seq = 0x0123456789abcdefull;
  fetch.want_metrics = false;
  fetch.want_events = true;
  std::string payload;
  wire::EncodeStatsFetch(fetch, &payload);
  Result<wire::WireStatsFetch> decoded = wire::DecodeStatsFetch(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value() == fetch);
  std::string reencoded;
  wire::EncodeStatsFetch(decoded.value(), &reencoded);
  EXPECT_EQ(payload, reencoded);
}

TEST(WireStatsCodecTest, StatsFetchRejectsTrailingBytesAndBadBools) {
  wire::WireStatsFetch fetch;
  std::string payload;
  wire::EncodeStatsFetch(fetch, &payload);
  // Trailing byte after a structurally complete message.
  EXPECT_FALSE(wire::DecodeStatsFetch(payload + '\0').ok());
  // Truncation anywhere inside.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(wire::DecodeStatsFetch(payload.substr(0, cut)).ok());
  }
  // Bools must be exactly 0 or 1 -- one canonical encoding per value.
  std::string tampered = payload;
  tampered[8] = 2;
  EXPECT_FALSE(wire::DecodeStatsFetch(tampered).ok());
}

TEST(WireStatsCodecTest, StatsReplyRoundTripsBitIdentically) {
  const wire::WireStatsReply reply = SampleReply();
  std::string payload;
  wire::EncodeStatsReply(reply, &payload);
  Result<wire::WireStatsReply> decoded = wire::DecodeStatsReply(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value() == reply);
  std::string reencoded;
  wire::EncodeStatsReply(decoded.value(), &reencoded);
  EXPECT_EQ(payload, reencoded);
}

TEST(WireStatsCodecTest, StatsReplyRejectsUnsortedMetricNames) {
  // The encoder emits whatever order it is given; canonicality is the
  // decoder's contract, so a shuffled section must fail to parse.
  wire::WireStatsReply reply = SampleReply();
  std::swap(reply.counters[0], reply.counters[1]);
  std::string payload;
  wire::EncodeStatsReply(reply, &payload);
  EXPECT_FALSE(wire::DecodeStatsReply(payload).ok());

  reply = SampleReply();
  reply.counters.push_back(reply.counters.back());  // duplicate name
  wire::EncodeStatsReply(reply, &payload);
  EXPECT_FALSE(wire::DecodeStatsReply(payload).ok());
}

TEST(WireStatsCodecTest, StatsReplyRejectsMalformedHistograms) {
  // Bucket counts must total `count`.
  wire::WireStatsReply reply = SampleReply();
  reply.histograms[0].count = 6;
  std::string payload;
  wire::EncodeStatsReply(reply, &payload);
  EXPECT_FALSE(wire::DecodeStatsReply(payload).ok());

  // Empty buckets are omitted from a canonical snapshot, never shipped.
  reply = SampleReply();
  reply.histograms[0].buckets = {{10, 0}, {50, 5}};
  wire::EncodeStatsReply(reply, &payload);
  EXPECT_FALSE(wire::DecodeStatsReply(payload).ok());

  // `le` bounds must be strictly ascending.
  reply = SampleReply();
  reply.histograms[0].buckets = {{50, 3}, {10, 2}};
  wire::EncodeStatsReply(reply, &payload);
  EXPECT_FALSE(wire::DecodeStatsReply(payload).ok());
}

TEST(WireStatsCodecTest, StatsReplyRejectsMalformedEvents) {
  // Event kinds outside the catalog are hostile or torn; drop the message.
  wire::WireStatsReply reply = SampleReply();
  reply.events[0].kind = obs::kMaxFlightEventKind + 1;
  std::string payload;
  wire::EncodeStatsReply(reply, &payload);
  EXPECT_FALSE(wire::DecodeStatsReply(payload).ok());

  // Sequence numbers must be strictly ascending...
  reply = SampleReply();
  reply.events[1].seq = reply.events[0].seq;
  wire::EncodeStatsReply(reply, &payload);
  EXPECT_FALSE(wire::DecodeStatsReply(payload).ok());

  // ...and every one must sit below the advertised next_seq cursor.
  reply = SampleReply();
  reply.events[1].seq = reply.next_seq;
  wire::EncodeStatsReply(reply, &payload);
  EXPECT_FALSE(wire::DecodeStatsReply(payload).ok());
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

#if !defined(EXPBSI_NO_METRICS)

TEST(FlightRecorderTest, RecordsEventsInSequenceOrder) {
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  fr.ResetForTesting();
  EXPECT_EQ(fr.NextSeq(), 0u);
  fr.Record(obs::FlightEventKind::kQueryAdmit, 8);
  fr.Record(obs::FlightEventKind::kQueryFinish, 1500, 0);
  fr.Record(obs::FlightEventKind::kNodeMarkdown, 2, 3);
  EXPECT_EQ(fr.NextSeq(), 3u);
  const std::vector<obs::FlightEvent> events = fr.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].kind,
            static_cast<uint8_t>(obs::FlightEventKind::kQueryAdmit));
  EXPECT_EQ(events[0].a, 8u);
  EXPECT_EQ(events[0].trace_id, 0u);  // recorded outside any trace
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].a, 1500u);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_EQ(events[2].b, 3u);
  EXPECT_LE(events[0].t_ns, events[2].t_ns);
  fr.ResetForTesting();
}

TEST(FlightRecorderTest, SnapshotSinceSeqIsACursor) {
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  fr.ResetForTesting();
  fr.Record(obs::FlightEventKind::kQueryAdmit, 1);
  fr.Record(obs::FlightEventKind::kQueryAdmit, 2);
  const uint64_t cursor = fr.NextSeq();
  fr.Record(obs::FlightEventKind::kQueryFinish, 3);
  const std::vector<obs::FlightEvent> fresh = fr.Snapshot(cursor);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].seq, cursor);
  EXPECT_EQ(fresh[0].a, 3u);
  // A cursor at NextSeq() sees nothing until something new is recorded.
  EXPECT_TRUE(fr.Snapshot(fr.NextSeq()).empty());
  fr.ResetForTesting();
}

TEST(FlightRecorderTest, StampsTheActiveTraceId) {
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  fr.ResetForTesting();
  obs::QueryTrace trace("fleet_test");
  EXPECT_EQ(trace.start_flight_seq(), 0u);
  {
    obs::ScopedTrace st(&trace);
    fr.Record(obs::FlightEventKind::kQueryAdmit, 4);
  }
  fr.RecordWithTraceId(obs::FlightEventKind::kHedgeFired, 1, 0,
                       trace.trace_id());
  const std::vector<obs::FlightEvent> events =
      fr.Snapshot(trace.start_flight_seq());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, trace.trace_id());
  EXPECT_EQ(events[1].trace_id, trace.trace_id());
  fr.ResetForTesting();
}

TEST(FlightRecorderTest, WraparoundKeepsTheMostRecentCapacityEvents) {
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  fr.ResetForTesting();
  const uint64_t total = obs::FlightRecorder::kCapacity + 100;
  for (uint64_t i = 0; i < total; ++i) {
    fr.Record(obs::FlightEventKind::kQueryAdmit, i);
  }
  const std::vector<obs::FlightEvent> events = fr.Snapshot();
  ASSERT_EQ(events.size(), obs::FlightRecorder::kCapacity);
  EXPECT_EQ(events.front().seq, total - obs::FlightRecorder::kCapacity);
  EXPECT_EQ(events.back().seq, total - 1);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, events[i].seq);  // payload rode along with seq
    if (i > 0) {
      EXPECT_LT(events[i - 1].seq, events[i].seq);
    }
  }
  // A cursor past the wrap sees only the tail.
  EXPECT_EQ(fr.Snapshot(total - 5).size(), 5u);
  fr.ResetForTesting();
}

// Writers hammer the ring while readers snapshot it: under TSan this is the
// seqlock proof, and in any mode a snapshot must never contain a torn,
// out-of-order or out-of-catalog event.
TEST(FlightRecorderTest, ConcurrentWritersAndReadersStayCoherent) {
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  fr.ResetForTesting();
  static constexpr int kWriters = 4;
  static constexpr uint64_t kPerWriter = obs::FlightRecorder::kCapacity;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&fr, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        fr.Record(obs::FlightEventKind::kRetry, i,
                  static_cast<uint64_t>(w));
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&fr, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<obs::FlightEvent> snap = fr.Snapshot();
      for (size_t i = 0; i < snap.size(); ++i) {
        ASSERT_LE(snap[i].kind, obs::kMaxFlightEventKind);
        ASSERT_LT(snap[i].a, kPerWriter);
        ASSERT_LT(snap[i].b, static_cast<uint64_t>(kWriters));
        if (i > 0) {
          ASSERT_LT(snap[i - 1].seq, snap[i].seq);
        }
      }
    }
  });
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(fr.NextSeq(), kWriters * kPerWriter);
  const std::vector<obs::FlightEvent> final_snap = fr.Snapshot();
  EXPECT_EQ(final_snap.size(), obs::FlightRecorder::kCapacity);
  fr.ResetForTesting();
}

#endif  // !EXPBSI_NO_METRICS

TEST(FlightEventJsonTest, RendersCatalogNamesAndFields) {
  std::vector<obs::FlightEvent> events(1);
  events[0].seq = 7;
  events[0].t_ns = 123;
  events[0].trace_id = 9;
  events[0].kind = static_cast<uint8_t>(obs::FlightEventKind::kNodeMarkdown);
  events[0].a = 2;
  events[0].b = 3;
  const std::string json = obs::FlightEventsToJson(events);
  EXPECT_NE(json.find("\"seq\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"node_markdown\""), std::string::npos);
  EXPECT_NE(json.find("\"a\": 2"), std::string::npos);
  EXPECT_EQ(obs::FlightEventsToJson({}), "[]");
  // Out-of-catalog kinds render as "unknown" instead of indexing off the
  // end of the name table.
  events[0].kind = obs::kMaxFlightEventKind + 1;
  EXPECT_NE(obs::FlightEventsToJson(events).find("\"kind\": \"unknown\""),
            std::string::npos);
}

TEST(FlightEventJsonTest, FaultInjectedEventsNameTheirSite) {
  std::vector<obs::FlightEvent> events(1);
  events[0].kind = static_cast<uint8_t>(obs::FlightEventKind::kFaultInjected);
  events[0].a = 1;  // FaultKind::kCorrupt
  events[0].b = obs::FlightSiteId(fault_sites::kTierFetch);
  EXPECT_NE(
      obs::FlightEventsToJson(events).find("\"site\": \"tier.fetch\""),
      std::string::npos);
}

TEST(FlightSiteTest, SiteIdsRoundTripAndUnknownsMapToZero) {
  const uint64_t id = obs::FlightSiteId(fault_sites::kTierFetch);
  EXPECT_NE(id, 0u);
  EXPECT_STREQ(obs::FlightSiteName(id), fault_sites::kTierFetch);
  EXPECT_NE(obs::FlightSiteId(fault_sites::kNetSend), 0u);
  EXPECT_NE(obs::FlightSiteId(fault_sites::kNetSend), id);
  EXPECT_EQ(obs::FlightSiteId("no.such.site"), 0u);
  EXPECT_EQ(obs::FlightSiteId(nullptr), 0u);
  EXPECT_STREQ(obs::FlightSiteName(0), "");
  EXPECT_STREQ(obs::FlightSiteName(1u << 20), "");
}

// ---------------------------------------------------------------------------
// LocalStatsReply
// ---------------------------------------------------------------------------

TEST(LocalStatsReplyTest, CarriesIdentityAndEncodesCanonically) {
  wire::WireStatsFetch fetch;
  const wire::WireStatsReply reply =
      obs::LocalStatsReply(fetch, /*node_id=*/6, /*queries_served=*/10,
                           /*backpressure_rejections=*/1);
  EXPECT_EQ(reply.node_id, 6u);
  EXPECT_EQ(reply.queries_served, 10u);
  EXPECT_EQ(reply.backpressure_rejections, 1u);
  EXPECT_EQ(reply.build_info, obs::BuildInfoString());
  EXPECT_GE(reply.uptime_seconds, 0.0);
  // A self-snapshot is canonical by construction: it must survive its own
  // codec bit-identically (sorted names, valid histograms, ordered events).
  std::string payload;
  wire::EncodeStatsReply(reply, &payload);
  Result<wire::WireStatsReply> decoded = wire::DecodeStatsReply(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value() == reply);
}

#if !defined(EXPBSI_NO_METRICS)

TEST(LocalStatsReplyTest, ShipsRegistryMetricsAndHonorsWantFlags) {
  obs::GetCounter("fleet.test_only_counter").Add(5);
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  fr.ResetForTesting();
  fr.Record(obs::FlightEventKind::kQueryAdmit, 1);
  const uint64_t cursor = fr.NextSeq();
  fr.Record(obs::FlightEventKind::kQueryFinish, 2);

  wire::WireStatsFetch fetch;
  fetch.since_seq = cursor;
  wire::WireStatsReply reply = obs::LocalStatsReply(fetch, 0, 0, 0);
  bool found = false;
  for (const auto& [name, v] : reply.counters) {
    if (name == "fleet.test_only_counter") {
      found = true;
      EXPECT_GE(v, 5u);
    }
  }
  EXPECT_TRUE(found);
  ASSERT_EQ(reply.events.size(), 1u);  // cursor skipped the admit event
  EXPECT_EQ(reply.events[0].seq, cursor);
  EXPECT_EQ(reply.next_seq, fr.NextSeq());

  fetch.want_metrics = false;
  fetch.want_events = false;
  reply = obs::LocalStatsReply(fetch, 0, 0, 0);
  EXPECT_TRUE(reply.counters.empty());
  EXPECT_TRUE(reply.gauges.empty());
  EXPECT_TRUE(reply.histograms.empty());
  EXPECT_TRUE(reply.events.empty());
  EXPECT_EQ(reply.next_seq, fr.NextSeq());  // cursor still advances
  fr.ResetForTesting();
}

#endif  // !EXPBSI_NO_METRICS

// ---------------------------------------------------------------------------
// Fleet rendering
// ---------------------------------------------------------------------------

TEST(PromRenderTest, EscapesLabelValues) {
  EXPECT_EQ(obs::PromEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::PromEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::PromEscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::PromEscapeLabelValue("line\nbreak"), "line\\nbreak");
}

obs::FleetView SampleView() {
  obs::FleetView view;
  obs::FleetNodeSnapshot up;
  up.label = "127.0.0.1:9100";
  up.reachable = true;
  up.reply = SampleReply();
  obs::FleetNodeSnapshot down;
  down.label = "127.0.0.1:9101";
  down.error = "unavailable: connect: refused";
  view.nodes = {std::move(up), std::move(down)};
  return view;
}

TEST(FleetRenderTest, PrometheusLabelsEverySampleAndExposesLiveness) {
  const std::string text = obs::FleetScraper::RenderPrometheus(SampleView());
  // Liveness for both nodes, dead one as an explicit 0.
  EXPECT_NE(text.find("expbsi_node_up{node=\"127.0.0.1:9100\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("expbsi_node_up{node=\"127.0.0.1:9101\"} 0"),
            std::string::npos);
  // One TYPE line per family even with many nodes.
  EXPECT_EQ(text.find("# TYPE expbsi_node_up gauge"),
            text.rfind("# TYPE expbsi_node_up gauge"));
  // Identity gauges and registry samples all carry the node label.
  EXPECT_NE(text.find("expbsi_build_info{node=\"127.0.0.1:9100\",build=\""),
            std::string::npos);
  EXPECT_NE(text.find("expbsi_uptime_seconds{node=\"127.0.0.1:9100\"} 12.5"),
            std::string::npos);
  EXPECT_NE(text.find("expbsi_a_count{node=\"127.0.0.1:9100\"} 7"),
            std::string::npos);
  // Histograms render cumulative buckets plus the +Inf catch-all.
  EXPECT_NE(
      text.find("expbsi_h_latency_bucket{node=\"127.0.0.1:9100\",le=\"50\"} 5"),
      std::string::npos);
  EXPECT_NE(text.find(
                "expbsi_h_latency_bucket{node=\"127.0.0.1:9100\",le=\"+Inf\"}"),
            std::string::npos);
  // A dead node contributes nothing beyond its node_up sample.
  EXPECT_EQ(text.find("expbsi_a_count{node=\"127.0.0.1:9101\"}"),
            std::string::npos);
}

TEST(FleetRenderTest, PrometheusEscapesHostileLabels) {
  obs::FleetView view;
  obs::FleetNodeSnapshot node;
  node.label = "evil\"host\nname";
  node.reachable = false;
  view.nodes.push_back(std::move(node));
  const std::string text = obs::FleetScraper::RenderPrometheus(view);
  EXPECT_NE(text.find("expbsi_node_up{node=\"evil\\\"host\\nname\"} 0"),
            std::string::npos);
}

TEST(FleetRenderTest, JsonCarriesIdentityMetricsAndEvents) {
  const std::string json = obs::FleetScraper::RenderJson(SampleView());
  EXPECT_NE(json.find("\"node\": \"127.0.0.1:9100\", \"up\": true"),
            std::string::npos);
  EXPECT_NE(json.find("\"node\": \"127.0.0.1:9101\", \"up\": false"),
            std::string::npos);
  EXPECT_NE(json.find("\"error\": \"unavailable: connect: refused\""),
            std::string::npos);
  EXPECT_NE(json.find("\"queries_served\": 41"), std::string::npos);
  EXPECT_NE(json.find("\"next_seq\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"a.count\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"query_finish\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// FetchStats + FleetScraper over real loopback NodeServers
// ---------------------------------------------------------------------------

TEST(FetchStatsTest, PullsARemoteSnapshotAndFailsCleanlyWhenDown) {
  BsiStore empty;
  net::NodeServerOptions options;
  options.node_id = 7;
  net::NodeServer node(&empty, options);
  ASSERT_TRUE(node.Start().ok());
  wire::WireStatsFetch fetch;
  Result<wire::WireStatsReply> reply =
      obs::FetchStats(node.port(), fetch, 5.0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().node_id, 7u);
  // Same process, same library: identity fields match our own.
  EXPECT_EQ(reply.value().build_info, obs::BuildInfoString());
  const uint16_t port = node.port();
  node.Stop();
  Result<wire::WireStatsReply> dead = obs::FetchStats(port, fetch, 0.5);
  EXPECT_FALSE(dead.ok());
}

TEST(FleetScraperTest, MergesLiveNodesAndMarksDeadOnes) {
  BsiStore empty;
  net::NodeServerOptions a_options;
  a_options.node_id = 0;
  net::NodeServer a(&empty, a_options);
  ASSERT_TRUE(a.Start().ok());
  net::NodeServerOptions b_options;
  b_options.node_id = 1;
  net::NodeServer b(&empty, b_options);
  ASSERT_TRUE(b.Start().ok());
  // A node that came up and went away: its port now refuses connections.
  net::NodeServer ghost(&empty, net::NodeServerOptions{});
  ASSERT_TRUE(ghost.Start().ok());
  const uint16_t dead_port = ghost.port();
  ghost.Stop();

  obs::FleetScraperOptions options;
  options.node_ports = {a.port(), b.port(), dead_port};
  obs::FleetScraper scraper(options);
  const obs::FleetView view = scraper.Scrape();
  ASSERT_EQ(view.nodes.size(), 4u);  // 3 configured + coordinator self row
  EXPECT_TRUE(view.nodes[0].reachable);
  EXPECT_EQ(view.nodes[0].reply.node_id, 0u);
  EXPECT_TRUE(view.nodes[1].reachable);
  EXPECT_EQ(view.nodes[1].reply.node_id, 1u);
  EXPECT_FALSE(view.nodes[2].reachable);
  EXPECT_FALSE(view.nodes[2].error.empty());
  EXPECT_EQ(view.nodes[2].label, "127.0.0.1:" + std::to_string(dead_port));
  EXPECT_EQ(view.nodes[3].label, "coordinator");
  EXPECT_TRUE(view.nodes[3].reachable);

  // Event cursors advanced only for the nodes that answered.
  EXPECT_EQ(scraper.cursor(0), view.nodes[0].reply.next_seq);
  EXPECT_EQ(scraper.cursor(1), view.nodes[1].reply.next_seq);
  EXPECT_EQ(scraper.cursor(2), 0u);

  const std::string text = obs::FleetScraper::RenderPrometheus(view);
  EXPECT_NE(text.find("expbsi_node_up{node=\"127.0.0.1:" +
                      std::to_string(dead_port) + "\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("expbsi_node_up{node=\"coordinator\"} 1"),
            std::string::npos);
  a.Stop();
  b.Stop();
}

// ---------------------------------------------------------------------------
// Postmortem bundles
// ---------------------------------------------------------------------------

obs::PostmortemBundle SampleBundle() {
  obs::PostmortemBundle bundle;
  bundle.reason = "degraded";
  bundle.trace_id = 42;
  bundle.query = "coordinator_query_bsi";
  bundle.duration_ms = 1.25;
  bundle.lost_segments = {3, 5};
  bundle.segments_answered = 6;
  bundle.retries = 1;
  bundle.nodes_lost = 1;
  bundle.trace_json = "{\"name\": \"coordinator_query_bsi\"}";
  bundle.health.push_back(obs::PostmortemNodeHealth{1, true, 4});
  obs::PostmortemFlightSlice slice;
  slice.label = "coordinator";
  slice.fetched = true;
  slice.next_seq = 9;
  obs::FlightEvent e;
  e.seq = 8;
  e.kind = static_cast<uint8_t>(obs::FlightEventKind::kQueryDegraded);
  e.a = 2;
  slice.events.push_back(e);
  bundle.slices.push_back(std::move(slice));
  obs::PostmortemFlightSlice lost;
  lost.label = "127.0.0.1:9101";
  lost.error = "unavailable: connect: refused";
  bundle.slices.push_back(std::move(lost));
  return bundle;
}

TEST(PostmortemTest, RenderIncludesEverySection) {
  const std::string json = obs::RenderPostmortemJson(SampleBundle());
  EXPECT_NE(json.find("\"schema\": \"expbsi.postmortem.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"lost_segments\": [3, 5]"), std::string::npos);
  EXPECT_NE(json.find("\"node\": 1, \"down\": true"), std::string::npos);
  EXPECT_NE(json.find("\"trace\": {\"name\""), std::string::npos);
  EXPECT_NE(json.find("\"node\": \"coordinator\", \"fetched\": true"),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"query_degraded\""), std::string::npos);
  EXPECT_NE(
      json.find("\"node\": \"127.0.0.1:9101\", \"fetched\": false, "
                "\"error\": \"unavailable: connect: refused\""),
      std::string::npos);
  // No trace -> explicit null, still valid JSON.
  obs::PostmortemBundle traceless = SampleBundle();
  traceless.trace_json.clear();
  EXPECT_NE(obs::RenderPostmortemJson(traceless).find("\"trace\": null"),
            std::string::npos);
}

TEST(PostmortemTest, WriteCreatesTheFileAndSanitizesHostileReasons) {
  const std::string dir = ::testing::TempDir() + "expbsi_pm_unit";
  obs::PostmortemBundle bundle = SampleBundle();
  Result<std::string> written = obs::WritePostmortem(dir, bundle);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(written.value(), dir + "/postmortem-42-degraded.json");
  Result<std::string> contents =
      fileio::ReadFileToString(written.value(), 1u << 20);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), obs::RenderPostmortemJson(bundle));

  // A reason outside [a-z_] must not become a path component.
  bundle.reason = "../evil";
  written = obs::WritePostmortem(dir, bundle);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(written.value(), dir + "/postmortem-42-unknown.json");
}

// ---------------------------------------------------------------------------
// End-to-end postmortems from real queries
// ---------------------------------------------------------------------------

class FleetServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.num_users = 2000;
    config.num_segments = 8;
    config.num_days = 3;
    config.start_date = 10;
    config.seed = 48;

    ExperimentConfig exp;
    exp.strategy_ids = {801, 802};
    exp.arm_effects = {1.0, 1.1};
    exp.traffic_salt = 5;

    MetricConfig m1;
    m1.metric_id = 901;
    m1.value_range = 100;
    m1.daily_participation = 0.5;

    dataset_ = new Dataset(GenerateDataset(config, {exp}, {m1}, {}));
    bsi_ = new ExperimentBsiData(BuildExperimentBsiData(*dataset_, true));
    cold_ = new BsiStore(BuildColdStore(*bsi_));
  }

  static void TearDownTestSuite() {
    delete cold_;
    delete bsi_;
    delete dataset_;
  }

  static Dataset* dataset_;
  static ExperimentBsiData* bsi_;
  static BsiStore* cold_;
};

Dataset* FleetServingTest::dataset_ = nullptr;
ExperimentBsiData* FleetServingTest::bsi_ = nullptr;
BsiStore* FleetServingTest::cold_ = nullptr;

TEST_F(FleetServingTest, CoordinatorWritesAPostmortemOnDegradedQueries) {
  net::CoordinatorOptions options;
  std::vector<std::unique_ptr<net::NodeServer>> nodes;
  options.node_ports.clear();
  for (int i = 0; i < 2; ++i) {
    net::NodeServerOptions node_options;
    node_options.node_id = i;
    auto node = std::make_unique<net::NodeServer>(cold_, node_options);
    ASSERT_TRUE(node->Start().ok());
    options.node_ports.push_back(node->port());
    nodes.push_back(std::move(node));
  }
  options.num_segments = dataset_->config.num_segments;
  options.replication_factor = 1;  // no failover: a dead node degrades
  options.allow_degraded = true;
  options.postmortem_dir = ::testing::TempDir() + "expbsi_pm_coordinator";
  options.postmortem_fetch_deadline_seconds = 0.5;
  net::Coordinator coordinator(options);

  // Healthy query: complete results, no bundle.
  Result<AdhocCluster::QueryStats> healthy =
      coordinator.QueryBsi({801}, {901}, 10, 12);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_TRUE(healthy.value().postmortem_path.empty());

  // Kill whichever node owns segments under R=1 and query again.
  const int victim =
      coordinator.placement().SegmentsOf(1).empty() ? 0 : 1;
  nodes[victim]->Stop();
  Result<AdhocCluster::QueryStats> degraded =
      coordinator.QueryBsi({801}, {901}, 10, 12);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  ASSERT_FALSE(degraded.value().degraded.lost_segments.empty());
  ASSERT_FALSE(degraded.value().postmortem_path.empty());
  EXPECT_NE(degraded.value().postmortem_path.find("-degraded.json"),
            std::string::npos);

  Result<std::string> contents = fileio::ReadFileToString(
      degraded.value().postmortem_path, 16u << 20);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  const std::string& json = contents.value();
  EXPECT_NE(json.find("\"schema\": \"expbsi.postmortem.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"query\": \"coordinator_query_bsi\""),
            std::string::npos);
  // The coordinator's own flight slice is always present; the dead node's
  // slice records the failed pull instead of vanishing.
  EXPECT_NE(json.find("\"node\": \"coordinator\", \"fetched\": true"),
            std::string::npos);
  EXPECT_NE(json.find("\"node\": \"127.0.0.1:" +
                      std::to_string(options.node_ports[victim]) +
                      "\", \"fetched\": false"),
            std::string::npos);
  // The finished trace tree rode along.
  EXPECT_NE(json.find("\"trace\": {"), std::string::npos);
#if !defined(EXPBSI_NO_METRICS)
  // The coordinator slice names the degradation itself.
  EXPECT_NE(json.find("\"kind\": \"query_degraded\""), std::string::npos);
#endif
  for (auto& node : nodes) node->Stop();
}

TEST_F(FleetServingTest, AdhocClusterWritesASlowQueryPostmortem) {
  AdhocClusterConfig config;
  config.num_nodes = 2;
  config.postmortem_dir = ::testing::TempDir() + "expbsi_pm_adhoc";
  AdhocCluster cluster(dataset_, bsi_, config);
  obs::SetSlowQueryThresholdMsForTesting(0.0);  // every query is "slow"
  Result<AdhocCluster::QueryStats> stats =
      cluster.QueryBsi({801}, {901}, 10, 12);
  obs::SetSlowQueryThresholdMsForTesting(-1.0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_FALSE(stats.value().postmortem_path.empty());
  EXPECT_NE(stats.value().postmortem_path.find("-slow_query.json"),
            std::string::npos);
  Result<std::string> contents =
      fileio::ReadFileToString(stats.value().postmortem_path, 16u << 20);
  ASSERT_TRUE(contents.ok());
  EXPECT_NE(contents.value().find("\"reason\": \"slow_query\""),
            std::string::npos);
  // The in-process cluster has exactly one ring: its own.
  EXPECT_NE(contents.value().find("\"node\": \"local\", \"fetched\": true"),
            std::string::npos);
  // The slow-query log line and the bundle cross-reference through the
  // flight-recorder sequence range.
  const std::string slow_line = obs::LastSlowQueryTextForTesting();
  EXPECT_NE(slow_line.find("\"event\": \"slow_query\""), std::string::npos);
  EXPECT_NE(slow_line.find("\"fr_seq_lo\": "), std::string::npos);
  EXPECT_NE(slow_line.find("\"query\": \"adhoc_query_bsi\""),
            std::string::npos);
}

}  // namespace
}  // namespace expbsi
