#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/bucket_stats.h"
#include "stats/cuped.h"
#include "stats/ttest.h"

namespace expbsi {
namespace {

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.9750021, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.96), 0.0249979, 1e-6);
}

TEST(IncompleteBetaTest, KnownValues) {
  // I_x(1, 1) = x.
  EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, 0.3), 0.3, 1e-10);
  // I_x(2, 2) = x^2 (3 - 2x).
  EXPECT_NEAR(RegularizedIncompleteBeta(2, 2, 0.4), 0.16 * (3 - 0.8), 1e-10);
  // Boundaries.
  EXPECT_EQ(RegularizedIncompleteBeta(3, 4, 0.0), 0.0);
  EXPECT_EQ(RegularizedIncompleteBeta(3, 4, 1.0), 1.0);
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 4.5, 0.3),
              1.0 - RegularizedIncompleteBeta(4.5, 2.5, 0.7), 1e-10);
}

TEST(StudentTCdfTest, KnownValues) {
  // With df = 1 (Cauchy): CDF(1) = 0.75.
  EXPECT_NEAR(StudentTCdf(1.0, 1.0), 0.75, 1e-9);
  // df = 10: t = 2.228 is the 97.5th percentile (classic table value).
  EXPECT_NEAR(StudentTCdf(2.228, 10.0), 0.975, 1e-3);
  // Symmetry.
  EXPECT_NEAR(StudentTCdf(-2.0, 5.0) + StudentTCdf(2.0, 5.0), 1.0, 1e-12);
  // Converges to the normal for large df.
  EXPECT_NEAR(StudentTCdf(1.96, 100000.0), NormalCdf(1.96), 1e-4);
}

TEST(WelchTTestTest, NullAndAlternative) {
  // Identical estimates: p-value 1.
  TTestResult same = WelchTTest(5.0, 0.01, 100, 5.0, 0.01, 100);
  EXPECT_NEAR(same.p_value, 1.0, 1e-12);
  EXPECT_EQ(same.mean_diff, 0.0);
  // A 10-sigma difference: p-value ~0.
  TTestResult strong = WelchTTest(6.0, 0.005, 1000, 5.0, 0.005, 1000);
  EXPECT_LT(strong.p_value, 1e-6);
  EXPECT_NEAR(strong.t_stat, 10.0, 1e-9);
  EXPECT_NEAR(strong.relative_diff, 0.2, 1e-12);
  // Degenerate variance.
  TTestResult degenerate = WelchTTest(1.0, 0.0, 10, 2.0, 0.0, 10);
  EXPECT_EQ(degenerate.p_value, 0.0);
}

TEST(WelchTTestTest, SatterthwaiteDf) {
  // Equal variances and dfs: df ~ 2 * df_arm.
  TTestResult r = WelchTTest(0.0, 1.0, 50, 0.0, 1.0, 50);
  EXPECT_NEAR(r.df, 100.0, 1.0);
  // Extremely unequal variances: df approaches the dominant arm's df.
  TTestResult skew = WelchTTest(0.0, 100.0, 50, 0.0, 1e-6, 50);
  EXPECT_NEAR(skew.df, 50.0, 1.0);
}

TEST(BucketStatsTest, MeanVarianceCovariance) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(SampleVariance(xs), 2.5);
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_DOUBLE_EQ(SampleCovariance(xs, ys), 5.0);
  EXPECT_DOUBLE_EQ(SampleVariance({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleVariance({7.0}), 0.0);
}

TEST(BucketStatsTest, EstimateRatioMatchesSimulation) {
  // Buckets drawn from a known model: per-bucket count ~ 100, value mean 2.
  Rng rng(11);
  const int b = 1024;
  BucketValues buckets;
  buckets.sums.resize(b);
  buckets.counts.resize(b);
  for (int i = 0; i < b; ++i) {
    const double n = 100 + 10 * rng.NextGaussian();
    buckets.counts[i] = std::max(1.0, std::round(n));
    double sum = 0;
    for (int u = 0; u < buckets.counts[i]; ++u) {
      sum += 2.0 + rng.NextGaussian();
    }
    buckets.sums[i] = sum;
  }
  MetricEstimate est = EstimateRatio(buckets);
  EXPECT_NEAR(est.mean, 2.0, 0.02);
  // True var of the mean ~ sigma^2 / total_n = 1 / 102400.
  EXPECT_NEAR(est.var_of_mean, 1.0 / 102400, 0.3 / 102400);
  EXPECT_EQ(est.df, b - 1);
}

TEST(BucketStatsTest, EmptyAndDegenerate) {
  BucketValues empty;
  MetricEstimate est = EstimateRatio(empty);
  EXPECT_EQ(est.mean, 0.0);
  BucketValues zero_counts;
  zero_counts.sums = {0, 0};
  zero_counts.counts = {0, 0};
  est = EstimateRatio(zero_counts);
  EXPECT_EQ(est.mean, 0.0);
  EXPECT_EQ(est.var_of_mean, 0.0);
}

TEST(BucketStatsTest, MergeFrom) {
  BucketValues a;
  a.sums = {1, 2};
  a.counts = {10, 20};
  BucketValues b;
  b.sums = {3, 4};
  b.counts = {30, 40};
  a.MergeFrom(b);
  EXPECT_EQ(a.sums, (std::vector<double>{4, 6}));
  EXPECT_EQ(a.counts, (std::vector<double>{40, 60}));
  BucketValues fresh;
  fresh.MergeFrom(b);
  EXPECT_EQ(fresh.sums, b.sums);
}

TEST(BucketStatsTest, RatioCovarianceOfIdenticalSeriesEqualsVariance) {
  Rng rng(12);
  BucketValues v;
  for (int i = 0; i < 256; ++i) {
    const double n = 50 + rng.NextBounded(20);
    v.counts.push_back(n);
    v.sums.push_back(n * (1.5 + 0.2 * rng.NextGaussian()));
  }
  const MetricEstimate est = EstimateRatio(v);
  const double cov = EstimateRatioCovariance(v, v);
  EXPECT_NEAR(cov, est.var_of_mean, est.var_of_mean * 0.05);
}

TEST(CupedTest, CorrelatedCovariateReducesVariance) {
  Rng rng(13);
  const int b = 512;
  BucketValues y, x;
  for (int i = 0; i < b; ++i) {
    const double n = 100;
    const double user_level = rng.NextGaussian();            // shared signal
    const double pre = 10 + 2 * user_level + 0.3 * rng.NextGaussian();
    const double post = 20 + 4 * user_level + 0.5 * rng.NextGaussian();
    x.counts.push_back(n);
    x.sums.push_back(pre * n);
    y.counts.push_back(n);
    y.sums.push_back(post * n);
  }
  CupedResult result = ApplyCuped(y, x);
  // theta should be near cov/var = (4*2)/(4+0.09) ~ 1.96.
  EXPECT_NEAR(result.theta, 8.0 / 4.09, 0.15);
  EXPECT_GT(result.variance_reduction, 0.8);
  EXPECT_LT(result.adjusted.var_of_mean, result.unadjusted.var_of_mean);
  // The adjusted mean stays centered on the raw mean (centered covariate).
  EXPECT_NEAR(result.adjusted.mean, result.unadjusted.mean, 0.5);
}

TEST(CupedTest, UncorrelatedCovariateIsHarmless) {
  Rng rng(14);
  BucketValues y, x;
  for (int i = 0; i < 512; ++i) {
    y.counts.push_back(100);
    y.sums.push_back(100 * (5 + rng.NextGaussian()));
    x.counts.push_back(100);
    x.sums.push_back(100 * (3 + rng.NextGaussian()));
  }
  CupedResult result = ApplyCuped(y, x);
  EXPECT_NEAR(result.theta, 0.0, 0.1);
  EXPECT_NEAR(result.variance_reduction, 0.0, 0.05);
}

TEST(CupedTest, PooledThetaAcrossArms) {
  Rng rng(15);
  auto make_arm = [&rng](double shift) {
    BucketValues y, x;
    for (int i = 0; i < 256; ++i) {
      const double level = rng.NextGaussian();
      x.counts.push_back(50);
      x.sums.push_back(50 * (10 + level));
      y.counts.push_back(50);
      y.sums.push_back(50 * (shift + 3 * level + 0.1 * rng.NextGaussian()));
    }
    return std::pair<BucketValues, BucketValues>{y, x};
  };
  auto [y_t, x_t] = make_arm(21.0);
  auto [y_c, x_c] = make_arm(20.0);
  const double theta = PooledCupedTheta({&y_t, &y_c}, {&x_t, &x_c});
  EXPECT_NEAR(theta, 3.0, 0.2);
}

TEST(CupedTest, TooFewBucketsFallsBackToUnadjusted) {
  BucketValues y, x;
  y.sums = {10};
  y.counts = {5};
  x.sums = {8};
  x.counts = {5};
  CupedResult result = ApplyCuped(y, x);
  EXPECT_EQ(result.theta, 0.0);
  EXPECT_EQ(result.adjusted.mean, result.unadjusted.mean);
}

}  // namespace
}  // namespace expbsi
