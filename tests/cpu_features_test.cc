// Runtime SIMD dispatch (common/cpu_features.h) and the per-tier word pass
// tables (common/word_ops.h). The cross-tier differential here is the unit
// counterpart of the end-to-end kernel sweep in differential_test.cc: every
// pass of every supported tier must produce bit-identical buffers AND the
// same any()-style return value as the portable reference.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "common/word_ops.h"

namespace expbsi {
namespace {

TEST(CpuFeaturesTest, TierNames) {
  EXPECT_STREQ(SimdTierName(SimdTier::kPortable), "portable");
  EXPECT_STREQ(SimdTierName(SimdTier::kAvx2), "avx2");
  EXPECT_STREQ(SimdTierName(SimdTier::kAvx512), "avx512");
}

TEST(CpuFeaturesTest, DetectionOrdering) {
  EXPECT_GE(static_cast<int>(DetectedSimdTier()),
            static_cast<int>(SimdTier::kPortable));
  EXPECT_LE(static_cast<int>(ActiveSimdTier()),
            static_cast<int>(DetectedSimdTier()));
}

TEST(CpuFeaturesTest, SetTierClampsToDetected) {
  const SimdTier saved = ActiveSimdTier();
  // Asking for the widest tier never exceeds what the host has.
  SetSimdTierForTesting(SimdTier::kAvx512);
  EXPECT_LE(static_cast<int>(ActiveSimdTier()),
            static_cast<int>(DetectedSimdTier()));
  // Portable is always honored exactly.
  SetSimdTierForTesting(SimdTier::kPortable);
  EXPECT_EQ(ActiveSimdTier(), SimdTier::kPortable);
  SetSimdTierForTesting(saved);
}

// ---------------------------------------------------------------------------
// WordOps cross-tier differential.
// ---------------------------------------------------------------------------

constexpr size_t kW = WordOps::kWords;

std::vector<uint64_t> RandomWords(Rng& rng, double density) {
  std::vector<uint64_t> w(kW);
  for (uint64_t& word : w) {
    // Mix of empty, sparse, and dense words; density shifts the blend.
    const double roll = rng.NextDouble();
    if (roll < 0.25 * (1.0 - density)) {
      word = 0;
    } else if (roll < 0.5) {
      word = uint64_t{1} << rng.NextBounded(64);
    } else {
      word = rng.Next() & rng.Next();
      if (density > 0.5) word |= rng.Next();
    }
  }
  return w;
}

TEST(WordOpsTest, AllTiersMatchPortable) {
  const WordOps& portable = WordOpsForTier(SimdTier::kPortable);
  Rng rng(0x11E125);
  for (int iter = 0; iter < 40; ++iter) {
    const double density = rng.NextDouble();
    const std::vector<uint64_t> a = RandomWords(rng, density);
    const std::vector<uint64_t> b = RandomWords(rng, density);
    const std::vector<uint64_t> c = RandomWords(rng, density);
    const std::vector<uint64_t> d = RandomWords(rng, density);

    for (int t = 1; t <= static_cast<int>(DetectedSimdTier()); ++t) {
      const WordOps& ops = WordOpsForTier(static_cast<SimdTier>(t));
      const std::string ctx = std::string("tier=") +
                              SimdTierName(static_cast<SimdTier>(t)) +
                              " iter=" + std::to_string(iter);

      std::vector<uint64_t> ref = a, got = a;
      portable.lt_pass(ref.data(), b.data(), c.data());
      ops.lt_pass(got.data(), b.data(), c.data());
      EXPECT_EQ(got, ref) << ctx << " lt_pass";

      ref = a;
      got = a;
      const bool ref_eq = portable.eq_pass(ref.data(), b.data(), c.data());
      const bool got_eq = ops.eq_pass(got.data(), b.data(), c.data());
      EXPECT_EQ(got, ref) << ctx << " eq_pass";
      EXPECT_EQ(got_eq, ref_eq) << ctx << " eq_pass any";

      std::vector<uint64_t> ref2 = b, got2 = b;
      ref = a;
      got = a;
      const bool ref_s1 =
          portable.scalar_one_pass(ref.data(), ref2.data(), c.data());
      const bool got_s1 =
          ops.scalar_one_pass(got.data(), got2.data(), c.data());
      EXPECT_EQ(got, ref) << ctx << " scalar_one_pass lt";
      EXPECT_EQ(got2, ref2) << ctx << " scalar_one_pass eq";
      EXPECT_EQ(got_s1, ref_s1) << ctx << " scalar_one_pass any";

      ref = a;
      got = a;
      ref2 = b;
      got2 = b;
      const bool ref_s0 =
          portable.scalar_zero_pass(ref.data(), ref2.data(), c.data());
      const bool got_s0 =
          ops.scalar_zero_pass(got.data(), got2.data(), c.data());
      EXPECT_EQ(got, ref) << ctx << " scalar_zero_pass gt";
      EXPECT_EQ(got2, ref2) << ctx << " scalar_zero_pass eq";
      EXPECT_EQ(got_s0, ref_s0) << ctx << " scalar_zero_pass any";

      ref = a;
      got = a;
      std::vector<uint64_t> ref_carry(kW), got_carry(kW);
      const bool ref_csa =
          portable.csa_pass(ref.data(), b.data(), ref_carry.data());
      const bool got_csa = ops.csa_pass(got.data(), b.data(), got_carry.data());
      EXPECT_EQ(got, ref) << ctx << " csa_pass acc";
      EXPECT_EQ(got_carry, ref_carry) << ctx << " csa_pass carry";
      EXPECT_EQ(got_csa, ref_csa) << ctx << " csa_pass any";

      ref.assign(kW, 0);
      got.assign(kW, 0);
      portable.mask_andnot2_pass(ref.data(), a.data(), b.data(), c.data());
      ops.mask_andnot2_pass(got.data(), a.data(), b.data(), c.data());
      EXPECT_EQ(got, ref) << ctx << " mask_andnot2_pass";

      ref = a;
      got = a;
      EXPECT_EQ(ops.and_pass(got.data(), d.data()),
                portable.and_pass(ref.data(), d.data()))
          << ctx << " and_pass any";
      EXPECT_EQ(got, ref) << ctx << " and_pass";

      ref = a;
      got = a;
      EXPECT_EQ(ops.andnot_pass(got.data(), d.data()),
                portable.andnot_pass(ref.data(), d.data()))
          << ctx << " andnot_pass any";
      EXPECT_EQ(got, ref) << ctx << " andnot_pass";

      ref = a;
      got = a;
      portable.or_pass(ref.data(), d.data());
      ops.or_pass(got.data(), d.data());
      EXPECT_EQ(got, ref) << ctx << " or_pass";
    }
  }
}

// The any() returns must be exact, not conservative: all-zero inputs report
// dead accumulators on every tier.
TEST(WordOpsTest, AnyReturnsFalseOnZeroBuffers) {
  const std::vector<uint64_t> zeros(kW, 0);
  for (int t = 0; t <= static_cast<int>(DetectedSimdTier()); ++t) {
    const WordOps& ops = WordOpsForTier(static_cast<SimdTier>(t));
    std::vector<uint64_t> acc(kW, 0), aux(kW, 0), carry(kW, 0);
    EXPECT_FALSE(ops.eq_pass(acc.data(), zeros.data(), zeros.data()));
    EXPECT_FALSE(ops.scalar_one_pass(acc.data(), aux.data(), zeros.data()));
    EXPECT_FALSE(ops.scalar_zero_pass(acc.data(), aux.data(), zeros.data()));
    EXPECT_FALSE(ops.csa_pass(acc.data(), zeros.data(), carry.data()));
    EXPECT_FALSE(ops.and_pass(acc.data(), zeros.data()));
    EXPECT_FALSE(ops.andnot_pass(acc.data(), zeros.data()));
  }
}

}  // namespace
}  // namespace expbsi
