#include "expdata/raw_log.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace expbsi {
namespace {

TEST(AggregateRawExposeTest, KeepsFirstDatePerUnit) {
  std::vector<RawExposeEvent> events = {
      {7, 100, 100, 5}, {7, 100, 100, 3}, {7, 100, 100, 9},  // unit 100
      {7, 200, 200, 4},                                      // unit 200
      {8, 100, 100, 6},                                      // other strategy
  };
  const std::vector<ExposeRow> rows =
      AggregateRawExposeEvents(std::move(events));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].strategy_id, 7u);
  EXPECT_EQ(rows[0].analysis_unit_id, 100u);
  EXPECT_EQ(rows[0].first_expose_date, 3u);  // min of 5, 3, 9
  EXPECT_EQ(rows[1].analysis_unit_id, 200u);
  EXPECT_EQ(rows[1].first_expose_date, 4u);
  EXPECT_EQ(rows[2].strategy_id, 8u);
  EXPECT_EQ(rows[2].first_expose_date, 6u);
}

TEST(AggregateRawExposeTest, EmptyInput) {
  EXPECT_TRUE(AggregateRawExposeEvents({}).empty());
}

TEST(AggregateRawExposeTest, PropertyMinDateSurvives) {
  Rng rng(5);
  std::vector<RawExposeEvent> events;
  std::map<UnitId, Date> expect_min;
  for (int i = 0; i < 5000; ++i) {
    const UnitId unit = 1 + rng.NextBounded(300);
    const Date date = static_cast<Date>(rng.NextBounded(30));
    events.push_back({1, unit, unit, date});
    auto [it, inserted] = expect_min.try_emplace(unit, date);
    if (!inserted) it->second = std::min(it->second, date);
  }
  const std::vector<ExposeRow> rows =
      AggregateRawExposeEvents(std::move(events));
  ASSERT_EQ(rows.size(), expect_min.size());
  for (const ExposeRow& row : rows) {
    EXPECT_EQ(row.first_expose_date, expect_min.at(row.analysis_unit_id));
  }
}

TEST(AggregateRawMetricTest, SumsPerUnitDay) {
  std::vector<RawMetricEvent> events = {
      {1, 42, 100, 3}, {1, 42, 100, 4},  // same unit/day: sums to 7
      {2, 42, 100, 5},                   // next day
      {1, 42, 200, 1},
      {1, 43, 100, 9},                   // other metric
      {1, 42, 300, 0}, {1, 42, 300, 0},  // zero sum: dropped
  };
  const std::vector<MetricRow> rows =
      AggregateRawMetricEvents(std::move(events));
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].metric_id, 42u);
  EXPECT_EQ(rows[0].date, 1u);
  EXPECT_EQ(rows[0].analysis_unit_id, 100u);
  EXPECT_EQ(rows[0].value, 7u);
  EXPECT_EQ(rows[1].analysis_unit_id, 200u);
  EXPECT_EQ(rows[2].date, 2u);
  EXPECT_EQ(rows[2].value, 5u);
  EXPECT_EQ(rows[3].metric_id, 43u);
}

TEST(AggregateRawMetricTest, PropertySumMatchesNaive) {
  Rng rng(6);
  std::vector<RawMetricEvent> events;
  std::map<std::tuple<uint64_t, Date, UnitId>, uint64_t> expect;
  for (int i = 0; i < 8000; ++i) {
    RawMetricEvent e;
    e.metric_id = 1 + rng.NextBounded(3);
    e.date = static_cast<Date>(rng.NextBounded(5));
    e.analysis_unit_id = 1 + rng.NextBounded(200);
    e.value = rng.NextBounded(10);
    expect[{e.metric_id, e.date, e.analysis_unit_id}] += e.value;
    events.push_back(e);
  }
  size_t nonzero = 0;
  for (const auto& [key, v] : expect) nonzero += v > 0 ? 1 : 0;
  const std::vector<MetricRow> rows =
      AggregateRawMetricEvents(std::move(events));
  EXPECT_EQ(rows.size(), nonzero);
  for (const MetricRow& row : rows) {
    EXPECT_EQ(row.value,
              expect.at({row.metric_id, row.date, row.analysis_unit_id}));
    EXPECT_GT(row.value, 0u);
  }
}

}  // namespace
}  // namespace expbsi
