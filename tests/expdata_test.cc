#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "expdata/bsi_builder.h"
#include "expdata/position_encoder.h"
#include "expdata/segmenter.h"

namespace expbsi {
namespace {

TEST(PositionEncoderTest, SequentialAssignment) {
  PositionEncoder encoder;
  EXPECT_EQ(encoder.Encode(100), 0u);
  EXPECT_EQ(encoder.Encode(200), 1u);
  EXPECT_EQ(encoder.Encode(100), 0u);  // idempotent
  EXPECT_EQ(encoder.size(), 2u);
  EXPECT_EQ(encoder.Decode(0), 100u);
  EXPECT_EQ(encoder.Decode(1), 200u);
  EXPECT_EQ(encoder.Lookup(200), std::optional<uint32_t>(1));
  EXPECT_EQ(encoder.Lookup(999), std::nullopt);
}

TEST(PositionEncoderTest, PreassignRanked) {
  PositionEncoder encoder;
  encoder.PreassignRanked({50, 40, 30});
  EXPECT_EQ(encoder.Lookup(50), std::optional<uint32_t>(0));
  EXPECT_EQ(encoder.Lookup(30), std::optional<uint32_t>(2));
  // New ids continue after the preassigned block.
  EXPECT_EQ(encoder.Encode(99), 3u);
}

TEST(SegmenterTest, DeterministicAndInRange) {
  for (UnitId id = 1; id < 1000; ++id) {
    const int seg = SegmentOf(id, 1024);
    EXPECT_GE(seg, 0);
    EXPECT_LT(seg, 1024);
    EXPECT_EQ(seg, SegmentOf(id, 1024));
  }
}

TEST(SegmenterTest, RoughlyUniform) {
  const int n = 100000, segments = 16;
  std::vector<int> counts(segments, 0);
  for (UnitId id = 1; id <= n; ++id) ++counts[SegmentOf(id, segments)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / segments, n / segments * 0.1);
  }
}

TEST(SegmenterTest, BucketIndependentOfSegment) {
  // Within one segment, bucket assignment should still be ~uniform.
  const int segments = 16, buckets = 8;
  std::vector<int> bucket_counts(buckets, 0);
  int in_segment = 0;
  for (UnitId id = 1; id <= 200000; ++id) {
    if (SegmentOf(id, segments) != 3) continue;
    ++in_segment;
    ++bucket_counts[BucketOf(id, buckets)];
  }
  for (int c : bucket_counts) {
    EXPECT_NEAR(static_cast<double>(c), in_segment / buckets,
                in_segment / buckets * 0.15);
  }
}

TEST(SegmenterTest, StrategyArmSplit) {
  int arm0 = 0;
  const int n = 100000;
  for (UnitId id = 1; id <= n; ++id) {
    const int arm = StrategyArmOf(id, 777, 2);
    ASSERT_GE(arm, 0);
    ASSERT_LT(arm, 2);
    arm0 += arm == 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(arm0) / n, 0.5, 0.01);
}

// --- BSI builders -----------------------------------------------------------

TEST(BsiBuilderTest, ExposeBsiOffsetsAndDates) {
  PositionEncoder encoder;
  std::vector<ExposeRow> rows = {
      {8746325, 11, 11, 105},
      {8746325, 22, 22, 103},
      {8746325, 33, 33, 110},
  };
  ExposeBsi expose = BuildExposeBsi(rows, encoder, /*num_buckets=*/0);
  EXPECT_EQ(expose.strategy_id, 8746325u);
  EXPECT_EQ(expose.min_expose_date, 103u);
  // offset = date - min + 1.
  EXPECT_EQ(expose.offset.Get(*encoder.Lookup(11)), 3u);
  EXPECT_EQ(expose.offset.Get(*encoder.Lookup(22)), 1u);
  EXPECT_EQ(expose.offset.Get(*encoder.Lookup(33)), 8u);
  EXPECT_TRUE(expose.bucket.IsEmpty());

  // ExposedOnOrBefore honors the reconstructed dates.
  EXPECT_TRUE(expose.ExposedOnOrBefore(102).IsEmpty());
  EXPECT_EQ(expose.ExposedOnOrBefore(103).Cardinality(), 1u);
  EXPECT_EQ(expose.ExposedOnOrBefore(105).Cardinality(), 2u);
  EXPECT_EQ(expose.ExposedOnOrBefore(200).Cardinality(), 3u);

  // ExposedBetween (the paper's 2nd-to-5th-day example).
  const RoaringBitmap mid = expose.ExposedBetween(104, 109);
  EXPECT_EQ(mid.Cardinality(), 1u);
  EXPECT_TRUE(mid.Contains(*encoder.Lookup(11)));
  EXPECT_EQ(expose.ExposedBetween(103, 103).Cardinality(), 1u);
  EXPECT_TRUE(expose.ExposedBetween(120, 130).IsEmpty());
}

TEST(BsiBuilderTest, ExposeBsiWithBuckets) {
  PositionEncoder encoder;
  std::vector<ExposeRow> rows;
  for (UnitId id = 1; id <= 500; ++id) {
    rows.push_back({7, id, id, 100});
  }
  ExposeBsi expose = BuildExposeBsi(rows, encoder, /*num_buckets=*/32);
  EXPECT_EQ(expose.bucket.Cardinality(), 500u);
  for (UnitId id = 1; id <= 500; ++id) {
    const uint32_t pos = *encoder.Lookup(id);
    EXPECT_EQ(expose.bucket.Get(pos),
              static_cast<uint64_t>(BucketOf(id, 32)) + 1);
  }
}

TEST(BsiBuilderTest, MetricBsiRoundTrip) {
  PositionEncoder encoder;
  std::vector<MetricRow> rows = {
      {20, 8371, 5, 17},
      {20, 8371, 6, 3},
      {20, 8371, 7, 21600},
  };
  MetricBsi metric = BuildMetricBsi(rows, encoder);
  EXPECT_EQ(metric.date, 20u);
  EXPECT_EQ(metric.metric_id, 8371u);
  for (const MetricRow& row : rows) {
    EXPECT_EQ(metric.value.Get(*encoder.Lookup(row.analysis_unit_id)),
              row.value);
  }
}

TEST(BsiBuilderTest, SharedEncoderJoinsLogs) {
  // The same unit must land on the same position in expose and metric BSIs
  // (the position-encoding join of §4.1.1).
  PositionEncoder encoder;
  ExposeBsi expose =
      BuildExposeBsi({{1, 42, 42, 10}, {1, 43, 43, 11}}, encoder, 0);
  MetricBsi metric = BuildMetricBsi({{11, 5, 43, 99}}, encoder);
  const uint32_t pos43 = *encoder.Lookup(43);
  EXPECT_EQ(expose.offset.Get(pos43), 2u);
  EXPECT_EQ(metric.value.Get(pos43), 99u);
  // Masking the metric by the expose filter keeps exactly unit 43's value.
  const RoaringBitmap mask = expose.ExposedOnOrBefore(11);
  EXPECT_EQ(metric.value.SumUnderMask(mask), 99u);
  EXPECT_EQ(metric.value.SumUnderMask(expose.ExposedOnOrBefore(10)), 0u);
}

TEST(BsiBuilderTest, ExposeSerializeRoundTrip) {
  PositionEncoder encoder;
  std::vector<ExposeRow> rows;
  for (UnitId id = 1; id <= 300; ++id) {
    rows.push_back({99, id, id, static_cast<Date>(100 + id % 7)});
  }
  ExposeBsi expose = BuildExposeBsi(rows, encoder, 16);
  std::string bytes;
  expose.Serialize(&bytes);
  Result<ExposeBsi> parsed = ExposeBsi::Deserialize(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().strategy_id, 99u);
  EXPECT_EQ(parsed.value().min_expose_date, 100u);
  EXPECT_TRUE(parsed.value().offset.Equals(expose.offset));
  EXPECT_TRUE(parsed.value().bucket.Equals(expose.bucket));
}

TEST(BsiBuilderTest, MetricSerializeRoundTrip) {
  PositionEncoder encoder;
  MetricBsi metric = BuildMetricBsi({{5, 123, 9, 77}}, encoder);
  std::string bytes;
  metric.Serialize(&bytes);
  Result<MetricBsi> parsed = MetricBsi::Deserialize(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().date, 5u);
  EXPECT_EQ(parsed.value().metric_id, 123u);
  EXPECT_TRUE(parsed.value().value.Equals(metric.value));
  EXPECT_FALSE(MetricBsi::Deserialize(bytes.substr(0, 4)).ok());
}

TEST(BsiBuilderTest, EmptyRows) {
  PositionEncoder encoder;
  ExposeBsi expose = BuildExposeBsi({}, encoder, 0);
  EXPECT_TRUE(expose.offset.IsEmpty());
  MetricBsi metric = BuildMetricBsi({}, encoder);
  EXPECT_TRUE(metric.value.IsEmpty());
}

}  // namespace
}  // namespace expbsi
