#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/bit_util.h"
#include "common/hash.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "common/timer.h"

namespace expbsi {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  Result<int> err(Status::InvalidArgument("bad"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, UnavailableRoundTripsThroughResult) {
  const Status s = Status::Unavailable("node down");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.ToString(), "Unavailable: node down");
  Result<int> r(s);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(r.status().message(), "node down");
}

TEST(RetryTest, ClassificationFollowsTheFailureModel) {
  // Transient: a re-issued op can succeed.
  EXPECT_TRUE(IsRetryableStatus(Status::Unavailable("blip")));
  EXPECT_TRUE(IsRetryableStatus(Status::Corruption("bad bytes")));
  // Semantic absence and contract errors: retrying cannot help.
  EXPECT_FALSE(IsRetryableStatus(Status::NotFound("absent")));
  EXPECT_FALSE(IsRetryableStatus(Status::InvalidArgument("bad call")));
  EXPECT_FALSE(IsRetryableStatus(Status::OK()));
}

TEST(RetryTest, BackoffIsDeterministicJitteredAndCapped) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.1;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.5;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const double nominal =
        std::min(0.1 * std::pow(2.0, attempt - 1), 0.5);
    for (uint64_t token : {0ull, 1ull, 77ull}) {
      const double b = policy.BackoffSeconds(attempt, token);
      EXPECT_EQ(b, policy.BackoffSeconds(attempt, token));  // deterministic
      EXPECT_GE(b, 0.5 * nominal);
      EXPECT_LE(b, nominal);
    }
  }
  // Different tokens decorrelate (jitter actually varies).
  EXPECT_NE(policy.BackoffSeconds(1, 0), policy.BackoffSeconds(1, 1));
}

TEST(RetryTest, RecoversFromTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  int calls = 0;
  RetryStats stats;
  Result<int> r = RetryWithPolicy<int>(policy, 3, &stats,
                                       [&]() -> Result<int> {
                                         if (++calls < 3) {
                                           return Status::Unavailable("blip");
                                         }
                                         return 42;
                                       });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_TRUE(stats.recovered);
  EXPECT_GT(stats.backoff_seconds, 0.0);
}

TEST(RetryTest, FirstTrySuccessIsNotARecovery) {
  RetryStats stats;
  Result<int> r = RetryWithPolicy<int>(RetryPolicy{}, 0, &stats,
                                       []() -> Result<int> { return 1; });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_FALSE(stats.recovered);
}

TEST(RetryTest, NonRetryableStopsImmediately) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  Result<int> r = RetryWithPolicy<int>(
      policy, 0, nullptr,
      [&]() -> Result<int> {
        ++calls;
        return Status::NotFound("absent");
      });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, AttemptsAreBounded) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  RetryStats stats;
  Result<int> r = RetryWithPolicy<int>(
      policy, 0, &stats,
      [&]() -> Result<int> {
        ++calls;
        return Status::Unavailable("still down");
      });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_FALSE(stats.recovered);
}

TEST(RetryTest, DeadlineStopsRetriesEarly) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_seconds = 1.0;
  policy.backoff_multiplier = 1.0;
  policy.max_backoff_seconds = 1.0;
  policy.op_deadline_seconds = 2.0;  // room for at most 2 retries
  int calls = 0;
  Result<int> r = RetryWithPolicy<int>(
      policy, 0, nullptr,
      [&]() -> Result<int> {
        ++calls;
        return Status::Unavailable("down");
      });
  EXPECT_FALSE(r.ok());
  EXPECT_LE(calls, 5);  // bounded by the deadline, far below max_attempts
  EXPECT_GE(calls, 2);
}

TEST(BitUtilTest, Basics) {
  EXPECT_EQ(PopCount64(0), 0);
  EXPECT_EQ(PopCount64(~uint64_t{0}), 64);
  EXPECT_EQ(BitWidth64(0), 0);
  EXPECT_EQ(BitWidth64(1), 1);
  EXPECT_EQ(BitWidth64(5), 3);
  EXPECT_EQ(BitWidth64(1024), 11);
  EXPECT_EQ(CountTrailingZeros64(8), 3);
}

TEST(HashTest, SaltsProduceIndependentStreams) {
  // The same id hashed under the segment and bucket salts must not be
  // correlated: check that collisions of (seg % 16 == bucket % 16) occur at
  // roughly the 1/16 chance rate.
  int agree = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const uint64_t id = Mix64(i + 1);
    if (SaltedHash64(id, kSegmentHashSalt) % 16 ==
        SaltedHash64(id, kBucketHashSalt) % 16) {
      ++agree;
    }
  }
  EXPECT_NEAR(static_cast<double>(agree) / n, 1.0 / 16, 0.02);
}

TEST(RngTest, DeterministicAndSeedSensitive) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  bool differs = false;
  Rng a2(1);
  for (int i = 0; i < 100; ++i) differs |= (a2.Next() != c.Next());
  EXPECT_TRUE(differs);
}

TEST(RngTest, BoundedAndRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GeometricMean) {
  Rng rng(4);
  const double p = 0.4;
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.NextGeometric(p));
  EXPECT_NEAR(total / n, (1 - p) / p, 0.05);
  // p = 1 always returns 0.
  EXPECT_EQ(rng.NextGeometric(1.0), 0u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  const int n = 50000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(ZipfTest, RespectsSupportAndSkew) {
  Rng rng(6);
  ZipfDistribution zipf(1000, 1.3);
  int small = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = zipf.Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1000u);
    if (v <= 10) ++small;
  }
  // With s = 1.3 the head carries most of the mass (Pareto principle).
  EXPECT_GT(small, n / 2);
}

TEST(ZipfTest, DegenerateSupport) {
  Rng rng(7);
  ZipfDistribution zipf(1, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 1u);
}

TEST(ZipfTest, SEqualsOneIsHandled) {
  Rng rng(8);
  ZipfDistribution zipf(100, 1.0);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = zipf.Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(SampleDistinctTest, DistinctAndComplete) {
  Rng rng(9);
  // Sparse path.
  std::vector<uint64_t> sample = SampleDistinct(rng, 1000000, 100);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  // Dense path: asking for everything returns a permutation.
  sample = SampleDistinct(rng, 50, 50);
  unique = {sample.begin(), sample.end()};
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 49u);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  // The pool is reusable after Wait.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  ParallelFor(pool, 50, [&hits](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < 50; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(TimerTest, CpuAndWallAdvance) {
  CpuTimer cpu;
  Stopwatch wall;
  // Busy loop long enough to register.
  volatile double x = 0;
  for (int i = 0; i < 2000000; ++i) {
    x = x + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(cpu.ElapsedSeconds(), 0.0);
  EXPECT_GT(wall.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace expbsi
