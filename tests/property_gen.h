#ifndef EXPBSI_TESTS_PROPERTY_GEN_H_
#define EXPBSI_TESTS_PROPERTY_GEN_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "common/rng.h"
#include "expdata/generator.h"
#include "expdata/schema.h"

namespace expbsi {
namespace propgen {

// Randomized workload generation for the differential-oracle tests
// (differential_test.cc). Everything is a pure function of the Rng state, so
// a single seed reproduces a whole iteration: the column shapes, the dataset,
// and the queries.

// --------------------------------------------------------------------------
// Raw column workloads (Bsi vs RefColumn).
// --------------------------------------------------------------------------

// Shapes chosen to steer the underlying roaring containers and slice counts:
//   kEmpty     no positions (empty BSI edge case)
//   kSingle    one position (single-container, single-slice extremes)
//   kSparse    scattered positions -> array containers
//   kDense     a heavily filled block -> bitset containers
//   kRuns      consecutive position runs -> run containers
//   kAllEqual  many positions, one value -> minimal slice count
//   kMaxWidth  ONE position with a value up to 2^64-1 -> 64-slice BSI
//              (single position so Sum cannot overflow the uint64 CHECK)
//   kZipf      zipf-skewed values near 1, mixed sparse/dense positions
//   kBoundary  ~4090..4100 positions inside ONE 2^16 chunk: containers land
//              on both sides of the 4096 array<->bitmap promotion boundary,
//              so ops and the lazy-union flush cross it both ways
enum class ColumnShape {
  kEmpty,
  kSingle,
  kSparse,
  kDense,
  kRuns,
  kAllEqual,
  kMaxWidth,
  kZipf,
  kBoundary,
};
inline constexpr int kNumColumnShapes = 9;

inline ColumnShape RandomShape(Rng& rng) {
  return static_cast<ColumnShape>(rng.NextBounded(kNumColumnShapes));
}

// Shape for columns feeding arithmetic (Add/Multiply/scalar ops): kMaxWidth
// values are near 2^64 and would overflow uint64 mid-operation -- Bsi grows
// extra slices while the scalar oracle wraps, a divergence that is out of
// contract rather than a bug. Those columns remap to kZipf.
inline ColumnShape RandomArithmeticShape(Rng& rng) {
  const ColumnShape shape = RandomShape(rng);
  return shape == ColumnShape::kMaxWidth ? ColumnShape::kZipf : shape;
}

// Position->value pairs for one column. `universe` bounds positions,
// `value_cap` bounds values of the multi-position shapes (callers pass a
// small cap when the column feeds arithmetic that must not overflow 64 bits,
// e.g. Multiply). The result has strictly increasing positions, as
// Bsi::FromPairs and RefColumn::FromPairs both require duplicate-free input.
inline std::vector<std::pair<uint32_t, uint64_t>> GenColumnPairs(
    Rng& rng, ColumnShape shape, uint32_t universe, uint64_t value_cap) {
  std::map<uint32_t, uint64_t> entries;
  const auto value = [&]() -> uint64_t {
    return 1 + rng.NextBounded(value_cap);
  };
  switch (shape) {
    case ColumnShape::kEmpty:
      break;
    case ColumnShape::kSingle:
      entries[static_cast<uint32_t>(rng.NextBounded(universe))] = value();
      break;
    case ColumnShape::kSparse: {
      const int n = 1 + static_cast<int>(rng.NextBounded(universe / 64 + 1));
      for (int i = 0; i < n; ++i) {
        entries[static_cast<uint32_t>(rng.NextBounded(universe))] = value();
      }
      break;
    }
    case ColumnShape::kDense: {
      // A block filled at 60-95%: bitset containers once the block spans
      // >4096 positions of one 2^16 chunk.
      const uint32_t width = 1 + static_cast<uint32_t>(
                                     rng.NextBounded(std::min<uint32_t>(
                                         universe, 20000)));
      const uint32_t start =
          static_cast<uint32_t>(rng.NextBounded(universe));
      const double fill = 0.6 + 0.35 * rng.NextDouble();
      for (uint32_t i = 0; i < width; ++i) {
        if (rng.NextBernoulli(fill)) entries[start + i] = value();
      }
      break;
    }
    case ColumnShape::kRuns: {
      // A few runs of consecutive positions; ~half the runs share one value
      // (run containers in the value slices), the rest vary per position.
      const int runs = 1 + static_cast<int>(rng.NextBounded(5));
      for (int r = 0; r < runs; ++r) {
        const uint32_t start =
            static_cast<uint32_t>(rng.NextBounded(universe));
        const uint32_t len =
            1 + static_cast<uint32_t>(rng.NextBounded(3000));
        const bool constant_run = rng.NextBernoulli(0.5);
        const uint64_t run_value = value();
        for (uint32_t i = 0; i < len; ++i) {
          entries[start + i] = constant_run ? run_value : value();
        }
      }
      break;
    }
    case ColumnShape::kAllEqual: {
      const int n = 1 + static_cast<int>(rng.NextBounded(2000));
      const uint64_t v = value();
      for (int i = 0; i < n; ++i) {
        entries[static_cast<uint32_t>(rng.NextBounded(universe))] = v;
      }
      break;
    }
    case ColumnShape::kMaxWidth: {
      // One position, value in [2^62, 2^64-1]: exercises the 63rd/64th bit
      // slices without risking the Sum overflow CHECK.
      const uint64_t hi = (uint64_t{1} << 62) +
                          (rng.Next() >> 2) * 3;  // uniform-ish in range
      entries[static_cast<uint32_t>(rng.NextBounded(universe))] =
          std::max<uint64_t>(hi, uint64_t{1} << 62);
      break;
    }
    case ColumnShape::kZipf: {
      const int n = 1 + static_cast<int>(rng.NextBounded(3000));
      ZipfDistribution zipf(std::max<uint64_t>(value_cap, 2), 1.2);
      const bool clustered = rng.NextBernoulli(0.5);
      const uint32_t base =
          static_cast<uint32_t>(rng.NextBounded(universe));
      for (int i = 0; i < n; ++i) {
        const uint32_t pos =
            clustered
                ? base + static_cast<uint32_t>(rng.NextBounded(4096))
                : static_cast<uint32_t>(rng.NextBounded(universe));
        entries[pos] = zipf.Sample(rng);
      }
      break;
    }
    case ColumnShape::kBoundary: {
      // Target cardinality hugs the 4096 promotion threshold from either
      // side; positions are drawn from one aligned 2^16 chunk so they all
      // land in a single container.
      const uint32_t chunk_base =
          universe > (1u << 16)
              ? (static_cast<uint32_t>(rng.NextBounded(universe >> 16))
                 << 16)
              : 0;
      const int target = 4090 + static_cast<int>(rng.NextBounded(11));
      while (static_cast<int>(entries.size()) < target) {
        entries[chunk_base + static_cast<uint32_t>(rng.NextBounded(1u << 16))] =
            value();
      }
      break;
    }
  }
  return {entries.begin(), entries.end()};
}

// Two correlated columns for the compare kernels (bsi_compare.cc): unlike
// two independent GenColumnPairs draws -- where Eq almost never fires and
// Lt/Le boundaries are hit by luck -- most positions here carry a planted
// relationship. Per shared position one of:
//   equal        x == y                     (Eq hits, Ne/Lt misses)
//   off-by-one   y = x +/- 1                (Lt vs Le single-bit boundaries)
//   high-slice   y = x + 2^b, b high        (equal low slices, one high flip)
//   random       independent draws
// plus x-only / y-only positions (both-present masking). Position layout
// mixes one dense block (bitset containers) with a scattered remainder
// (array containers), and the two sides get EXTRA private positions with
// opposite layouts so a chunk is dense on one side and sparse on the other
// -- the container mix the word kernels' sparse/dense dispatch cares about.
inline void GenCorrelatedPairs(
    Rng& rng, uint32_t universe, uint64_t value_cap,
    std::vector<std::pair<uint32_t, uint64_t>>* x_out,
    std::vector<std::pair<uint32_t, uint64_t>>* y_out) {
  std::map<uint32_t, uint64_t> x, y;
  const auto value = [&]() -> uint64_t {
    // Half the draws hug powers of two (slice-boundary values).
    if (rng.NextBernoulli(0.5)) return 1 + rng.NextBounded(value_cap);
    const int bit = static_cast<int>(rng.NextBounded(40));
    const uint64_t p = uint64_t{1} << bit;
    const uint64_t deltas[] = {p - 1, p, p + 1};
    return std::max<uint64_t>(1, deltas[rng.NextBounded(3)]);
  };
  const int n = 64 + static_cast<int>(rng.NextBounded(6000));
  const uint32_t dense_base =
      static_cast<uint32_t>(rng.NextBounded(universe >> 16)) << 16;
  const double dense_fraction = rng.NextDouble();
  for (int i = 0; i < n; ++i) {
    const uint32_t pos =
        rng.NextBernoulli(dense_fraction)
            ? dense_base + static_cast<uint32_t>(rng.NextBounded(1u << 13))
            : static_cast<uint32_t>(rng.NextBounded(universe));
    const uint64_t vx = value();
    switch (rng.NextBounded(6)) {
      case 0:  // equal
        x[pos] = vx;
        y[pos] = vx;
        break;
      case 1:  // off-by-one, either direction, floor at 1
        x[pos] = vx;
        y[pos] = rng.NextBernoulli(0.5) ? vx + 1 : std::max<uint64_t>(1, vx - 1);
        break;
      case 2: {  // equal low slices, one high bit apart
        x[pos] = vx;
        y[pos] = vx + (uint64_t{1} << (20 + rng.NextBounded(20)));
        break;
      }
      case 3:  // independent
        x[pos] = vx;
        y[pos] = value();
        break;
      case 4:  // x only
        x[pos] = vx;
        break;
      default:  // y only
        y[pos] = vx;
        break;
    }
  }
  // Private extras with opposite layouts: x gets a dense block y lacks, y
  // gets a sparse scatter x lacks.
  const int extras = static_cast<int>(rng.NextBounded(3000));
  const uint32_t x_block =
      static_cast<uint32_t>(rng.NextBounded(universe >> 16)) << 16;
  for (int i = 0; i < extras; ++i) {
    x[x_block + static_cast<uint32_t>(rng.NextBounded(1u << 12))] = value();
    y[static_cast<uint32_t>(rng.NextBounded(universe))] = value();
  }
  x_out->assign(x.begin(), x.end());
  y_out->assign(y.begin(), y.end());
}

// Boundary-heavy range constants for a column: every interesting k is an
// actual column value or its off-by-one neighbor, a power of two straddling
// the column's bit width, or a degenerate extreme (0, 1, UINT64_MAX). The
// scalar-partition kernels branch on "k-bit set/clear per slice", so these
// are the constants where lt/eq/gt accumulators flip behavior.
inline std::vector<uint64_t> GenBoundaryConstants(
    Rng& rng, const std::vector<std::pair<uint32_t, uint64_t>>& pairs) {
  std::vector<uint64_t> ks = {0, 1, ~uint64_t{0}};
  uint64_t max_v = 0;
  for (const auto& [pos, v] : pairs) max_v = std::max(max_v, v);
  for (int i = 0; i < 6 && !pairs.empty(); ++i) {
    const uint64_t v = pairs[rng.NextBounded(pairs.size())].second;
    const uint64_t deltas[] = {v - 1, v, v + 1};
    ks.push_back(deltas[rng.NextBounded(3)]);
  }
  // Powers of two around the column's width: 2^w is one slice past the top
  // value, 2^(w-1) sits inside it.
  int width = 0;
  for (uint64_t v = max_v; v != 0; v >>= 1) ++width;
  for (const int b : {width - 1, width, width + 1}) {
    if (b >= 0 && b < 64) {
      const uint64_t p = uint64_t{1} << b;
      ks.push_back(p - 1);
      ks.push_back(p);
    }
  }
  return ks;
}

// A skewed array-array intersection workload for the galloping kernel: one
// small sorted array (1..64 values) and one large one (hundreds..4096) drawn
// from the SAME 2^16 chunk so both sides stay array containers, with roughly
// half of the small side's values planted into the large side (hits).
inline void GenSkewedArrays(Rng& rng, uint32_t chunk_base,
                            std::vector<uint32_t>* small_out,
                            std::vector<uint32_t>* large_out) {
  const int small_n = 1 + static_cast<int>(rng.NextBounded(64));
  const int large_n = 256 + static_cast<int>(rng.NextBounded(3841));
  std::map<uint32_t, bool> large;  // position -> (value unused)
  while (static_cast<int>(large.size()) < large_n) {
    large[chunk_base + static_cast<uint32_t>(rng.NextBounded(1u << 16))] =
        true;
  }
  std::map<uint32_t, bool> small;
  while (static_cast<int>(small.size()) < small_n) {
    if (!large.empty() && rng.NextBernoulli(0.5)) {
      // Plant a hit: pick an existing member of the large side.
      auto it = large.begin();
      std::advance(it, rng.NextBounded(large.size()));
      small[it->first] = true;
    } else {
      small[chunk_base + static_cast<uint32_t>(rng.NextBounded(1u << 16))] =
          true;
    }
  }
  small_out->clear();
  for (const auto& [pos, unused] : small) small_out->push_back(pos);
  large_out->clear();
  for (const auto& [pos, unused] : large) large_out->push_back(pos);
}

// A random position mask over the same universe (for SumUnderMask /
// MultiplyByBinary), possibly empty, possibly dense.
inline std::vector<uint32_t> GenMask(Rng& rng, uint32_t universe) {
  std::map<uint32_t, uint64_t> m;
  for (const auto& [pos, v] :
       GenColumnPairs(rng, RandomShape(rng), universe, 2)) {
    m[pos] = v;
  }
  std::vector<uint32_t> out;
  out.reserve(m.size());
  for (const auto& [pos, v] : m) out.push_back(pos);
  return out;
}

// --------------------------------------------------------------------------
// Dataset workloads (engines + queries).
// --------------------------------------------------------------------------

struct FuzzDataset {
  Dataset dataset;
  bool engagement_ordered = true;  // position-encoding variant under test
};

// Ids are fixed so query generation can reference them without re-deriving.
inline constexpr uint64_t kFuzzControlStrategy = 9100;
inline constexpr uint64_t kFuzzTreatmentStrategy = 9101;
inline constexpr uint64_t kFuzzExtraStrategy = 9102;
inline constexpr uint64_t kFuzzMetricA = 501;
inline constexpr uint64_t kFuzzMetricB = 502;
inline constexpr uint32_t kFuzzDimension = 7;
inline constexpr uint32_t kFuzzDimension2 = 8;

// A small randomized experiment dataset: varies population size, segment and
// bucket structure (including bucket != segment and the session-level unit
// hierarchy), day count, metric value ranges up to 2^40 (max-slice stress),
// participation (sparse through dense, with segments that can end up empty),
// exposure ramp and traffic fraction, and the position-encoding order.
// Kept deliberately small: the oracle engines are O(rows) scalar scans and
// the suite runs hundreds of iterations.
inline FuzzDataset GenDataset(Rng& rng) {
  DatasetConfig config;
  config.num_users = 30 + rng.NextBounded(270);
  config.num_segments = 1 + static_cast<int>(rng.NextBounded(4));
  config.bucket_equals_segment = rng.NextBernoulli(0.5);
  config.num_buckets =
      config.bucket_equals_segment
          ? 1024
          : 4 + static_cast<int>(rng.NextBounded(9));
  config.start_date = static_cast<Date>(rng.NextBounded(3));
  config.num_days = 2 + static_cast<int>(rng.NextBounded(4));
  config.seed = rng.Next();
  // The generator's engagement normalization requires an exponent < 1.
  config.engagement_exponent = 0.2 + 0.65 * rng.NextDouble();

  ExperimentConfig experiment;
  experiment.strategy_ids = {kFuzzControlStrategy, kFuzzTreatmentStrategy};
  experiment.arm_effects = {1.0, 0.9 + 0.3 * rng.NextDouble()};
  if (rng.NextBernoulli(0.3)) {
    experiment.strategy_ids.push_back(kFuzzExtraStrategy);
    experiment.arm_effects.push_back(1.0 + 0.2 * rng.NextDouble());
  }
  experiment.traffic_salt = 1 + rng.NextBounded(1000);
  const double fractions[] = {0.25, 0.6, 1.0};
  experiment.traffic_fraction = fractions[rng.NextBounded(3)];
  experiment.expose_day_p = 0.3 + 0.6 * rng.NextDouble();

  // Metric A: value range from binary up to 2^40 (deep slice stacks).
  // Metric B: small range, used as ratio denominator / CUPED covariate.
  const uint64_t ranges[] = {1, 2, 50, 1000, uint64_t{1} << 20,
                             uint64_t{1} << 40};
  MetricConfig metric_a;
  metric_a.metric_id = kFuzzMetricA;
  metric_a.value_range = ranges[rng.NextBounded(6)];
  metric_a.zipf_s = 1.05 + rng.NextDouble();
  const double participations[] = {0.02, 0.2, 0.6};
  metric_a.daily_participation = participations[rng.NextBounded(3)];
  MetricConfig metric_b;
  metric_b.metric_id = kFuzzMetricB;
  metric_b.value_range = 1 + rng.NextBounded(100);
  metric_b.zipf_s = 1.2;
  metric_b.daily_participation = 0.3 + 0.4 * rng.NextDouble();

  DimensionConfig dim;
  dim.dimension_id = kFuzzDimension;
  dim.cardinality = 2 + rng.NextBounded(5);
  DimensionConfig dim2;
  dim2.dimension_id = kFuzzDimension2;
  dim2.cardinality = 2 + rng.NextBounded(3);

  FuzzDataset out;
  if (rng.NextBernoulli(0.25)) {
    // Session-level unit hierarchy: analysis unit below the randomization
    // unit, buckets inherited from the user id (always bucket != segment).
    config.num_users = 20 + rng.NextBounded(120);
    config.num_buckets = 4 + static_cast<int>(rng.NextBounded(9));
    out.dataset = GenerateSessionDataset(config, {experiment},
                                         {metric_a, metric_b},
                                         0.5 + 1.5 * rng.NextDouble());
  } else {
    out.dataset = GenerateDataset(config, {experiment},
                                  {metric_a, metric_b}, {dim, dim2});
  }
  out.engagement_ordered = rng.NextBernoulli(0.5);
  return out;
}

// --------------------------------------------------------------------------
// Query workloads (EQL text for RunQuery vs RefRunQuery).
// --------------------------------------------------------------------------

// A random EQL query against `dataset`'s ids and date range. Most are valid;
// ~1 in 8 deliberately violates a validation rule (offset predicate on a
// metric source, grouped median) so the differential test also checks error
// parity. Unknown metric ids are occasionally used too -- those are NOT
// errors, the segments just contribute nothing.
inline std::string GenQuery(Rng& rng, const Dataset& dataset) {
  const Date lo = dataset.config.start_date;
  const Date hi = lo + dataset.config.num_days - 1;
  const auto date = [&]() -> Date {
    return lo + static_cast<Date>(
                    rng.NextBounded(dataset.config.num_days));
  };
  const auto strategy = [&]() -> uint64_t {
    const auto& ids = dataset.experiments[0].strategy_ids;
    return ids[rng.NextBounded(ids.size())];
  };
  const auto metric = [&]() -> uint64_t {
    if (rng.NextBernoulli(0.1)) return 99999;  // unknown: empty, not error
    return rng.NextBernoulli(0.5) ? kFuzzMetricA : kFuzzMetricB;
  };
  const char* cmps[] = {"=", "!=", "<", "<=", ">", ">="};
  const auto cmp = [&]() { return cmps[rng.NextBounded(6)]; };

  const bool invalid = rng.NextBernoulli(0.125);
  const int source_kind = static_cast<int>(rng.NextBounded(3));

  std::string source;
  bool expose_source = false;
  if (source_kind == 0) {
    const Date d = date();
    source = "metric(" + std::to_string(metric()) +
             ", date = " + std::to_string(d);
    if (rng.NextBernoulli(0.5)) {
      const Date to = d + static_cast<Date>(rng.NextBounded(hi - d + 1));
      source += ", to = " + std::to_string(to);
    }
    source += ")";
  } else if (source_kind == 1) {
    source = "dim(" + std::to_string(kFuzzDimension) +
             ", date = " + std::to_string(date()) + ")";
  } else {
    source = "expose(" + std::to_string(strategy()) + ")";
    expose_source = true;
  }

  std::vector<std::string> aggs;
  if (invalid && rng.NextBernoulli(0.4)) {
    // Grouped median / quantile / uv etc. are rejected with GROUP BY BUCKET.
    aggs = {"median(value)"};
  } else {
    const char* pool[] = {"sum(value)", "count(*)",   "avg(value)",
                          "min(value)", "max(value)", "median(value)",
                          "uv(value)",  "quantile(value, 0.9)"};
    const int n = 1 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < n; ++i) aggs.push_back(pool[rng.NextBounded(8)]);
  }
  std::string text = "SELECT ";
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) text += ", ";
    text += aggs[i];
  }
  text += " FROM " + source;

  std::vector<std::string> preds;
  if (invalid && !expose_source && rng.NextBernoulli(0.7)) {
    preds.push_back(std::string("offset ") + cmp() + " " +
                    std::to_string(rng.NextBounded(4)));
  }
  const int num_preds = static_cast<int>(rng.NextBounded(3));
  for (int i = 0; i < num_preds; ++i) {
    switch (rng.NextBounded(expose_source ? 4 : 3)) {
      case 0: {
        std::string pred = "exposed(" + std::to_string(strategy());
        if (rng.NextBernoulli(0.5)) {
          pred += ", on_or_before = " + std::to_string(date());
        }
        preds.push_back(pred + ")");
        break;
      }
      case 1:
        preds.push_back(std::string("value ") + cmp() + " " +
                        std::to_string(1 + rng.NextBounded(50)));
        break;
      case 2:
        preds.push_back("dim(" + std::to_string(kFuzzDimension2) +
                        ", date = " + std::to_string(date()) + ") " +
                        cmp() + " " +
                        std::to_string(1 + rng.NextBounded(4)));
        break;
      default:  // offset predicate, only valid on an expose source
        preds.push_back(std::string("offset ") + cmp() + " " +
                        std::to_string(1 + rng.NextBounded(4)));
        break;
    }
  }
  for (size_t i = 0; i < preds.size(); ++i) {
    text += (i == 0 ? " WHERE " : " AND ") + preds[i];
  }

  const bool group = invalid ? rng.NextBernoulli(0.6)
                             : rng.NextBernoulli(0.25);
  if (group) text += " GROUP BY BUCKET";
  return text;
}

// --------------------------------------------------------------------------
// Fault schedules (chaos_test.cc).
// --------------------------------------------------------------------------

// One randomized chaos scenario: an injector seed, per-site fault
// probabilities and a handful of one-shot faults pinned to small op indices.
// Pure function of the Rng state, so a single seed replays the whole
// schedule (see docs/TESTING.md "Chaos tests").
struct FaultSchedule {
  uint64_t injector_seed = 0;

  struct Probability {
    std::string site;
    FaultKind kind = FaultKind::kFail;
    double p = 0.0;
    double delay_seconds = 0.0;  // only for kDelay
  };
  std::vector<Probability> probabilities;

  struct OneShot {
    std::string site;
    uint64_t op_index = 0;
    FaultKind kind = FaultKind::kFail;
  };
  std::vector<OneShot> one_shots;

  void ApplyTo(FaultInjector* injector) const {
    for (const Probability& prob : probabilities) {
      switch (prob.kind) {
        case FaultKind::kFail:
          injector->SetFailProbability(prob.site, prob.p);
          break;
        case FaultKind::kCorrupt:
          injector->SetCorruptProbability(prob.site, prob.p);
          break;
        case FaultKind::kCrash:
          injector->SetCrashProbability(prob.site, prob.p);
          break;
        case FaultKind::kDelay:
          injector->SetDelayProbability(prob.site, prob.p,
                                        prob.delay_seconds);
          break;
        case FaultKind::kDuplicate:
          injector->SetDuplicateProbability(prob.site, prob.p);
          break;
        case FaultKind::kTruncate:
          injector->SetTruncateProbability(prob.site, prob.p);
          break;
      }
    }
    for (const OneShot& shot : one_shots) {
      injector->ScheduleFault(shot.site, shot.op_index, shot.kind);
    }
  }
};

// Draws a schedule mixing background noise (per-op probabilities at a few
// intensity levels, from rare blips to sustained outage) with one-shot
// faults at small op indices (early fetches, first waves, first pipeline
// attempts -- where recovery logic has the most state to get wrong). Kinds
// are restricted to what each site supports, mirroring fault_sites::.
inline FaultSchedule GenFaultSchedule(Rng& rng) {
  FaultSchedule schedule;
  schedule.injector_seed = rng.Next();
  const double levels[] = {0.01, 0.05, 0.15, 0.4};
  const auto maybe = [&](const char* site, FaultKind kind,
                         double activation_p, double delay = 0.0) {
    if (rng.NextBernoulli(activation_p)) {
      schedule.probabilities.push_back(
          {site, kind, levels[rng.NextBounded(4)], delay});
    }
  };
  const auto delay = [&]() { return 0.001 + 0.02 * rng.NextDouble(); };
  maybe(fault_sites::kTierFetch, FaultKind::kFail, 0.5);
  maybe(fault_sites::kTierFetch, FaultKind::kCorrupt, 0.4);
  maybe(fault_sites::kTierFetch, FaultKind::kDelay, 0.25, delay());
  maybe(fault_sites::kWarehouseGet, FaultKind::kFail, 0.2);
  maybe(fault_sites::kNodeSegment, FaultKind::kCrash, 0.35);
  maybe(fault_sites::kNodeSegment, FaultKind::kDelay, 0.25, delay());
  maybe(fault_sites::kPipelineTask, FaultKind::kFail, 0.4);

  const int num_one_shots = static_cast<int>(rng.NextBounded(7));
  for (int i = 0; i < num_one_shots; ++i) {
    FaultSchedule::OneShot shot;
    switch (rng.NextBounded(4)) {
      case 0:
        shot.site = fault_sites::kTierFetch;
        shot.op_index = rng.NextBounded(160);
        shot.kind = rng.NextBernoulli(0.5) ? FaultKind::kCorrupt
                                           : FaultKind::kFail;
        break;
      case 1:
        shot.site = fault_sites::kWarehouseGet;
        shot.op_index = rng.NextBounded(160);
        shot.kind = FaultKind::kFail;
        break;
      case 2:
        shot.site = fault_sites::kNodeSegment;
        shot.op_index = rng.NextBounded(16);
        shot.kind = FaultKind::kCrash;
        break;
      default:
        shot.site = fault_sites::kPipelineTask;
        // Pipeline op indices are pair_index * stride + attempt.
        shot.op_index = rng.NextBounded(8) * kPipelineAttemptStride +
                        rng.NextBounded(3);
        shot.kind = FaultKind::kFail;
        break;
    }
    schedule.one_shots.push_back(std::move(shot));
  }
  return schedule;
}

// --------------------------------------------------------------------------
// Snapshot kill/corruption schedules (chaos_test.cc kill-recovery sweep).
// --------------------------------------------------------------------------

// A schedule over the snapshot.* sites only. One SnapshotWriter::Write of an
// N-segment store evaluates snapshot.write and snapshot.rename once per file
// in a fixed order -- segment files first, the manifest (the commit point)
// last -- so op indices in [0, N] pin faults to exact commit-protocol steps:
// a torn segment .tmp, a kill after a durable .tmp but before its rename, a
// kill right before the manifest rename, a committed file whose bytes were
// corrupted in flight. snapshot.read faults fire during recovery instead
// (unreadable or bitflipped files), which must lose exactly the affected
// segment, never the whole snapshot.
inline FaultSchedule GenSnapshotFaultSchedule(Rng& rng,
                                              uint64_t write_file_ops) {
  FaultSchedule schedule;
  schedule.injector_seed = rng.Next();
  if (rng.NextBernoulli(0.3)) {
    const double levels[] = {0.05, 0.2, 0.5};
    schedule.probabilities.push_back(
        {fault_sites::kSnapshotRead, FaultKind::kCorrupt,
         levels[rng.NextBounded(3)], 0.0});
  }
  const int num_one_shots = 1 + static_cast<int>(rng.NextBounded(4));
  for (int i = 0; i < num_one_shots; ++i) {
    FaultSchedule::OneShot shot;
    shot.op_index = rng.NextBounded(write_file_ops + 1);
    switch (rng.NextBounded(5)) {
      case 0:  // kill mid-write: torn .tmp, never renamed in
        shot.site = fault_sites::kSnapshotWrite;
        shot.kind = FaultKind::kCrash;
        break;
      case 1:  // clean write failure (ENOSPC-style)
        shot.site = fault_sites::kSnapshotWrite;
        shot.kind = FaultKind::kFail;
        break;
      case 2:  // bits flipped in flight: a COMMITTED file fails its CRC
        shot.site = fault_sites::kSnapshotWrite;
        shot.kind = FaultKind::kCorrupt;
        break;
      case 3:  // kill after durable .tmp, before the rename
        shot.site = fault_sites::kSnapshotRename;
        shot.kind = FaultKind::kCrash;
        break;
      default:  // recovery-time read fault
        shot.site = fault_sites::kSnapshotRead;
        shot.kind = rng.NextBernoulli(0.5) ? FaultKind::kCorrupt
                                           : FaultKind::kFail;
        break;
    }
    schedule.one_shots.push_back(std::move(shot));
  }
  return schedule;
}

// --------------------------------------------------------------------------
// WAL ingestion schedules (wal_differential_test.cc, chaos_test.cc).
// --------------------------------------------------------------------------

// One randomized ingestion run over a dataset's event stream: how events are
// batched into records, where segments roll, and where checkpoints and
// close/reopen recoveries land. Pure function of the Rng state (one seed
// replays the run).
struct WalIngestPlan {
  size_t batch_events = 64;     // events per WAL record
  uint64_t segment_bytes = 0;   // WalOptions::segment_bytes
  double checkpoint_p = 0.0;    // per-batch probability of a Checkpoint()
  double reopen_p = 0.0;        // per-batch probability of close + recover
  bool final_checkpoint = false;
};

inline WalIngestPlan GenWalIngestPlan(Rng& rng) {
  WalIngestPlan plan;
  // From one-event records (every event is its own replay unit) up to
  // whole-stream records; small segments force rolls mid-stream.
  const size_t batches[] = {1, 7, 32, 200, 100000};
  plan.batch_events = batches[rng.NextBounded(5)];
  const uint64_t segment_sizes[] = {256, 1024, 16384, 4u << 20};
  plan.segment_bytes = segment_sizes[rng.NextBounded(4)];
  const double checkpoint_levels[] = {0.0, 0.1, 0.3};
  plan.checkpoint_p = checkpoint_levels[rng.NextBounded(3)];
  const double reopen_levels[] = {0.0, 0.1, 0.25};
  plan.reopen_p = reopen_levels[rng.NextBounded(3)];
  plan.final_checkpoint = rng.NextBernoulli(0.5);
  return plan;
}

// A schedule over the wal.* sites only. Kinds are restricted to what the
// sweep's invariants can pin down exactly:
//   kFail   clean reject -- the writer stays alive, the batch retries
//   kCrash  simulated process kill -- append leaves a torn (fsynced) record
//           prefix, fsync dies after the flush (record durable), roll leaves
//           a torn segment header; the writer is dead and the store recovers
//           by snapshot + replay
// kCorrupt is deliberately absent here: bits flipped in flight are the same
// failure as bits flipped at rest, and the torn-log fuzzer
// (decode_fuzz_test.cc) already sweeps those over every byte.
inline FaultSchedule GenWalFaultSchedule(Rng& rng, uint64_t append_ops) {
  FaultSchedule schedule;
  schedule.injector_seed = rng.Next();
  if (rng.NextBernoulli(0.3)) {
    // Background append rejections: the ingest loop must retry without
    // skipping or reordering records.
    const double levels[] = {0.02, 0.1, 0.3};
    schedule.probabilities.push_back({fault_sites::kWalAppend,
                                      FaultKind::kFail,
                                      levels[rng.NextBounded(3)], 0.0});
  }
  const int num_one_shots = 1 + static_cast<int>(rng.NextBounded(3));
  for (int i = 0; i < num_one_shots; ++i) {
    FaultSchedule::OneShot shot;
    switch (rng.NextBounded(3)) {
      case 0:
        shot.site = fault_sites::kWalAppend;
        shot.op_index = rng.NextBounded(append_ops + 1);
        shot.kind = rng.NextBernoulli(0.5) ? FaultKind::kCrash
                                           : FaultKind::kFail;
        break;
      case 1:
        shot.site = fault_sites::kWalFsync;
        shot.op_index = rng.NextBounded(append_ops + 1);
        shot.kind = rng.NextBernoulli(0.5) ? FaultKind::kCrash
                                           : FaultKind::kFail;
        break;
      default:
        // Roll op 0 is the segment Open starts; later ops are size rolls
        // and reopen-time restarts.
        shot.site = fault_sites::kWalRoll;
        shot.op_index = rng.NextBounded(8);
        shot.kind = rng.NextBernoulli(0.5) ? FaultKind::kCrash
                                           : FaultKind::kFail;
        break;
    }
    schedule.one_shots.push_back(std::move(shot));
  }
  return schedule;
}

}  // namespace propgen
}  // namespace expbsi

#endif  // EXPBSI_TESTS_PROPERTY_GEN_H_
