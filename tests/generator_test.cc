#include "expdata/generator.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "expdata/segmenter.h"

namespace expbsi {
namespace {

DatasetConfig SmallConfig() {
  DatasetConfig config;
  config.num_users = 5000;
  config.num_segments = 8;
  config.num_days = 5;
  config.start_date = 100;
  config.seed = 123;
  return config;
}

ExperimentConfig TwoArmExperiment(double effect) {
  ExperimentConfig exp;
  exp.strategy_ids = {1001, 1002};
  exp.arm_effects = {1.0, effect};
  exp.traffic_salt = 99;
  return exp;
}

MetricConfig SimpleMetric() {
  MetricConfig m;
  m.metric_id = 42;
  m.value_range = 100;
  m.daily_participation = 0.5;
  return m;
}

TEST(GeneratorTest, DeterministicAcrossRuns) {
  Dataset a = GenerateDataset(SmallConfig(), {TwoArmExperiment(1.1)},
                              {SimpleMetric()}, {});
  Dataset b = GenerateDataset(SmallConfig(), {TwoArmExperiment(1.1)},
                              {SimpleMetric()}, {});
  ASSERT_EQ(a.segments.size(), b.segments.size());
  size_t expose_rows = 0, metric_rows = 0;
  for (size_t s = 0; s < a.segments.size(); ++s) {
    ASSERT_EQ(a.segments[s].expose.size(), b.segments[s].expose.size());
    ASSERT_EQ(a.segments[s].metrics.size(), b.segments[s].metrics.size());
    expose_rows += a.segments[s].expose.size();
    metric_rows += a.segments[s].metrics.size();
    for (size_t i = 0; i < a.segments[s].metrics.size(); ++i) {
      EXPECT_EQ(a.segments[s].metrics[i].value,
                b.segments[s].metrics[i].value);
      EXPECT_EQ(a.segments[s].metrics[i].analysis_unit_id,
                b.segments[s].metrics[i].analysis_unit_id);
    }
  }
  EXPECT_GT(expose_rows, 0u);
  EXPECT_GT(metric_rows, 0u);
}

TEST(GeneratorTest, RowsLandInCorrectSegments) {
  Dataset ds = GenerateDataset(SmallConfig(), {TwoArmExperiment(1.0)},
                               {SimpleMetric()}, {});
  for (int seg = 0; seg < ds.config.num_segments; ++seg) {
    for (const MetricRow& row : ds.segments[seg].metrics) {
      EXPECT_EQ(SegmentOf(row.analysis_unit_id, ds.config.num_segments), seg);
      EXPECT_GE(row.value, 1u);
      EXPECT_LE(row.value, 100u);
      EXPECT_GE(row.date, 100u);
      EXPECT_LT(row.date, 105u);
    }
    for (const ExposeRow& row : ds.segments[seg].expose) {
      EXPECT_EQ(SegmentOf(row.analysis_unit_id, ds.config.num_segments), seg);
    }
  }
}

TEST(GeneratorTest, UserIdsUniqueAndTrafficSplitBalanced) {
  Dataset ds = GenerateDataset(SmallConfig(), {TwoArmExperiment(1.0)},
                               {SimpleMetric()}, {});
  std::set<UnitId> users;
  std::map<uint64_t, int> by_strategy;
  for (const SegmentData& seg : ds.segments) {
    for (const ExposeRow& row : seg.expose) {
      EXPECT_TRUE(users.insert(row.analysis_unit_id).second)
          << "unit exposed twice in one experiment";
      ++by_strategy[row.strategy_id];
      EXPECT_LE(row.analysis_unit_id, 0xFFFFFFFFull);  // 32-bit ids
    }
  }
  ASSERT_EQ(by_strategy.size(), 2u);
  const double ratio = static_cast<double>(by_strategy[1001]) /
                       (by_strategy[1001] + by_strategy[1002]);
  EXPECT_NEAR(ratio, 0.5, 0.05);
}

TEST(GeneratorTest, ExposureDecaysGeometrically) {
  DatasetConfig config = SmallConfig();
  config.num_users = 20000;
  Dataset ds = GenerateDataset(config, {TwoArmExperiment(1.0)},
                               {SimpleMetric()}, {});
  std::map<Date, int> by_day;
  for (const SegmentData& seg : ds.segments) {
    for (const ExposeRow& row : seg.expose) ++by_day[row.first_expose_date];
  }
  // Most exposures in the first days (§3.5).
  ASSERT_GT(by_day[100], 0);
  EXPECT_GT(by_day[100], by_day[101]);
  EXPECT_GT(by_day[101], by_day[102]);
  EXPECT_GT(by_day[100] + by_day[101],
            by_day[102] + by_day[103] + by_day[104]);
}

TEST(GeneratorTest, TreatmentEffectShiftsValues) {
  DatasetConfig config = SmallConfig();
  config.num_users = 30000;
  ExperimentConfig exp = TwoArmExperiment(1.5);  // strong effect
  Dataset ds = GenerateDataset(config, {exp}, {SimpleMetric()}, {});
  // Map unit -> arm from the expose rows.
  std::map<UnitId, uint64_t> arm_of;
  std::map<UnitId, Date> exposed_on;
  for (const SegmentData& seg : ds.segments) {
    for (const ExposeRow& row : seg.expose) {
      arm_of[row.analysis_unit_id] = row.strategy_id;
      exposed_on[row.analysis_unit_id] = row.first_expose_date;
    }
  }
  double sum_c = 0, n_c = 0, sum_t = 0, n_t = 0;
  for (const SegmentData& seg : ds.segments) {
    for (const MetricRow& row : seg.metrics) {
      auto it = arm_of.find(row.analysis_unit_id);
      if (it == arm_of.end()) continue;
      if (row.date < exposed_on[row.analysis_unit_id]) continue;
      if (it->second == 1001) {
        sum_c += static_cast<double>(row.value);
        ++n_c;
      } else {
        sum_t += static_cast<double>(row.value);
        ++n_t;
      }
    }
  }
  ASSERT_GT(n_c, 1000.0);
  ASSERT_GT(n_t, 1000.0);
  EXPECT_GT(sum_t / n_t, 1.2 * (sum_c / n_c));
}

TEST(GeneratorTest, EngagementOrderingSkewsParticipation) {
  DatasetConfig config = SmallConfig();
  config.num_users = 10000;
  config.num_segments = 1;  // everything in one segment for easy ranking
  Dataset ds = GenerateDataset(config, {}, {SimpleMetric()}, {});
  const std::vector<UnitId>& ranked = ds.users_by_engagement[0];
  ASSERT_EQ(ranked.size(), 10000u);
  std::map<UnitId, int> activity;
  for (const MetricRow& row : ds.segments[0].metrics) {
    ++activity[row.analysis_unit_id];
  }
  double head = 0, tail = 0;
  for (size_t i = 0; i < 1000; ++i) head += activity[ranked[i]];
  for (size_t i = 9000; i < 10000; ++i) tail += activity[ranked[i]];
  EXPECT_GT(head, 2 * tail);  // engaged users log far more rows
}

TEST(GeneratorTest, DimensionValuesMostlyStable) {
  DatasetConfig config = SmallConfig();
  DimensionConfig dim;
  dim.dimension_id = 7;
  dim.cardinality = 5;
  Dataset ds = GenerateDataset(config, {}, {}, {dim});
  std::map<UnitId, std::set<uint64_t>> values_of;
  size_t rows = 0;
  for (const SegmentData& seg : ds.segments) {
    for (const DimensionRow& row : seg.dimensions) {
      EXPECT_EQ(row.dimension_id, 7u);
      EXPECT_GE(row.value, 1u);
      EXPECT_LE(row.value, 5u);
      values_of[row.analysis_unit_id].insert(row.value);
      ++rows;
    }
  }
  // One row per user per day.
  EXPECT_EQ(rows, config.num_users * config.num_days);
  int stable = 0;
  for (const auto& [unit, vals] : values_of) {
    stable += vals.size() == 1 ? 1 : 0;
  }
  EXPECT_GT(stable, static_cast<int>(values_of.size() * 0.8));
}

TEST(MetricPopulationTest, CoreMatchesTable3Proportions) {
  const std::vector<MetricConfig> metrics =
      MakeCoreMetricPopulation(105, 1, 9);
  ASSERT_EQ(metrics.size(), 105u);
  std::map<int, int> histogram;  // log10 bucket -> count
  for (const MetricConfig& m : metrics) {
    int bucket = 0;
    uint64_t hi = 10;
    while (m.value_range > hi) {
      hi *= 10;
      ++bucket;
    }
    ++histogram[bucket];
  }
  // Table 3 exact counts.
  EXPECT_EQ(histogram[0], 33);
  EXPECT_EQ(histogram[1], 4);
  EXPECT_EQ(histogram[2], 26);
  EXPECT_EQ(histogram[3], 18);
  EXPECT_EQ(histogram[4], 12);
  EXPECT_EQ(histogram[5], 5);
  EXPECT_EQ(histogram[6], 5);
  EXPECT_EQ(histogram[7], 2);
}

TEST(MetricPopulationTest, FleetMatchesFigure4Constraint) {
  const std::vector<MetricConfig> metrics =
      MakeFleetMetricPopulation(5890, 1, 10);
  ASSERT_EQ(metrics.size(), 5890u);
  int small = 0;
  for (const MetricConfig& m : metrics) {
    if (m.value_range <= 100) ++small;
  }
  // Paper: 3979 of 5890 metrics have range cardinality <= 100.
  EXPECT_NEAR(small, 3979, 30);
}

TEST(MetricPopulationTest, TypicalMetricsABC) {
  const std::vector<MetricConfig> abc = MakeTypicalMetricsABC();
  ASSERT_EQ(abc.size(), 3u);
  EXPECT_EQ(abc[0].value_range, 1u);      // A: binary
  EXPECT_EQ(abc[1].value_range, 50u);     // B
  EXPECT_EQ(abc[2].value_range, 21600u);  // C
  EXPECT_GT(abc[0].daily_participation, abc[1].daily_participation);
  EXPECT_GT(abc[2].daily_participation, abc[0].daily_participation);
}

}  // namespace
}  // namespace expbsi
