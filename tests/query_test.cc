#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "bsi/bsi_aggregate.h"
#include "common/rng.h"
#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/token.h"
#include "tests/test_util.h"

namespace expbsi {
namespace {

// --- Lexer -------------------------------------------------------------------

TEST(TokenizeTest, BasicTokens) {
  Result<std::vector<Token>> tokens =
      Tokenize("SELECT sum(value), count(*) FROM metric(8371, date = 5)");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& ts = tokens.value();
  EXPECT_EQ(ts[0].type, TokenType::kIdentifier);
  EXPECT_EQ(ts[0].text, "select");  // lower-cased
  EXPECT_EQ(ts[1].text, "sum");
  EXPECT_EQ(ts[2].type, TokenType::kLParen);
  EXPECT_EQ(ts.back().type, TokenType::kEnd);
}

TEST(TokenizeTest, OperatorsAndNumbers) {
  Result<std::vector<Token>> tokens = Tokenize(">= <= != <> < > = 0.75 12");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& ts = tokens.value();
  EXPECT_EQ(ts[0].type, TokenType::kGe);
  EXPECT_EQ(ts[1].type, TokenType::kLe);
  EXPECT_EQ(ts[2].type, TokenType::kNe);
  EXPECT_EQ(ts[3].type, TokenType::kNe);
  EXPECT_EQ(ts[4].type, TokenType::kLt);
  EXPECT_EQ(ts[5].type, TokenType::kGt);
  EXPECT_EQ(ts[6].type, TokenType::kEq);
  EXPECT_DOUBLE_EQ(ts[7].number, 0.75);
  EXPECT_DOUBLE_EQ(ts[8].number, 12);
}

TEST(TokenizeTest, DashedIdentifiers) {
  Result<std::vector<Token>> tokens = Tokenize("on_or_before metric-log");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].text, "on_or_before");
  EXPECT_EQ(tokens.value()[1].text, "metric-log");
}

TEST(TokenizeTest, RejectsGarbage) {
  EXPECT_FALSE(Tokenize("select @ from").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

// --- Parser ------------------------------------------------------------------

TEST(ParseQueryTest, FullQuery) {
  Result<Query> q = ParseQuery(
      "SELECT sum(value), count(*), quantile(value, 0.9) "
      "FROM metric(8371, date = 5) "
      "WHERE exposed(8764293, on_or_before = 5) AND value > 10 "
      "  AND dim(1, date = 5) = 2 "
      "GROUP BY BUCKET");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const Query& query = q.value();
  EXPECT_EQ(query.source, Query::Source::kMetric);
  EXPECT_EQ(query.source_id, 8371u);
  EXPECT_EQ(query.date, 5u);
  ASSERT_EQ(query.aggregates.size(), 3u);
  EXPECT_EQ(query.aggregates[0].func, QueryAggregate::Func::kSum);
  EXPECT_EQ(query.aggregates[1].func, QueryAggregate::Func::kCount);
  EXPECT_EQ(query.aggregates[2].func, QueryAggregate::Func::kQuantile);
  EXPECT_DOUBLE_EQ(query.aggregates[2].quantile_q, 0.9);
  ASSERT_EQ(query.predicates.size(), 3u);
  EXPECT_EQ(query.predicates[0].kind, QueryPredicate::Kind::kExposed);
  EXPECT_EQ(query.predicates[0].strategy_id, 8764293u);
  EXPECT_EQ(query.predicates[1].kind, QueryPredicate::Kind::kValue);
  EXPECT_EQ(query.predicates[1].op, CompareOp::kGt);
  EXPECT_EQ(query.predicates[2].kind, QueryPredicate::Kind::kDimension);
  EXPECT_EQ(query.predicates[2].dimension_id, 1u);
  EXPECT_TRUE(query.group_by_bucket);
}

TEST(ParseQueryTest, ExposeSource) {
  Result<Query> q = ParseQuery(
      "select count(*) from expose(8746325) where offset >= 2 and offset <= 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().source, Query::Source::kExpose);
  EXPECT_EQ(q.value().source_id, 8746325u);
  ASSERT_EQ(q.value().predicates.size(), 2u);
  EXPECT_EQ(q.value().predicates[0].kind, QueryPredicate::Kind::kOffset);
  EXPECT_EQ(q.value().predicates[0].op, CompareOp::kGe);
}

TEST(ParseQueryTest, SyntaxErrors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("select from metric(1, date = 0)").ok());
  EXPECT_FALSE(ParseQuery("select sum(value)").ok());                // no FROM
  EXPECT_FALSE(ParseQuery("select frob(value) from expose(1)").ok());
  EXPECT_FALSE(ParseQuery("select sum(*) from expose(1)").ok());     // * only in count
  EXPECT_FALSE(ParseQuery("select sum(value) from metric(1)").ok()); // no date
  EXPECT_FALSE(
      ParseQuery("select sum(value) from metric(1, date = 0) trailing").ok());
  EXPECT_FALSE(
      ParseQuery("select quantile(value, 1.5) from metric(1, date=0)").ok());
  EXPECT_FALSE(
      ParseQuery("select sum(value) from metric(1, date = 0) where").ok());
}

// --- QuantileOverInputs ------------------------------------------------------

TEST(QuantileOverInputsTest, MatchesMergedQuantile) {
  Rng rng(41);
  auto m1 = testing_util::RandomValueMap(rng, 2000, 10000, 500);
  auto m2 = testing_util::RandomValueMap(rng, 2000, 10000, 500);
  Bsi b1 = Bsi::FromPairs(testing_util::ToPairVector(m1));
  Bsi b2 = Bsi::FromPairs(testing_util::ToPairVector(m2));
  // Reference: all values in one sorted vector.
  std::vector<uint64_t> all;
  for (const auto& [pos, v] : m1) all.push_back(v);
  for (const auto& [pos, v] : m2) all.push_back(v);
  std::sort(all.begin(), all.end());
  for (double q : {0.1, 0.5, 0.9, 1.0}) {
    uint64_t rank = static_cast<uint64_t>(
        std::max(1.0, std::ceil(q * static_cast<double>(all.size()))));
    if (rank > all.size()) rank = all.size();
    EXPECT_EQ(QuantileOverInputs({{&b1, nullptr}, {&b2, nullptr}}, q),
              all[rank - 1])
        << "q=" << q;
  }
}

TEST(QuantileOverInputsTest, RespectsMasks) {
  Bsi b = Bsi::FromValues({10, 20, 30, 40, 50});
  RoaringBitmap mask = RoaringBitmap::FromSorted({2, 3, 4});  // 30, 40, 50
  EXPECT_EQ(QuantileOverInputs({{&b, &mask}}, 0.5), 40u);
  EXPECT_EQ(QuantileOverInputs({{&b, &mask}}, 0.0), 30u);
  EXPECT_EQ(QuantileOverInputs({{&b, &mask}}, 1.0), 50u);
}

// --- End-to-end execution ----------------------------------------------------

class QueryExecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.num_users = 10000;
    config.num_segments = 8;
    config.num_days = 5;
    config.seed = 99;

    ExperimentConfig exp;
    exp.strategy_ids = {21, 22};
    exp.arm_effects = {1.0, 1.1};
    exp.traffic_salt = 13;

    MetricConfig m;
    m.metric_id = 8371;
    m.value_range = 200;
    m.daily_participation = 0.5;

    DimensionConfig d;
    d.dimension_id = 1;
    d.cardinality = 3;

    dataset_ = new Dataset(GenerateDataset(config, {exp}, {m}, {d}));
    bsi_ = new ExperimentBsiData(BuildExperimentBsiData(*dataset_, true));
  }

  static void TearDownTestSuite() {
    delete bsi_;
    delete dataset_;
  }

  static Dataset* dataset_;
  static ExperimentBsiData* bsi_;
};

Dataset* QueryExecTest::dataset_ = nullptr;
ExperimentBsiData* QueryExecTest::bsi_ = nullptr;

TEST_F(QueryExecTest, PlainAggregatesMatchRows) {
  Result<QueryResult> r = RunQuery(
      *bsi_, "select sum(value), count(*), avg(value), min(value), "
             "max(value) from metric(8371, date = 2)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  double sum = 0, count = 0, minv = 1e18, maxv = 0;
  for (const SegmentData& seg : dataset_->segments) {
    for (const MetricRow& row : seg.metrics) {
      if (row.metric_id != 8371 || row.date != 2) continue;
      sum += static_cast<double>(row.value);
      count += 1;
      minv = std::min(minv, static_cast<double>(row.value));
      maxv = std::max(maxv, static_cast<double>(row.value));
    }
  }
  EXPECT_DOUBLE_EQ(r.value().row[0], sum);
  EXPECT_DOUBLE_EQ(r.value().row[1], count);
  EXPECT_DOUBLE_EQ(r.value().row[2], sum / count);
  EXPECT_DOUBLE_EQ(r.value().row[3], minv);
  EXPECT_DOUBLE_EQ(r.value().row[4], maxv);
}

TEST_F(QueryExecTest, MedianMatchesRows) {
  Result<QueryResult> r = RunQuery(
      *bsi_, "select median(value), quantile(value, 0.9) "
             "from metric(8371, date = 1)");
  ASSERT_TRUE(r.ok());
  std::vector<uint64_t> values;
  for (const SegmentData& seg : dataset_->segments) {
    for (const MetricRow& row : seg.metrics) {
      if (row.metric_id == 8371 && row.date == 1) values.push_back(row.value);
    }
  }
  std::sort(values.begin(), values.end());
  const uint64_t n = values.size();
  EXPECT_EQ(r.value().row[0],
            static_cast<double>(values[static_cast<size_t>(
                std::ceil(0.5 * n)) - 1]));
  EXPECT_EQ(r.value().row[1],
            static_cast<double>(values[static_cast<size_t>(
                std::ceil(0.9 * n)) - 1]));
}

TEST_F(QueryExecTest, MultiDayWindowMatchesEngine) {
  // Date-range scan with the per-scan-day expose filter == the engine's
  // multi-day scorecard sums.
  Result<QueryResult> r = RunQuery(
      *bsi_, "select sum(value), uv(value) from metric(8371, date = 0, "
             "to = 4) where exposed(22)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const BucketValues direct = ComputeStrategyMetricBsi(*bsi_, 22, 8371, 0, 4);
  EXPECT_DOUBLE_EQ(r.value().row[0], direct.total_sum());
  const BucketValues uv =
      ComputeStrategyUniqueVisitorsBsi(*bsi_, 22, 8371, 0, 4);
  EXPECT_DOUBLE_EQ(r.value().row[1], uv.total_sum());
}

TEST_F(QueryExecTest, MultiDayCountIsRowCount) {
  Result<QueryResult> r = RunQuery(
      *bsi_, "select count(*), uv(value) from metric(8371, date = 0, to = 4)");
  ASSERT_TRUE(r.ok());
  double rows = 0;
  std::set<UnitId> distinct;
  for (const SegmentData& seg : dataset_->segments) {
    for (const MetricRow& row : seg.metrics) {
      if (row.metric_id == 8371 && row.date <= 4) {
        rows += 1;
        distinct.insert(row.analysis_unit_id);
      }
    }
  }
  EXPECT_DOUBLE_EQ(r.value().row[0], rows);
  EXPECT_DOUBLE_EQ(r.value().row[1], static_cast<double>(distinct.size()));
  // Multi-day count(*) counts (unit, day) rows, so uv <= count.
  EXPECT_LE(r.value().row[1], r.value().row[0]);
}

TEST_F(QueryExecTest, MultiDayQuantileMatchesRows) {
  Result<QueryResult> r = RunQuery(
      *bsi_, "select median(value) from metric(8371, date = 0, to = 3)");
  ASSERT_TRUE(r.ok());
  std::vector<uint64_t> values;
  for (const SegmentData& seg : dataset_->segments) {
    for (const MetricRow& row : seg.metrics) {
      if (row.metric_id == 8371 && row.date <= 3) values.push_back(row.value);
    }
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(r.value().row[0],
            static_cast<double>(values[static_cast<size_t>(
                std::ceil(0.5 * values.size())) - 1]));
}

TEST_F(QueryExecTest, BadDateRangeRejected) {
  EXPECT_FALSE(
      RunQuery(*bsi_, "select sum(value) from metric(8371, date=3, to=1)")
          .ok());
}

TEST_F(QueryExecTest, ScorecardKernelMatchesEngine) {
  // The paper's scorecard SQL expressed in EQL must reproduce
  // ComputeStrategyMetricBsi's single-day numbers.
  Result<QueryResult> r = RunQuery(
      *bsi_, "select sum(value) from metric(8371, date = 3) "
             "where exposed(22, on_or_before = 3)");
  ASSERT_TRUE(r.ok());
  const BucketValues direct =
      ComputeStrategyMetricBsi(*bsi_, 22, 8371, 3, 3);
  EXPECT_DOUBLE_EQ(r.value().row[0], direct.total_sum());
}

TEST_F(QueryExecTest, GroupByBucketMatchesEngine) {
  Result<QueryResult> r = RunQuery(
      *bsi_, "select sum(value), count(*) from metric(8371, date = 3) "
             "where exposed(22, on_or_before = 3) group by bucket");
  ASSERT_TRUE(r.ok());
  const BucketValues direct =
      ComputeStrategyMetricBsi(*bsi_, 22, 8371, 3, 3);
  ASSERT_EQ(r.value().per_bucket.size(), direct.sums.size());
  for (size_t b = 0; b < direct.sums.size(); ++b) {
    EXPECT_DOUBLE_EQ(r.value().per_bucket[b][0], direct.sums[b]);
  }
}

TEST_F(QueryExecTest, ExposeSourceOffsetFilter) {
  // Units first exposed between the 2nd and 5th day (paper §4.1.2).
  Result<QueryResult> r = RunQuery(
      *bsi_,
      "select count(*) from expose(21) where offset >= 2 and offset <= 5");
  ASSERT_TRUE(r.ok());
  double expect = 0;
  for (const SegmentData& seg : dataset_->segments) {
    Date min_date = 0xFFFFFFFF;
    for (const ExposeRow& row : seg.expose) {
      if (row.strategy_id == 21) {
        min_date = std::min(min_date, row.first_expose_date);
      }
    }
    for (const ExposeRow& row : seg.expose) {
      if (row.strategy_id != 21) continue;
      const uint64_t offset = row.first_expose_date - min_date + 1;
      if (offset >= 2 && offset <= 5) expect += 1;
    }
  }
  EXPECT_DOUBLE_EQ(r.value().row[0], expect);
}

TEST_F(QueryExecTest, DimensionAndValuePredicates) {
  Result<QueryResult> r = RunQuery(
      *bsi_, "select sum(value) from metric(8371, date = 2) "
             "where dim(1, date = 2) = 1 and value > 50");
  ASSERT_TRUE(r.ok());
  std::map<UnitId, uint64_t> dim_value;
  for (const SegmentData& seg : dataset_->segments) {
    for (const DimensionRow& row : seg.dimensions) {
      if (row.dimension_id == 1 && row.date == 2) {
        dim_value[row.analysis_unit_id] = row.value;
      }
    }
  }
  double expect = 0;
  for (const SegmentData& seg : dataset_->segments) {
    for (const MetricRow& row : seg.metrics) {
      if (row.metric_id != 8371 || row.date != 2 || row.value <= 50) continue;
      auto it = dim_value.find(row.analysis_unit_id);
      if (it != dim_value.end() && it->second == 1) {
        expect += static_cast<double>(row.value);
      }
    }
  }
  EXPECT_DOUBLE_EQ(r.value().row[0], expect);
}

TEST_F(QueryExecTest, MissingDataIsEmptyNotError) {
  Result<QueryResult> r = RunQuery(
      *bsi_, "select sum(value), count(*) from metric(424242, date = 2)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().row[0], 0.0);
  EXPECT_EQ(r.value().row[1], 0.0);
}

TEST_F(QueryExecTest, ValidationErrors) {
  // offset predicate on a metric source.
  EXPECT_FALSE(RunQuery(*bsi_, "select sum(value) from metric(8371, date=2) "
                               "where offset >= 2")
                   .ok());
  // unsupported grouped aggregate.
  EXPECT_FALSE(RunQuery(*bsi_, "select median(value) from "
                               "metric(8371, date=2) group by bucket")
                   .ok());
}

TEST_F(QueryExecTest, ToStringRendersTable) {
  Result<QueryResult> r =
      RunQuery(*bsi_, "select count(*) from metric(8371, date = 0)");
  ASSERT_TRUE(r.ok());
  const std::string rendered = r.value().ToString();
  EXPECT_NE(rendered.find("count(*)"), std::string::npos);
  EXPECT_NE(rendered.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace expbsi

namespace expbsi {
namespace {

TEST_F(QueryExecTest, DimensionSourceProfile) {
  // Profile the client-type dimension itself: counts per value via EQL.
  Result<QueryResult> all =
      RunQuery(*bsi_, "select count(*), max(value) from dim(1, date = 0)");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  double expect_rows = 0;
  uint64_t expect_max = 0;
  for (const SegmentData& seg : dataset_->segments) {
    for (const DimensionRow& row : seg.dimensions) {
      if (row.dimension_id == 1 && row.date == 0) {
        expect_rows += 1;
        expect_max = std::max(expect_max, row.value);
      }
    }
  }
  EXPECT_DOUBLE_EQ(all.value().row[0], expect_rows);
  EXPECT_DOUBLE_EQ(all.value().row[1], static_cast<double>(expect_max));
  // Value predicates apply to the dimension value.
  Result<QueryResult> ios =
      RunQuery(*bsi_, "select count(*) from dim(1, date = 0) where value = 1");
  ASSERT_TRUE(ios.ok());
  double expect_ios = 0;
  for (const SegmentData& seg : dataset_->segments) {
    for (const DimensionRow& row : seg.dimensions) {
      if (row.dimension_id == 1 && row.date == 0 && row.value == 1) {
        expect_ios += 1;
      }
    }
  }
  EXPECT_DOUBLE_EQ(ios.value().row[0], expect_ios);
}

}  // namespace
}  // namespace expbsi
