// Concurrency stress for the components that run under parallel query load:
// ThreadPool, TieredStore (shared per-node hot tier), AdhocCluster::QueryBsi
// and PrecomputePipeline. These tests are meaningful in any build but exist
// primarily for the TSan preset (cmake --preset tsan), which turns latent
// data races into hard failures. Sizes are kept small: TSan multiplies
// runtime ~10x and CI may be single-core.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/adhoc_cluster.h"
#include "cluster/precompute_pipeline.h"
#include "common/threadpool.h"
#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"
#include "storage/tiered_store.h"

namespace expbsi {
namespace {

Dataset MakeDataset() {
  DatasetConfig config;
  config.num_users = 400;
  config.num_segments = 4;
  config.bucket_equals_segment = true;  // required by AdhocCluster
  config.num_days = 4;
  config.seed = 1234;
  ExperimentConfig experiment;
  experiment.strategy_ids = {700, 701};
  experiment.arm_effects = {1.0, 1.1};
  MetricConfig metric_a;
  metric_a.metric_id = 31;
  metric_a.value_range = 200;
  MetricConfig metric_b;
  metric_b.metric_id = 32;
  metric_b.value_range = 5;
  metric_b.daily_participation = 0.5;
  return GenerateDataset(config, {experiment}, {metric_a, metric_b}, {});
}

TEST(ConcurrencyTest, ThreadPoolSubmitFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  // Producers submit concurrently with each other and with the workers.
  std::vector<std::thread> producers;
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 200;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &executed] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        pool.Submit([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(executed.load(), kProducers * kTasksPerProducer);

  // Repeated Wait barriers interleaved with fresh work.
  for (int round = 0; round < 10; ++round) {
    ParallelFor(pool, 16, [&executed](int) {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(executed.load(), kProducers * kTasksPerProducer + 160);
}

TEST(ConcurrencyTest, TieredStoreSharedAcrossThreads) {
  BsiStore cold;
  std::vector<BsiStoreKey> keys;
  for (uint16_t seg = 0; seg < 8; ++seg) {
    for (uint64_t id = 0; id < 8; ++id) {
      const BsiStoreKey key{seg, BsiKind::kMetric, id, 0};
      cold.Put(key, std::string(100 + 64 * id, 'a' + (seg + id) % 26));
      keys.push_back(key);
    }
  }
  // Tiny hot budget: concurrent fetches constantly evict each other's
  // entries, hammering the LRU list from all threads.
  TieredStore tier(&cold, /*hot_capacity_bytes=*/600);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 300; ++i) {
        const BsiStoreKey& key = keys[(i * 7 + t * 13) % keys.size()];
        if ((i & 15) == 0) (void)tier.Warm(key);
        Result<std::shared_ptr<const std::string>> blob = tier.Fetch(key);
        if (!blob.ok() ||
            blob.value()->size() != 100 + 64 * key.id) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        if ((i & 31) == 0) (void)tier.stats();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const TieredStore::Stats stats = tier.stats();
  EXPECT_EQ(stats.hot_hits + stats.cold_reads, 4u * 300u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(ConcurrencyTest, AdhocClusterParallelQueryBsi) {
  const Dataset dataset = MakeDataset();
  const ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);
  AdhocClusterConfig config;
  config.num_nodes = 2;
  // Small hot tier so concurrent queries contend on the cold path and the
  // LRU, not just on hot hits.
  config.hot_capacity_bytes_per_node = 4096;
  AdhocCluster cluster(&dataset, &bsi, config);

  const std::vector<uint64_t> strategies = {700, 701};
  const std::vector<uint64_t> metrics = {31, 32};
  const Date lo = 0, hi = 3;

  // Sequential reference run: per-pair results every concurrent query must
  // reproduce exactly (queries are read-only apart from the shared tier).
  const Result<AdhocCluster::QueryStats> expected =
      cluster.QueryBsi(strategies, metrics, lo, hi);
  ASSERT_TRUE(expected.ok());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        const Result<AdhocCluster::QueryStats> got =
            cluster.QueryBsi(strategies, metrics, lo, hi);
        if (!got.ok()) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (const auto& [pair, want] : expected.value().results) {
          const auto it = got.value().results.find(pair);
          if (it == got.value().results.end() ||
              it->second.sums != want.sums ||
              it->second.counts != want.counts) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, PrecomputePipelineParallelWorkers) {
  const Dataset dataset = MakeDataset();
  const ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);
  const Date lo = 0, hi = 3;
  std::vector<StrategyMetricPair> pairs;
  for (const uint64_t s : {700, 701}) {
    for (const uint64_t m : {31, 32}) pairs.push_back({s, m});
  }

  // Two pipelines run concurrently, each fanning its batches out over its
  // own 4-worker pool -- pipeline workers race against each other and
  // against the other pipeline's readers of the shared (const) BSI data.
  auto run = [&](PrecomputePipeline* pipeline) {
    pipeline->RunBsi(pairs, lo, hi);
  };
  PrecomputeConfig config;
  config.num_threads = 4;
  config.batch_size = 2;
  PrecomputePipeline a(&dataset, &bsi, config);
  PrecomputePipeline b(&dataset, &bsi, config);
  std::thread ta(run, &a);
  std::thread tb(run, &b);
  ta.join();
  tb.join();

  for (const StrategyMetricPair& pair : pairs) {
    const BucketValues want = ComputeStrategyMetricBsi(
        bsi, pair.first, pair.second, lo, hi);
    for (PrecomputePipeline* pipeline : {&a, &b}) {
      const BucketValues* got = pipeline->GetResult(pair);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(got->sums, want.sums);
      EXPECT_EQ(got->counts, want.counts);
    }
  }
}

}  // namespace
}  // namespace expbsi
