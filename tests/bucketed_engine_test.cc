// Tests for the general case where statistical buckets do NOT coincide with
// segments (§3.3, §4.2: "for the case that the segment-id and the bucket-id
// are not the same, we need to sum the filtered-value by bucket-id,
// generating 1024 bucket-values for each segment, and then merge").

#include <map>

#include <gtest/gtest.h>

#include "engine/experiment_data.h"
#include "engine/normal_engine.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"
#include "expdata/segmenter.h"

namespace expbsi {
namespace {

class BucketedEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.num_users = 8000;
    config.num_segments = 4;
    config.num_buckets = 64;
    config.bucket_equals_segment = false;  // the general case
    config.num_days = 6;
    config.start_date = 10;
    config.seed = 21;

    ExperimentConfig exp;
    exp.strategy_ids = {601, 602};
    exp.arm_effects = {1.0, 1.2};
    exp.traffic_salt = 5;

    MetricConfig m;
    m.metric_id = 700;
    m.value_range = 50;
    m.daily_participation = 0.5;

    dataset_ = new Dataset(GenerateDataset(config, {exp}, {m}, {}));
    bsi_ = new ExperimentBsiData(BuildExperimentBsiData(*dataset_, true));
  }

  static void TearDownTestSuite() {
    delete bsi_;
    delete dataset_;
  }

  static Dataset* dataset_;
  static ExperimentBsiData* bsi_;
};

Dataset* BucketedEngineTest::dataset_ = nullptr;
ExperimentBsiData* BucketedEngineTest::bsi_ = nullptr;

TEST_F(BucketedEngineTest, BucketValuesMatchBruteForce) {
  const Date lo = 10, hi = 15;
  const int num_buckets = dataset_->config.num_buckets;
  BucketValues expect;
  expect.sums.assign(num_buckets, 0.0);
  expect.counts.assign(num_buckets, 0.0);
  for (int seg = 0; seg < dataset_->config.num_segments; ++seg) {
    std::map<UnitId, Date> exposed;
    for (const ExposeRow& row : dataset_->segments[seg].expose) {
      if (row.strategy_id == 602) {
        exposed[row.analysis_unit_id] = row.first_expose_date;
      }
    }
    for (const auto& [unit, date] : exposed) {
      if (date <= hi) expect.counts[BucketOf(unit, num_buckets)] += 1.0;
    }
    for (const MetricRow& row : dataset_->segments[seg].metrics) {
      if (row.metric_id != 700 || row.date < lo || row.date > hi) continue;
      auto it = exposed.find(row.analysis_unit_id);
      if (it != exposed.end() && it->second <= row.date) {
        expect.sums[BucketOf(row.analysis_unit_id, num_buckets)] +=
            static_cast<double>(row.value);
      }
    }
  }
  const BucketValues got = ComputeStrategyMetricBsi(*bsi_, 602, 700, lo, hi);
  ASSERT_EQ(got.sums.size(), static_cast<size_t>(num_buckets));
  EXPECT_EQ(got.sums, expect.sums);
  EXPECT_EQ(got.counts, expect.counts);
}

TEST_F(BucketedEngineTest, NormalBaselineAgreesInBucketedMode) {
  const BucketValues bsi_result =
      ComputeStrategyMetricBsi(*bsi_, 602, 700, 10, 15);
  const BucketValues normal_result =
      ComputeStrategyMetricNormal(*dataset_, 602, 700, 10, 15);
  EXPECT_EQ(bsi_result.sums, normal_result.sums);
  EXPECT_EQ(bsi_result.counts, normal_result.counts);
}

TEST_F(BucketedEngineTest, BucketsArePopulated) {
  const BucketValues got = ComputeStrategyMetricBsi(*bsi_, 601, 700, 10, 15);
  int populated = 0;
  for (double c : got.counts) populated += c > 0 ? 1 : 0;
  // With thousands of exposed users over 64 buckets, all buckets get hits.
  EXPECT_EQ(populated, dataset_->config.num_buckets);
}

TEST_F(BucketedEngineTest, MaskCachePathMatchesDirectInBucketedMode) {
  const ExposeMaskCache cache = ExposeMaskCache::Build(*bsi_, 602, 10, 15);
  const BucketValues direct =
      ComputeStrategyMetricBsi(*bsi_, 602, 700, 10, 15);
  const BucketValues cached =
      ComputeStrategyMetricBsiCached(*bsi_, cache, 700, 10, 15);
  EXPECT_EQ(direct.sums, cached.sums);
  EXPECT_EQ(direct.counts, cached.counts);
}

TEST_F(BucketedEngineTest, ScorecardStillDetectsEffect) {
  const std::vector<ScorecardEntry> entries =
      ComputeScorecard(*bsi_, 601, {602}, {700}, 10, 15);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_GT(entries[0].ttest.mean_diff, 0.0);
  EXPECT_LT(entries[0].ttest.p_value, 0.05);
  EXPECT_EQ(entries[0].treatment.df, dataset_->config.num_buckets - 1);
}

}  // namespace
}  // namespace expbsi
