// Differential oracle for streaming ingestion (ISSUE 6 satellite 1): seeded
// random event streams are pushed through the full write path -- WAL append
// batching, delta-BSI accumulation, segment rolls, mid-stream checkpoints and
// close/reopen point-in-time recoveries -- and the resulting store must be
// BIT-IDENTICAL (through query results and decoded per-unit values) to both
// the one-shot batch builder and the deliberately-naive scalar reference
// engine run over the same dataset.
//
// Reproducing a failure: every assertion message carries the iteration seed.
// Re-run just that seed with
//
//   EXPBSI_FUZZ_SEED=<seed> ./build/tests/expbsi_tests
//       --gtest_filter='WalDifferentialTest.*'   (one command, line-wrapped)
//
// EXPBSI_FUZZ_ITERS overrides the exploration count (CI cranks it up). The
// deterministic corpus in tests/corpus/wal_seeds.txt is replayed BEFORE the
// random exploration, so known-nasty ingestion schedules stay covered even
// if the exploration schedule changes.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/file_io.h"
#include "common/rng.h"
#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"
#include "reference/ref_data.h"
#include "reference/ref_engine.h"
#include "wal/event_stream.h"
#include "wal/ingest_store.h"
#include "wal/wal.h"
#include "tests/property_gen.h"

namespace expbsi {
namespace {

using propgen::FuzzDataset;
using propgen::WalIngestPlan;

// ---------------------------------------------------------------------------
// Seed schedules.
// ---------------------------------------------------------------------------

uint64_t Splitmix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// tests/corpus/wal_seeds.txt: one seed per line, '#' comments.
std::vector<uint64_t> CorpusSeeds() {
  std::vector<uint64_t> seeds;
#ifdef EXPBSI_CORPUS_DIR
  std::ifstream in(std::string(EXPBSI_CORPUS_DIR) + "/wal_seeds.txt");
  EXPECT_TRUE(in.good()) << "missing corpus file " << EXPBSI_CORPUS_DIR
                         << "/wal_seeds.txt";
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    uint64_t seed;
    if (ls >> seed) seeds.push_back(seed);
  }
  EXPECT_GE(seeds.size(), 4u) << "corpus unexpectedly small";
#endif
  return seeds;
}

std::vector<uint64_t> SeedSchedule(uint64_t base, int explore) {
  if (const char* env = std::getenv("EXPBSI_FUZZ_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(env, nullptr, 0))};
  }
  if (const char* env = std::getenv("EXPBSI_FUZZ_ITERS")) {
    explore = std::atoi(env);
  }
  std::vector<uint64_t> seeds = CorpusSeeds();
  uint64_t x = base;
  for (int i = 0; i < explore; ++i) {
    x = Splitmix(x);
    seeds.push_back(x);
  }
  return seeds;
}

std::string Ctx(uint64_t seed, const std::string& what) {
  return what + " (reproduce: EXPBSI_FUZZ_SEED=" + std::to_string(seed) +
         " ./build/tests/expbsi_tests"
         " --gtest_filter='WalDifferentialTest.*')";
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "expbsi_" + name;
  EXPECT_TRUE(fileio::CreateDirIfMissing(dir).ok());
  const Result<std::vector<std::string>> entries = fileio::ListDir(dir);
  EXPECT_TRUE(entries.ok());
  for (const std::string& entry : entries.value()) {
    EXPECT_TRUE(fileio::RemoveFileIfExists(dir + "/" + entry).ok());
  }
  return dir;
}

// ---------------------------------------------------------------------------
// Comparison helpers.
// ---------------------------------------------------------------------------

void ExpectBucketsBitEqual(const BucketValues& got, const BucketValues& want,
                           const std::string& ctx) {
  EXPECT_EQ(got.sums, want.sums) << ctx;
  EXPECT_EQ(got.counts, want.counts) << ctx;
}

// Positions are an artifact of build order (the incremental encoder assigns
// them in event order, the batch builder in row or engagement order), so
// raw-BSI equality across builders is meaningless. Decoding every position
// back to its analysis unit gives the build-order-independent content.
std::map<UnitId, uint64_t> DecodeByUnit(const Bsi& bsi,
                                        const PositionEncoder& encoder) {
  std::map<UnitId, uint64_t> by_unit;
  for (const auto& [pos, value] : bsi.ToPairs()) {
    by_unit[encoder.Decode(pos)] = value;
  }
  return by_unit;
}

// The scorecard only reads expose + metric BSIs; dimensions are compared
// structurally so the delta path's last-write-wins merge is pinned too.
void ExpectDimensionsMatchBatch(const ExperimentBsiData& got,
                                const ExperimentBsiData& want,
                                const std::string& ctx) {
  ASSERT_EQ(got.segments.size(), want.segments.size()) << ctx;
  for (size_t seg = 0; seg < got.segments.size(); ++seg) {
    const SegmentBsiData& g = got.segments[seg];
    const SegmentBsiData& w = want.segments[seg];
    EXPECT_EQ(g.dimensions.size(), w.dimensions.size())
        << ctx << " segment " << seg;
    for (const auto& [key, want_bsi] : w.dimensions) {
      const DimensionBsi* got_bsi = g.FindDimension(key.first, key.second);
      ASSERT_NE(got_bsi, nullptr)
          << ctx << " segment " << seg << " missing dimension " << key.first
          << " date " << key.second;
      EXPECT_EQ(DecodeByUnit(got_bsi->value, g.encoder),
                DecodeByUnit(want_bsi.value, w.encoder))
          << ctx << " segment " << seg << " dimension " << key.first
          << " date " << key.second;
    }
  }
}

void ExpectMatchesOracles(const ExperimentBsiData& got,
                          const ExperimentBsiData& batch,
                          const RefExperimentData& ref,
                          const Dataset& dataset, Rng& rng,
                          const std::string& ctx) {
  const Date lo = dataset.config.start_date;
  const Date hi = lo + dataset.config.num_days - 1;
  // One random subrange per iteration exercises the offset range-search
  // against late/early exposure dates.
  const Date sub_lo =
      lo + static_cast<Date>(rng.NextBounded(dataset.config.num_days));
  const Date sub_hi =
      sub_lo + static_cast<Date>(rng.NextBounded(hi - sub_lo + 1));
  for (uint64_t strategy : dataset.experiments[0].strategy_ids) {
    for (uint64_t metric : {propgen::kFuzzMetricA, propgen::kFuzzMetricB}) {
      const std::string pair_ctx = ctx + " strategy " +
                                   std::to_string(strategy) + " metric " +
                                   std::to_string(metric);
      const BucketValues full =
          ComputeStrategyMetricBsi(got, strategy, metric, lo, hi);
      ExpectBucketsBitEqual(
          full, ComputeStrategyMetricBsi(batch, strategy, metric, lo, hi),
          pair_ctx + " vs batch");
      ExpectBucketsBitEqual(
          full, RefComputeStrategyMetric(ref, strategy, metric, lo, hi),
          pair_ctx + " vs reference");
      ExpectBucketsBitEqual(
          ComputeStrategyMetricBsi(got, strategy, metric, sub_lo, sub_hi),
          RefComputeStrategyMetric(ref, strategy, metric, sub_lo, sub_hi),
          pair_ctx + " subrange [" + std::to_string(sub_lo) + ", " +
              std::to_string(sub_hi) + "]");
    }
  }
  ExpectDimensionsMatchBatch(got, batch, ctx);
}

// ---------------------------------------------------------------------------
// One iteration.
// ---------------------------------------------------------------------------

void RunWalDifferentialIteration(uint64_t seed) {
  Rng rng(seed);
  const FuzzDataset fuzz = propgen::GenDataset(rng);
  const Dataset& dataset = fuzz.dataset;
  const WalIngestPlan plan = propgen::GenWalIngestPlan(rng);
  const std::string ctx =
      Ctx(seed, "batch_events=" + std::to_string(plan.batch_events) +
                    " segment_bytes=" + std::to_string(plan.segment_bytes));

  const std::vector<WalEvent> events = MakeWalEventStream(dataset);
  const std::vector<std::vector<WalEvent>> batches =
      BatchWalEvents(events, plan.batch_events);

  const std::string wal_dir = FreshDir("wal_diff_wal");
  const std::string snap_dir = FreshDir("wal_diff_snap");
  IngestOptions options;
  options.num_segments = dataset.config.num_segments;
  options.num_buckets = dataset.config.num_buckets;
  options.bucket_equals_segment = dataset.config.bucket_equals_segment;
  options.wal.segment_bytes = plan.segment_bytes;

  Result<std::unique_ptr<IngestStore>> store =
      IngestStore::Open(wal_dir, snap_dir, options);
  ASSERT_TRUE(store.ok()) << ctx << ": " << store.status().ToString();

  size_t checkpoints = 0;
  size_t reopens = 0;
  for (const std::vector<WalEvent>& batch : batches) {
    const uint64_t before = store.value()->last_sequence();
    Result<uint64_t> sequence = store.value()->Ingest(batch);
    ASSERT_TRUE(sequence.ok()) << ctx << ": " << sequence.status().ToString();
    ASSERT_EQ(sequence.value(), before + 1) << ctx;
    if (rng.NextBernoulli(plan.checkpoint_p)) {
      Result<IngestCheckpointStats> checkpoint = store.value()->Checkpoint();
      ASSERT_TRUE(checkpoint.ok())
          << ctx << ": " << checkpoint.status().ToString();
      ++checkpoints;
    }
    if (rng.NextBernoulli(plan.reopen_p)) {
      // Mid-stream point-in-time recovery: everything ingested so far must
      // come back from the newest snapshot plus the WAL tail.
      const uint64_t last = store.value()->last_sequence();
      store.value().reset();
      IngestRecoveryReport report;
      store = IngestStore::Open(wal_dir, snap_dir, options, &report);
      ASSERT_TRUE(store.ok()) << ctx << ": " << store.status().ToString();
      ASSERT_EQ(store.value()->last_sequence(), last) << ctx;
      ++reopens;
    }
  }
  if (plan.final_checkpoint) {
    ASSERT_TRUE(store.value()->Checkpoint().ok()) << ctx;
  }

  // Always cross the final crash boundary: the compared store is the
  // RECOVERED one, never just the in-memory accumulation.
  const uint64_t last = store.value()->last_sequence();
  ASSERT_EQ(last, batches.size()) << ctx;
  store.value().reset();
  IngestRecoveryReport report;
  store = IngestStore::Open(wal_dir, snap_dir, options, &report);
  ASSERT_TRUE(store.ok()) << ctx << ": " << store.status().ToString();
  ASSERT_EQ(store.value()->last_sequence(), last) << ctx;

  const ExperimentBsiData batch_build =
      BuildExperimentBsiData(dataset, fuzz.engagement_ordered);
  const RefExperimentData ref = BuildRefExperimentData(dataset);
  ExpectMatchesOracles(store.value()->data(), batch_build, ref, dataset, rng,
                       ctx + " checkpoints=" + std::to_string(checkpoints) +
                           " reopens=" + std::to_string(reopens));
}

// ---------------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------------

TEST(WalDifferentialTest, CorpusIsPresent) {
  EXPECT_GE(CorpusSeeds().size(), 4u);
}

TEST(WalDifferentialTest, IncrementalIngestMatchesFullRebuild) {
  for (uint64_t seed : SeedSchedule(/*base=*/0xA11CEDB5ull, /*explore=*/25)) {
    RunWalDifferentialIteration(seed);
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      return;  // the first failing seed is the repro; stop the sweep
    }
  }
}

}  // namespace
}  // namespace expbsi
