#include "bsi/bsi.h"

#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace expbsi {
namespace {

using testing_util::RandomValueMap;
using testing_util::ToPairVector;

using ValueMap = std::map<uint32_t, uint64_t>;

ValueMap ToMap(const Bsi& bsi) {
  ValueMap out;
  for (const auto& [pos, value] : bsi.ToPairs()) out[pos] = value;
  return out;
}

TEST(BsiTest, EmptyBsi) {
  Bsi bsi;
  EXPECT_TRUE(bsi.IsEmpty());
  EXPECT_EQ(bsi.Cardinality(), 0u);
  EXPECT_EQ(bsi.Get(0), 0u);
  EXPECT_EQ(bsi.num_slices(), 0);
  EXPECT_EQ(bsi.Sum(), 0u);
}

TEST(BsiTest, FromPairsAndGet) {
  Bsi bsi = Bsi::FromPairs({{1, 5}, {2, 0}, {3, 127}, {4, 23}, {5, 200}});
  // The zero value at position 2 is absent (paper convention).
  EXPECT_EQ(bsi.Cardinality(), 4u);
  EXPECT_FALSE(bsi.Exists(2));
  EXPECT_EQ(bsi.Get(1), 5u);
  EXPECT_EQ(bsi.Get(3), 127u);
  EXPECT_EQ(bsi.Get(4), 23u);
  EXPECT_EQ(bsi.Get(5), 200u);
  EXPECT_EQ(bsi.Get(999), 0u);
  EXPECT_EQ(bsi.num_slices(), 8);  // 200 needs 8 bits
}

TEST(BsiTest, Figure1PaperExample) {
  // The exact BSI of Figure 1: ids 1..8 with values 5,0,127,23,200,9,64,39.
  const std::vector<uint64_t> values = {5, 0, 127, 23, 200, 9, 64, 39};
  std::vector<std::pair<uint32_t, uint64_t>> pairs;
  for (uint32_t id = 1; id <= 8; ++id) {
    pairs.emplace_back(id, values[id - 1]);
  }
  Bsi bsi = Bsi::FromPairs(pairs);
  // Check individual slice membership for a few cells of the figure.
  EXPECT_TRUE(bsi.slice(0).Contains(1));   // B0 of id 1 (value 5 = 101b)
  EXPECT_FALSE(bsi.slice(1).Contains(1));  // B1 of id 1
  EXPECT_TRUE(bsi.slice(2).Contains(1));   // B2 of id 1
  EXPECT_TRUE(bsi.slice(7).Contains(5));   // B7 of id 5 (value 200)
  EXPECT_TRUE(bsi.slice(6).Contains(7));   // B6 of id 7 (value 64)
  EXPECT_EQ(bsi.Sum(), 5u + 127 + 23 + 200 + 9 + 64 + 39);
}

TEST(BsiTest, FromValuesSkipsZeros) {
  Bsi bsi = Bsi::FromValues({0, 3, 0, 7});
  EXPECT_EQ(bsi.Cardinality(), 2u);
  EXPECT_EQ(bsi.Get(1), 3u);
  EXPECT_EQ(bsi.Get(3), 7u);
}

TEST(BsiTest, FromBinary) {
  RoaringBitmap positions = RoaringBitmap::FromSorted({2, 5, 9});
  Bsi bsi = Bsi::FromBinary(positions);
  EXPECT_EQ(bsi.num_slices(), 1);
  EXPECT_EQ(bsi.Get(2), 1u);
  EXPECT_EQ(bsi.Get(5), 1u);
  EXPECT_EQ(bsi.Get(3), 0u);
}

TEST(BsiTest, SetValueUpdatesAndRemoves) {
  Bsi bsi = Bsi::FromPairs({{1, 5}});
  bsi.SetValue(1, 9);
  EXPECT_EQ(bsi.Get(1), 9u);
  bsi.SetValue(2, 1000);
  EXPECT_EQ(bsi.Get(2), 1000u);
  bsi.SetValue(1, 0);
  EXPECT_FALSE(bsi.Exists(1));
  EXPECT_EQ(bsi.Cardinality(), 1u);
  bsi.SetValue(2, 0);
  EXPECT_TRUE(bsi.IsEmpty());
  EXPECT_EQ(bsi.num_slices(), 0);
}

TEST(BsiTest, AddFigure2PaperExample) {
  // Figure 2: X = {0,1,2,3,1,3,2,0}, Y = {2,1,1,2,3,0,2,1} at positions 0..7.
  Bsi x = Bsi::FromValues({0, 1, 2, 3, 1, 3, 2, 0});
  Bsi y = Bsi::FromValues({2, 1, 1, 2, 3, 0, 2, 1});
  Bsi s = Bsi::Add(x, y);
  const std::vector<uint64_t> expect = {2, 2, 3, 5, 4, 3, 4, 1};
  for (uint32_t j = 0; j < expect.size(); ++j) {
    EXPECT_EQ(s.Get(j), expect[j]) << "position " << j;
  }
  EXPECT_EQ(s.num_slices(), 3);
}

TEST(BsiTest, SerializeRoundTrip) {
  Rng rng(5);
  Bsi bsi = Bsi::FromPairs(ToPairVector(RandomValueMap(rng, 5000, 100000,
                                                       1u << 20)));
  bsi.RunOptimize();
  const std::string bytes = bsi.SerializeToString();
  Result<Bsi> parsed = Bsi::Deserialize(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().Equals(bsi));
  EXPECT_EQ(parsed.value().existence().Cardinality(), bsi.Cardinality());
}

TEST(BsiTest, DeserializeRejectsCorruption) {
  EXPECT_FALSE(Bsi::Deserialize("zz").ok());
  Bsi bsi = Bsi::FromValues({1, 2, 3});
  std::string bytes = bsi.SerializeToString();
  EXPECT_FALSE(Bsi::Deserialize(bytes.substr(0, bytes.size() - 3)).ok());
}

// --- Arithmetic property tests against naive per-position math -------------

class BsiArithmeticTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    map_x_ = RandomValueMap(rng, 4000, 50000, 1u << 16);
    map_y_ = RandomValueMap(rng, 4000, 50000, 1u << 16);
    x_ = Bsi::FromPairs(ToPairVector(map_x_));
    y_ = Bsi::FromPairs(ToPairVector(map_y_));
  }

  ValueMap map_x_, map_y_;
  Bsi x_, y_;
};

TEST_P(BsiArithmeticTest, Add) {
  ValueMap expect = map_x_;
  for (const auto& [pos, v] : map_y_) expect[pos] += v;
  EXPECT_EQ(ToMap(Bsi::Add(x_, y_)), expect);
}

TEST_P(BsiArithmeticTest, SubtractClampsAtZero) {
  ValueMap expect;
  for (const auto& [pos, v] : map_x_) {
    auto it = map_y_.find(pos);
    const uint64_t yv = it == map_y_.end() ? 0 : it->second;
    if (v > yv) expect[pos] = v - yv;
  }
  EXPECT_EQ(ToMap(Bsi::Subtract(x_, y_)), expect);
}

TEST_P(BsiArithmeticTest, AddThenSubtractRecoversOperand) {
  Bsi sum = Bsi::Add(x_, y_);
  Bsi diff = Bsi::Subtract(sum, y_);
  // diff should equal x on positions where x is present; positions present
  // only in y become zero and vanish.
  EXPECT_EQ(ToMap(diff), map_x_);
}

TEST_P(BsiArithmeticTest, MultiplyGeneral) {
  // Use narrower operands to keep the naive check fast.
  Rng rng(GetParam() + 1);
  ValueMap ma = RandomValueMap(rng, 1000, 20000, 1u << 8);
  ValueMap mb = RandomValueMap(rng, 1000, 20000, 1u << 8);
  Bsi a = Bsi::FromPairs(ToPairVector(ma));
  Bsi b = Bsi::FromPairs(ToPairVector(mb));
  ValueMap expect;
  for (const auto& [pos, v] : ma) {
    auto it = mb.find(pos);
    if (it != mb.end()) expect[pos] = v * it->second;
  }
  EXPECT_EQ(ToMap(Bsi::Multiply(a, b)), expect);
}

TEST_P(BsiArithmeticTest, MultiplyByBinary) {
  Rng rng(GetParam() + 2);
  RoaringBitmap mask;
  for (const auto& [pos, v] : map_x_) {
    (void)v;
    if (rng.NextBernoulli(0.5)) mask.Add(pos);
  }
  ValueMap expect;
  for (const auto& [pos, v] : map_x_) {
    if (mask.Contains(pos)) expect[pos] = v;
  }
  EXPECT_EQ(ToMap(Bsi::MultiplyByBinary(x_, mask)), expect);
}

TEST_P(BsiArithmeticTest, AddScalar) {
  const uint64_t k = 12345;
  ValueMap expect;
  for (const auto& [pos, v] : map_x_) expect[pos] = v + k;
  EXPECT_EQ(ToMap(Bsi::AddScalar(x_, k)), expect);
  // k = 0 is identity.
  EXPECT_TRUE(Bsi::AddScalar(x_, 0).Equals(x_));
}

TEST_P(BsiArithmeticTest, ShiftLeft) {
  ValueMap expect;
  for (const auto& [pos, v] : map_x_) expect[pos] = v << 3;
  EXPECT_EQ(ToMap(Bsi::ShiftLeft(x_, 3)), expect);
}

TEST_P(BsiArithmeticTest, AdditionIsCommutativeAndAssociative) {
  EXPECT_TRUE(Bsi::Add(x_, y_).Equals(Bsi::Add(y_, x_)));
  Rng rng(GetParam() + 3);
  Bsi z = Bsi::FromPairs(
      ToPairVector(RandomValueMap(rng, 2000, 50000, 1u << 12)));
  EXPECT_TRUE(Bsi::Add(Bsi::Add(x_, y_), z)
                  .Equals(Bsi::Add(x_, Bsi::Add(y_, z))));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BsiArithmeticTest,
                         ::testing::Values(21, 22, 23, 24, 25));

TEST(BsiArithmeticEdge, AddWithEmpty) {
  Bsi x = Bsi::FromValues({1, 2, 3});
  Bsi empty;
  EXPECT_TRUE(Bsi::Add(x, empty).Equals(x));
  EXPECT_TRUE(Bsi::Add(empty, x).Equals(x));
  EXPECT_TRUE(Bsi::Multiply(x, empty).IsEmpty());
  EXPECT_TRUE(Bsi::Subtract(empty, x).IsEmpty());
}

TEST(BsiArithmeticEdge, CarryChainAcrossManySlices) {
  // 0xFFFF + 1 exercises a carry through 16 slices.
  Bsi x = Bsi::FromPairs({{7, 0xFFFF}});
  Bsi y = Bsi::FromPairs({{7, 1}});
  Bsi s = Bsi::Add(x, y);
  EXPECT_EQ(s.Get(7), 0x10000u);
  EXPECT_EQ(s.num_slices(), 17);
}

TEST(BsiArithmeticEdge, SubtractEqualValuesVanishes) {
  Bsi x = Bsi::FromPairs({{3, 42}, {4, 10}});
  Bsi y = Bsi::FromPairs({{3, 42}});
  Bsi d = Bsi::Subtract(x, y);
  EXPECT_FALSE(d.Exists(3));  // difference of zero is absent
  EXPECT_EQ(d.Get(4), 10u);
}

}  // namespace
}  // namespace expbsi

namespace expbsi {
namespace {

// Run-optimizing the operand slices must not change any operation's result
// (storage-form BSIs flow straight into the compute path).
TEST(BsiRunOptimizedTest, OpsUnchangedByRunOptimize) {
  Rng rng(999);
  // Dense prefix + sparse tail, so RunOptimize actually switches containers.
  std::vector<std::pair<uint32_t, uint64_t>> pairs_x, pairs_y;
  for (uint32_t pos = 0; pos < 30000; ++pos) {
    pairs_x.emplace_back(pos, 1 + rng.NextBounded(100));
    if (rng.NextBernoulli(0.5)) {
      pairs_y.emplace_back(pos, 1 + rng.NextBounded(100));
    }
  }
  Bsi x = Bsi::FromPairs(pairs_x);
  Bsi y = Bsi::FromPairs(pairs_y);
  Bsi xo = x, yo = y;
  xo.RunOptimize();
  yo.RunOptimize();
  EXPECT_TRUE(Bsi::Add(xo, yo).Equals(Bsi::Add(x, y)));
  EXPECT_TRUE(Bsi::Subtract(xo, yo).Equals(Bsi::Subtract(x, y)));
  EXPECT_TRUE(Bsi::Lt(xo, yo).Equals(Bsi::Lt(x, y)));
  EXPECT_TRUE(Bsi::Eq(xo, yo).Equals(Bsi::Eq(x, y)));
  EXPECT_TRUE(xo.RangeGe(50).Equals(x.RangeGe(50)));
  EXPECT_EQ(xo.Sum(), x.Sum());
  EXPECT_EQ(xo.Median(), x.Median());
  EXPECT_EQ(xo.SumUnderMask(yo.existence()), x.SumUnderMask(y.existence()));
}

}  // namespace
}  // namespace expbsi
