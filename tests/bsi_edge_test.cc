// Edge-case coverage for the in-BSI aggregates, paired with the scalar
// oracle (RefColumn) so each behavior is pinned down by two independent
// implementations: empty input, a single position, all-equal values, values
// at the 64-bit slice boundary, and the documented abort-on-overflow
// contract of Sum / SumUnderMask.

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bsi/bsi.h"
#include "reference/ref_column.h"
#include "roaring/roaring_bitmap.h"

namespace expbsi {
namespace {

using Pairs = std::vector<std::pair<uint32_t, uint64_t>>;

TEST(BsiEdgeTest, EmptyBsiAggregates) {
  const Bsi empty;
  const RefColumn ref;
  EXPECT_EQ(empty.Cardinality(), 0u);
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_EQ(empty.Sum(), 0u);
  EXPECT_EQ(ref.Sum(), 0u);
  EXPECT_EQ(empty.Average(), 0.0);
  EXPECT_EQ(ref.Average(), 0.0);
  EXPECT_EQ(empty.SumUnderMask(RoaringBitmap::FromSorted({1, 2, 3})), 0u);
  EXPECT_TRUE(empty.RangeGe(0).IsEmpty());
  EXPECT_TRUE(empty.RangeLe(~uint64_t{0}).IsEmpty());
}

TEST(BsiEdgeTest, EmptyBsiOrderStatisticsAbort) {
  // Min / Max / Quantile have no meaningful value on an empty index; both
  // implementations CHECK-fail rather than invent one.
  const Bsi empty;
  const RefColumn ref;
  EXPECT_DEATH(empty.MinValue(), "CHECK failed");
  EXPECT_DEATH(empty.MaxValue(), "CHECK failed");
  EXPECT_DEATH(empty.Median(), "CHECK failed");
  EXPECT_DEATH(ref.MinValue(), "CHECK failed");
  EXPECT_DEATH(ref.MaxValue(), "CHECK failed");
  EXPECT_DEATH(ref.Median(), "CHECK failed");
}

TEST(BsiEdgeTest, SinglePositionAggregates) {
  const Pairs pairs = {{12345, 42}};
  const Bsi bsi = Bsi::FromPairs(pairs);
  EXPECT_EQ(bsi.Cardinality(), 1u);
  EXPECT_EQ(bsi.Sum(), 42u);
  EXPECT_EQ(bsi.MinValue(), 42u);
  EXPECT_EQ(bsi.MaxValue(), 42u);
  // Every quantile of a one-element multiset is that element.
  for (const double q : {0.0, 0.001, 0.5, 0.999, 1.0}) {
    EXPECT_EQ(bsi.Quantile(q), 42u) << "q=" << q;
  }
  EXPECT_EQ(bsi.SumUnderMask(RoaringBitmap::FromSorted({12345})), 42u);
  EXPECT_EQ(bsi.SumUnderMask(RoaringBitmap::FromSorted({12344})), 0u);
}

TEST(BsiEdgeTest, AllEqualValues) {
  Pairs pairs;
  for (uint32_t pos = 100; pos < 600; ++pos) pairs.push_back({pos, 7});
  const Bsi bsi = Bsi::FromPairs(pairs);
  EXPECT_EQ(bsi.Sum(), 7u * 500u);
  EXPECT_EQ(bsi.MinValue(), 7u);
  EXPECT_EQ(bsi.MaxValue(), 7u);
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_EQ(bsi.Quantile(q), 7u) << "q=" << q;
  }
  EXPECT_EQ(bsi.RangeEq(7).Cardinality(), 500u);
  EXPECT_TRUE(bsi.RangeNe(7).IsEmpty());
  EXPECT_TRUE(bsi.RangeLt(7).IsEmpty());
  EXPECT_TRUE(bsi.RangeGt(7).IsEmpty());
}

TEST(BsiEdgeTest, SixtyFourBitSliceBoundary) {
  // Values straddling the top slice: 2^63 - 1 (63 low slices), 2^63 (slice
  // 64 alone), 2^64 - 1 (all 64 slices). Round-trip, aggregates and range
  // searches must all be exact, and the oracle must agree.
  const uint64_t kBelow = (uint64_t{1} << 63) - 1;
  const uint64_t kBit63 = uint64_t{1} << 63;
  const uint64_t kMax = ~uint64_t{0};
  const Pairs pairs = {{10, kBelow}, {20, kBit63}, {30, kMax}};
  const Bsi bsi = Bsi::FromPairs(pairs);
  const RefColumn ref = RefColumn::FromPairs(pairs);

  EXPECT_EQ(bsi.num_slices(), 64);
  EXPECT_EQ(bsi.Get(10), kBelow);
  EXPECT_EQ(bsi.Get(20), kBit63);
  EXPECT_EQ(bsi.Get(30), kMax);
  EXPECT_EQ(bsi.ToPairs(), pairs);

  EXPECT_EQ(bsi.MinValue(), kBelow);
  EXPECT_EQ(bsi.MaxValue(), kMax);
  EXPECT_EQ(bsi.Quantile(0.5), kBit63);
  EXPECT_EQ(ref.MinValue(), kBelow);
  EXPECT_EQ(ref.MaxValue(), kMax);
  EXPECT_EQ(ref.Quantile(0.5), kBit63);

  EXPECT_EQ(bsi.RangeGe(kBit63).ToVector(),
            (std::vector<uint32_t>{20, 30}));
  EXPECT_EQ(bsi.RangeEq(kMax).ToVector(), (std::vector<uint32_t>{30}));
  EXPECT_EQ(bsi.RangeLt(kBit63).ToVector(), (std::vector<uint32_t>{10}));
  EXPECT_EQ(bsi.RangeBetween(kBelow, kBit63).ToVector(),
            (std::vector<uint32_t>{10, 20}));

  // A single max-value position sums fine (the accumulator is 128-bit).
  EXPECT_EQ(Bsi::FromPairs({{0, kMax}}).Sum(), kMax);
  EXPECT_EQ(RefColumn::FromPairs({{0, kMax}}).Sum(), kMax);
}

TEST(BsiEdgeTest, SumOverflowAborts) {
  // Sum / SumUnderMask promise an exact uint64 result; when the true total
  // exceeds 2^64 - 1 they CHECK-fail instead of silently wrapping. Two
  // positions of 2^63 are the smallest such total.
  const Pairs pairs = {{1, uint64_t{1} << 63}, {2, uint64_t{1} << 63}};
  const Bsi bsi = Bsi::FromPairs(pairs);
  const RefColumn ref = RefColumn::FromPairs(pairs);
  EXPECT_DEATH(bsi.Sum(), "CHECK failed");
  EXPECT_DEATH(ref.Sum(), "CHECK failed");
  const RoaringBitmap both = RoaringBitmap::FromSorted({1, 2});
  EXPECT_DEATH(bsi.SumUnderMask(both), "CHECK failed");
  // Under a mask covering one position the total fits: no abort.
  EXPECT_EQ(bsi.SumUnderMask(RoaringBitmap::FromSorted({1})),
            uint64_t{1} << 63);
  // One position below the boundary keeps the total representable.
  const Bsi fits =
      Bsi::FromPairs({{1, uint64_t{1} << 63}, {2, (uint64_t{1} << 63) - 1}});
  EXPECT_EQ(fits.Sum(), ~uint64_t{0});
}

}  // namespace
}  // namespace expbsi
