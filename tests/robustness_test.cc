// Failure-injection and fuzz-style robustness tests: corrupt bytes must
// surface as Corruption Status values (never crashes or silent garbage),
// and random query strings must produce InvalidArgument (never crashes).

#include <string>

#include <gtest/gtest.h>

#include "bsi/bsi.h"
#include "common/rng.h"
#include "engine/experiment_data.h"
#include "expdata/bsi_builder.h"
#include "expdata/generator.h"
#include "query/parser.h"
#include "roaring/roaring_bitmap.h"
#include "storage/block_compressor.h"
#include "tests/test_util.h"

namespace expbsi {
namespace {

// Applies `n` random single-byte mutations to a copy of `bytes`.
std::string Mutate(Rng& rng, const std::string& bytes, int n) {
  std::string out = bytes;
  for (int i = 0; i < n && !out.empty(); ++i) {
    out[rng.NextBounded(out.size())] =
        static_cast<char>(rng.NextBounded(256));
  }
  return out;
}

class SerializationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializationFuzzTest, RoaringDeserializeNeverCrashes) {
  Rng rng(GetParam());
  RoaringBitmap bm;
  for (int i = 0; i < 5000; ++i) {
    bm.Add(static_cast<uint32_t>(rng.NextBounded(1u << 24)));
  }
  bm.AddRange(1u << 20, (1u << 20) + 10000);
  bm.RunOptimize();
  const std::string bytes = bm.SerializeToString();
  for (int round = 0; round < 50; ++round) {
    // Mutations: bit flips, truncations, or both.
    std::string mutated = Mutate(rng, bytes, 1 + rng.NextBounded(8));
    if (rng.NextBernoulli(0.3)) {
      mutated = mutated.substr(0, rng.NextBounded(mutated.size() + 1));
    }
    Result<RoaringBitmap> parsed = RoaringBitmap::Deserialize(mutated);
    if (parsed.ok()) {
      // If it parsed, the object must at least be internally consistent.
      parsed.value().Cardinality();
      parsed.value().ToVector();
    }
  }
}

TEST_P(SerializationFuzzTest, BsiDeserializeNeverCrashes) {
  Rng rng(GetParam() + 1000);
  Bsi bsi = Bsi::FromPairs(testing_util::ToPairVector(
      testing_util::RandomValueMap(rng, 3000, 100000, 1u << 18)));
  const std::string bytes = bsi.SerializeToString();
  for (int round = 0; round < 50; ++round) {
    std::string mutated = Mutate(rng, bytes, 1 + rng.NextBounded(8));
    if (rng.NextBernoulli(0.3)) {
      mutated = mutated.substr(0, rng.NextBounded(mutated.size() + 1));
    }
    Result<Bsi> parsed = Bsi::Deserialize(mutated);
    if (parsed.ok()) {
      parsed.value().Sum();
      parsed.value().Cardinality();
    }
  }
}

TEST_P(SerializationFuzzTest, ExposeBsiDeserializeNeverCrashes) {
  Rng rng(GetParam() + 2000);
  PositionEncoder encoder;
  std::vector<ExposeRow> rows;
  for (UnitId id = 1; id <= 500; ++id) {
    rows.push_back({7, id, id, static_cast<Date>(rng.NextBounded(7))});
  }
  ExposeBsi expose = BuildExposeBsi(rows, encoder, 16);
  std::string bytes;
  expose.Serialize(&bytes);
  for (int round = 0; round < 50; ++round) {
    std::string mutated = Mutate(rng, bytes, 1 + rng.NextBounded(6));
    ExposeBsi::Deserialize(mutated);  // must not crash
  }
}

TEST_P(SerializationFuzzTest, DecompressNeverCrashes) {
  Rng rng(GetParam() + 3000);
  std::string input;
  for (int i = 0; i < 5000; ++i) {
    input += static_cast<char>(rng.NextBounded(8) + 'a');
  }
  const std::string block = CompressBlock(input);
  for (int round = 0; round < 100; ++round) {
    std::string mutated = Mutate(rng, block, 1 + rng.NextBounded(5));
    if (rng.NextBernoulli(0.3)) {
      mutated = mutated.substr(0, rng.NextBounded(mutated.size() + 1));
    }
    Result<std::string> out = DecompressBlock(mutated);
    if (out.ok()) {
      EXPECT_EQ(out.value().size(), input.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationFuzzTest,
                         ::testing::Values(1, 2, 3, 4));

class QueryFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryFuzzTest, RandomTokenSoupNeverCrashes) {
  Rng rng(GetParam());
  const char* pieces[] = {"select", "sum",    "(",     ")",      "value",
                          "from",   "metric", "where", "and",    ",",
                          "8371",   "date",   "=",     ">=",     "*",
                          "expose", "dim",    "group", "by",     "bucket",
                          "0.5",    "<",      "<=",    "exposed", "offset"};
  for (int round = 0; round < 300; ++round) {
    std::string text;
    const int len = 1 + static_cast<int>(rng.NextBounded(20));
    for (int i = 0; i < len; ++i) {
      text += pieces[rng.NextBounded(std::size(pieces))];
      text += ' ';
    }
    ParseQuery(text);  // ok or InvalidArgument, never a crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzzTest, ::testing::Values(11, 12));

TEST(ParallelBuildTest, MatchesSerialBuild) {
  DatasetConfig config;
  config.num_users = 5000;
  config.num_segments = 8;
  config.num_days = 4;
  config.seed = 77;
  ExperimentConfig exp;
  exp.strategy_ids = {1, 2};
  exp.arm_effects = {1.0, 1.1};
  MetricConfig m;
  m.metric_id = 5;
  m.value_range = 40;
  Dataset ds = GenerateDataset(config, {exp}, {m}, {});

  const ExperimentBsiData serial = BuildExperimentBsiData(ds, true);
  const ExperimentBsiData parallel =
      BuildExperimentBsiDataParallel(ds, true, 4);
  ASSERT_EQ(serial.segments.size(), parallel.segments.size());
  for (int seg = 0; seg < 8; ++seg) {
    const SegmentBsiData& a = serial.segments[seg];
    const SegmentBsiData& b = parallel.segments[seg];
    ASSERT_EQ(a.expose.size(), b.expose.size());
    for (const auto& [id, expose] : a.expose) {
      const ExposeBsi* other = b.FindExpose(id);
      ASSERT_NE(other, nullptr);
      EXPECT_TRUE(expose.offset.Equals(other->offset));
      EXPECT_EQ(expose.min_expose_date, other->min_expose_date);
    }
    ASSERT_EQ(a.metrics.size(), b.metrics.size());
    for (const auto& [key, metric] : a.metrics) {
      const MetricBsi* other = b.FindMetric(key.first, key.second);
      ASSERT_NE(other, nullptr);
      EXPECT_TRUE(metric.value.Equals(other->value));
    }
  }
}

}  // namespace
}  // namespace expbsi
