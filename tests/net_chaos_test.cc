// Network chaos suite (DESIGN.md §9, docs/TESTING.md "Network chaos"):
// seeded fault schedules over the net.* sites replayed against a REAL
// TCP serving stack -- node servers on loopback, the scatter/gather
// coordinator in front. The invariants mirror the in-process chaos suite:
//
//   (a) a fault-free remote scorecard is BIT-IDENTICAL to the in-process
//       AdhocCluster's and the scalar oracle's;
//   (b) a degraded result enumerates exactly the lost segments -- every
//       other segment's values still match the fault-free run bit for bit
//       (never a silent loss);
//   (c) no crash, no hang: drops and truncations surface as prompt
//       connection closes, never timeout races, so schedules replay
//       deterministically.
//
// Reproducing a failure: every assertion message carries the iteration
// seed. Re-run just that seed with
//
//   EXPBSI_CHAOS_SEED=<seed> ./build/tests/expbsi_tests
//       --gtest_filter='NetChaosTest.*'   (one command, line-wrapped)
//
// EXPBSI_CHAOS_ITERS widens the random exploration (the CI net job runs
// 200 in Release); tests/corpus/net_seeds.txt is replayed BEFORE the
// exploration. EXPBSI_CHAOS_LOG=1 prints a one-line classification per
// seed, which is how corpus candidates are hunted.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/adhoc_cluster.h"
#include "cluster/placement.h"
#include "common/fault_injector.h"
#include "common/rng.h"
#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"
#include "net/coordinator.h"
#include "net/node_server.h"
#include "net/repair.h"
#include "storage/bsi_store.h"

namespace expbsi {
namespace {

// ---------------------------------------------------------------------------
// Seed schedule (same shape as chaos_test.cc).
// ---------------------------------------------------------------------------

uint64_t Splitmix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::vector<uint64_t> NetCorpusSeeds() {
  std::vector<uint64_t> seeds;
#ifdef EXPBSI_CORPUS_DIR
  std::ifstream in(std::string(EXPBSI_CORPUS_DIR) + "/net_seeds.txt");
  EXPECT_TRUE(in.good()) << "missing corpus file " << EXPBSI_CORPUS_DIR
                         << "/net_seeds.txt";
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    uint64_t seed;
    if (ls >> seed) seeds.push_back(seed);
  }
  EXPECT_GE(seeds.size(), 4u) << "net chaos corpus unexpectedly small";
#endif
  return seeds;
}

int ExploreIters() {
  if (const char* env = std::getenv("EXPBSI_CHAOS_ITERS")) {
    return static_cast<int>(std::strtol(env, nullptr, 0));
  }
  return 25;
}

std::vector<uint64_t> SeedSchedule(uint64_t base) {
  if (const char* env = std::getenv("EXPBSI_CHAOS_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(env, nullptr, 0))};
  }
  std::vector<uint64_t> seeds = NetCorpusSeeds();
  uint64_t x = base;
  for (int i = 0, n = ExploreIters(); i < n; ++i) {
    x = Splitmix(x);
    seeds.push_back(x);
  }
  return seeds;
}

std::string Ctx(uint64_t seed, const std::string& what) {
  return what + " (reproduce: EXPBSI_CHAOS_SEED=" + std::to_string(seed) +
         " ./build/tests/expbsi_tests"
         " --gtest_filter='NetChaosTest.*')";
}

bool ChaosLogEnabled() {
  static const bool enabled = std::getenv("EXPBSI_CHAOS_LOG") != nullptr;
  return enabled;
}

// ---------------------------------------------------------------------------
// Fixture: one dataset, fault-free baselines, warehouse store shared by
// every node server. Servers are restarted per iteration so their fault op
// counters (accepts, requests, sends) restart from zero -- a schedule is a
// pure function of the seed, not of how many iterations ran before it.
// ---------------------------------------------------------------------------

constexpr Date kLo = 10;
constexpr Date kHi = 14;
constexpr int kNumNodes = 3;
const std::vector<uint64_t> kStrategies = {801, 802};
const std::vector<uint64_t> kMetrics = {901, 902};

class NetChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Shared with ReplicationChaosTest (a subclass): guard against a second
    // initialization when both suites run in one process.
    if (dataset_ != nullptr) return;
    DatasetConfig config;
    config.num_users = 3000;
    config.num_segments = 6;
    config.num_days = 5;
    config.start_date = kLo;
    config.seed = 71;

    ExperimentConfig exp;
    exp.strategy_ids = {801, 802};
    exp.arm_effects = {1.0, 1.1};
    exp.traffic_salt = 5;

    MetricConfig m1;
    m1.metric_id = 901;
    m1.value_range = 100;
    m1.daily_participation = 0.5;
    MetricConfig m2;
    m2.metric_id = 902;
    m2.value_range = 1;
    m2.daily_participation = 0.7;

    dataset_ = new Dataset(GenerateDataset(config, {exp}, {m1, m2}, {}));
    bsi_ = new ExperimentBsiData(BuildExperimentBsiData(*dataset_, true));
    cold_ = new BsiStore(BuildColdStore(*bsi_));
    baseline_ = new std::map<StrategyMetricPair, BucketValues>();
    for (uint64_t s : kStrategies) {
      for (uint64_t m : kMetrics) {
        (*baseline_)[{s, m}] = ComputeStrategyMetricBsi(*bsi_, s, m, kLo, kHi);
      }
    }
  }

  static void TearDownTestSuite() {
    delete baseline_;
    delete cold_;
    delete bsi_;
    delete dataset_;
    baseline_ = nullptr;
    cold_ = nullptr;
    bsi_ = nullptr;
    dataset_ = nullptr;
  }

  struct Fleet {
    std::vector<std::unique_ptr<net::NodeServer>> nodes;
    net::CoordinatorOptions options;

    ~Fleet() {
      for (auto& node : nodes) node->Stop();
    }
  };

  static std::unique_ptr<Fleet> StartFleet(bool allow_degraded,
                                           double deadline_seconds = 10.0) {
    auto fleet = std::make_unique<Fleet>();
    for (int i = 0; i < kNumNodes; ++i) {
      net::NodeServerOptions node_options;
      node_options.node_id = i;
      auto node = std::make_unique<net::NodeServer>(cold_, node_options);
      EXPECT_TRUE(node->Start().ok());
      fleet->options.node_ports.push_back(node->port());
      fleet->nodes.push_back(std::move(node));
    }
    fleet->options.num_segments = dataset_->config.num_segments;
    fleet->options.allow_degraded = allow_degraded;
    fleet->options.query_deadline_seconds = deadline_seconds;
    return fleet;
  }

  static void ExpectMatchesBaselineExcept(
      const std::map<StrategyMetricPair, BucketValues>& results,
      const std::vector<int>& lost_segments, const std::string& ctx) {
    const std::set<int> lost(lost_segments.begin(), lost_segments.end());
    ASSERT_EQ(results.size(), baseline_->size()) << ctx;
    for (const auto& [pair, values] : results) {
      const BucketValues& want = baseline_->at(pair);
      ASSERT_EQ(values.sums.size(), want.sums.size()) << ctx;
      ASSERT_EQ(values.counts.size(), want.counts.size()) << ctx;
      for (size_t seg = 0; seg < values.sums.size(); ++seg) {
        if (lost.count(static_cast<int>(seg)) > 0) {
          EXPECT_EQ(values.sums[seg], 0.0)
              << ctx << " lost segment " << seg << " has a nonzero sum";
          EXPECT_EQ(values.counts[seg], 0.0)
              << ctx << " lost segment " << seg << " has a nonzero count";
        } else {
          EXPECT_EQ(values.sums[seg], want.sums[seg])
              << ctx << " pair " << pair.first << "/" << pair.second
              << " segment " << seg << " diverged without being reported";
          EXPECT_EQ(values.counts[seg], want.counts[seg])
              << ctx << " pair " << pair.first << "/" << pair.second
              << " segment " << seg << " count diverged";
        }
      }
    }
  }

  static void ExpectDegradedInfoWellFormed(
      const AdhocCluster::DegradedInfo& info, const std::string& ctx) {
    EXPECT_TRUE(std::is_sorted(info.lost_segments.begin(),
                               info.lost_segments.end()))
        << ctx;
    EXPECT_EQ(std::adjacent_find(info.lost_segments.begin(),
                                 info.lost_segments.end()),
              info.lost_segments.end())
        << ctx << " duplicate lost segment";
    for (int seg : info.lost_segments) {
      EXPECT_GE(seg, 0) << ctx;
      EXPECT_LT(seg, dataset_->config.num_segments) << ctx;
    }
    EXPECT_EQ(info.segments_answered,
              dataset_->config.num_segments -
                  static_cast<int>(info.lost_segments.size()))
        << ctx;
  }

  // One chaos iteration: draw per-site probabilities from the seed, start a
  // fresh fleet, run one degraded-mode scorecard query under injection, and
  // check invariants (a)-(c). The schedule covers both link directions
  // (net.send fires on the coordinator's endpoints AND the nodes' reply
  // endpoints), accept-time drops, mid-scatter node kills, and node-local
  // warehouse faults (tier.fetch) so node-side retry/loss accounting is
  // exercised through the wire too.
  static void RunNetIteration(uint64_t seed) {
    Rng rng(seed);
    FaultInjector injector(Splitmix(seed ^ 0x4E7C4405ull));
    injector.SetFailProbability(fault_sites::kNetSend,
                                rng.NextBounded(16) / 100.0);
    injector.SetTruncateProbability(fault_sites::kNetSend,
                                    rng.NextBounded(11) / 100.0);
    injector.SetDuplicateProbability(fault_sites::kNetSend,
                                     rng.NextBounded(16) / 100.0);
    injector.SetDelayProbability(fault_sites::kNetSend,
                                 rng.NextBounded(11) / 100.0,
                                 /*delay_seconds=*/0.002);
    injector.SetFailProbability(fault_sites::kNetAccept,
                                rng.NextBounded(11) / 100.0);
    injector.SetCrashProbability(fault_sites::kNetNodeCrash,
                                 rng.NextBounded(7) / 100.0);
    injector.SetFailProbability(fault_sites::kTierFetch,
                                rng.NextBounded(11) / 100.0);
    injector.SetCorruptProbability(fault_sites::kTierFetch,
                                   rng.NextBounded(11) / 100.0);

    std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/true);
    net::Coordinator coordinator(fleet->options);
    Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
    {
      ScopedFaultInjection scoped(&injector);
      result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
    }
    const std::string ctx = Ctx(seed, "net chaos");
    ASSERT_TRUE(result.ok()) << ctx << " degraded-mode query failed: "
                             << result.status().ToString();
    const AdhocCluster::QueryStats& stats = result.value();
    ExpectDegradedInfoWellFormed(stats.degraded, ctx);
    ExpectMatchesBaselineExcept(stats.results, stats.degraded.lost_segments,
                                ctx);
    if (ChaosLogEnabled()) {
      const FaultInjector::Stats fs = injector.stats();
      std::fprintf(
          stderr,
          "[netchaos] seed=%llu lost=%d nodes_lost=%d survived=%d "
          "drops=%llu dups=%llu truncs=%llu crashes=%llu injected=%llu\n",
          static_cast<unsigned long long>(seed),
          static_cast<int>(stats.degraded.lost_segments.size()),
          stats.degraded.nodes_lost, stats.degraded.faults_survived,
          static_cast<unsigned long long>(fs.fails),
          static_cast<unsigned long long>(fs.duplicates),
          static_cast<unsigned long long>(fs.truncations),
          static_cast<unsigned long long>(fs.crashes),
          static_cast<unsigned long long>(fs.any()));
    }
  }

  static Dataset* dataset_;
  static ExperimentBsiData* bsi_;
  static BsiStore* cold_;
  static std::map<StrategyMetricPair, BucketValues>* baseline_;
};

Dataset* NetChaosTest::dataset_ = nullptr;
ExperimentBsiData* NetChaosTest::bsi_ = nullptr;
BsiStore* NetChaosTest::cold_ = nullptr;
std::map<StrategyMetricPair, BucketValues>* NetChaosTest::baseline_ = nullptr;

// ---------------------------------------------------------------------------
// Baseline sanity: the fault-free remote answer IS the oracle answer.
// ---------------------------------------------------------------------------

TEST_F(NetChaosTest, FaultFreeRemoteQueryMatchesScalarOracle) {
  ASSERT_EQ(FaultInjector::Get(), nullptr);
  std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/false);
  net::Coordinator coordinator(fleet->options);
  const auto stats = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats.value().degraded.degraded());
  ExpectMatchesBaselineExcept(stats.value().results, {}, "fault-free");
}

// ---------------------------------------------------------------------------
// The seeded sweep (corpus first, then exploration).
// ---------------------------------------------------------------------------

TEST_F(NetChaosTest, SurvivesSeededNetFaultSchedules) {
  for (uint64_t seed : SeedSchedule(0x4E7C4A05ull)) {
    RunNetIteration(seed);
    if (HasFatalFailure()) return;
  }
}

// Same seed, fresh fleet, fresh coordinator, fresh injector: results and
// degradation accounting replay identically even though real sockets and
// threads are involved (drops are connection closes, not timing races).
TEST_F(NetChaosTest, SameSeedReplaysIdentically) {
  const uint64_t seed = Splitmix(0x4E7DE7ull);
  auto run = [&](std::map<StrategyMetricPair, BucketValues>* results,
                 AdhocCluster::DegradedInfo* degraded) {
    FaultInjector injector(Splitmix(seed ^ 0x4E7C4405ull));
    injector.SetFailProbability(fault_sites::kNetSend, 0.15);
    injector.SetTruncateProbability(fault_sites::kNetSend, 0.08);
    injector.SetDuplicateProbability(fault_sites::kNetSend, 0.10);
    injector.SetCrashProbability(fault_sites::kNetNodeCrash, 0.10);
    std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/true);
    net::Coordinator coordinator(fleet->options);
    ScopedFaultInjection scoped(&injector);
    const auto stats = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    *results = stats.value().results;
    *degraded = stats.value().degraded;
  };
  std::map<StrategyMetricPair, BucketValues> first, second;
  AdhocCluster::DegradedInfo dfirst, dsecond;
  run(&first, &dfirst);
  if (HasFatalFailure()) return;
  run(&second, &dsecond);
  if (HasFatalFailure()) return;
  ASSERT_EQ(first.size(), second.size());
  for (const auto& [pair, values] : first) {
    EXPECT_EQ(values.sums, second.at(pair).sums);
    EXPECT_EQ(values.counts, second.at(pair).counts);
  }
  EXPECT_EQ(dfirst.lost_segments, dsecond.lost_segments);
  EXPECT_EQ(dfirst.segments_answered, dsecond.segments_answered);
  EXPECT_EQ(dfirst.nodes_lost, dsecond.nodes_lost);
  EXPECT_EQ(dfirst.faults_survived, dsecond.faults_survived);
}

// ---------------------------------------------------------------------------
// Named scenarios (hand-pinned schedules).
// ---------------------------------------------------------------------------

// Kill-cascade sweep over the replicated routing (R = 2 by default): nodes
// 0..k-1 are each killed on their first admitted request, so wave 1 takes
// all k out at once (the capped placement gives every node at least one
// primary, so every scheduled kill fires). Any segment with a surviving
// replica fails over and stays bit-identical; a segment whose ENTIRE
// replica set was killed is enumerated exactly -- the placement-derived
// expected set -- never silently zeroed.
TEST_F(NetChaosTest, KillCascadeFailsOverUntilReplicasExhausted) {
  for (int kills = 1; kills <= kNumNodes; ++kills) {
    const std::string ctx = "kill cascade, kills=" + std::to_string(kills);
    FaultInjector injector(/*seed=*/21);
    for (int j = 0; j < kills; ++j) {
      injector.ScheduleFault(fault_sites::kNetNodeCrash,
                             static_cast<uint64_t>(j) * kNetOpStride,
                             FaultKind::kCrash);
    }
    std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/true);
    net::Coordinator coordinator(fleet->options);
    Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
    {
      ScopedFaultInjection scoped(&injector);
      result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
    }
    ASSERT_TRUE(result.ok()) << ctx << ": " << result.status().ToString();
    const AdhocCluster::QueryStats& stats = result.value();
    EXPECT_EQ(stats.degraded.nodes_lost, kills) << ctx;
    ExpectDegradedInfoWellFormed(stats.degraded, ctx);
    ExpectMatchesBaselineExcept(stats.results, stats.degraded.lost_segments,
                                ctx);
    // Exact expectations from the placement: a segment is lost iff every
    // replica was killed; it survives a fault iff its primary was killed
    // but another replica answered.
    std::vector<int> expected_lost;
    int expected_failovers = 0;
    for (int seg = 0; seg < dataset_->config.num_segments; ++seg) {
      const std::vector<int>& replicas =
          coordinator.placement().ReplicasOf(seg);
      const bool all_killed =
          std::all_of(replicas.begin(), replicas.end(),
                      [&](int n) { return n < kills; });
      if (all_killed) {
        expected_lost.push_back(seg);
      } else if (replicas[0] < kills) {
        ++expected_failovers;
      }
    }
    EXPECT_EQ(stats.degraded.lost_segments, expected_lost) << ctx;
    EXPECT_EQ(stats.degraded.faults_survived, expected_failovers) << ctx;
    if (kills == 1) {
      // The availability claim: with R=2, no single node kill loses data.
      EXPECT_TRUE(stats.degraded.lost_segments.empty())
          << ctx << " lost data with a replica available";
    }
    if (kills == kNumNodes) {
      EXPECT_EQ(static_cast<int>(stats.degraded.lost_segments.size()),
                dataset_->config.num_segments)
          << ctx << " total node loss must enumerate every segment";
    }
    for (int j = 0; j < kNumNodes; ++j) {
      EXPECT_EQ(fleet->nodes[j]->crashed(), j < kills) << ctx;
    }
  }

  // Strict mode: total node loss is an error, not a quiet zero scorecard.
  FaultInjector injector(/*seed=*/22);
  injector.SetCrashProbability(fault_sites::kNetNodeCrash, 1.0);
  std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/false);
  net::Coordinator coordinator(fleet->options);
  ScopedFaultInjection scoped(&injector);
  const auto strict = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kUnavailable);
}

// Hedged reads: one node's reply is delayed far past the hedge delay; the
// coordinator re-sends its outstanding segments to their next replica and
// the first valid answer wins. No loss, no degradation, no node penalized,
// and the query does not pay the slow node's full delay.
TEST_F(NetChaosTest, HedgedReadCoversSlowNodeWithoutLoss) {
  FaultInjector injector(/*seed=*/30);
  // One-shot delays at net.send sleep this long; schedule exactly one on
  // node 0's first reply send (server endpoints are the node ids).
  injector.SetDelayProbability(fault_sites::kNetSend, 0.0,
                               /*delay_seconds=*/1.2);
  injector.ScheduleFault(fault_sites::kNetSend, 0, FaultKind::kDelay);
  std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/false);
  fleet->options.hedge_reads = true;
  fleet->options.hedge_delay_seconds = 0.02;
  net::Coordinator coordinator(fleet->options);
  Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
  {
    ScopedFaultInjection scoped(&injector);
    result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  }
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().degraded.degraded());
  EXPECT_EQ(result.value().degraded.nodes_lost, 0);
  EXPECT_EQ(injector.stats().delays, 1u);
  // The hedge must beat the 1.2s injected delay by a wide margin.
  EXPECT_LT(result.value().latency_seconds, 0.9);
  ExpectMatchesBaselineExcept(result.value().results, {}, "hedged-read");
}

// A truncated response frame: the coordinator sees a short read mid-frame,
// treats the node as dead and requeues its wave. Nothing is lost and the
// final scorecard is still bit-identical.
TEST_F(NetChaosTest, TruncatedResponseRequeuesWithoutLoss) {
  FaultInjector injector(/*seed=*/23);
  // Op 0 = node 0's first reply send (server endpoints are the node ids).
  injector.ScheduleFault(fault_sites::kNetSend, 0, FaultKind::kTruncate);
  std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/true);
  net::Coordinator coordinator(fleet->options);
  Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
  {
    ScopedFaultInjection scoped(&injector);
    result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  }
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().degraded.lost_segments.empty());
  EXPECT_EQ(result.value().degraded.nodes_lost, 1);
  EXPECT_GE(result.value().degraded.faults_survived, 1);
  EXPECT_EQ(injector.stats().truncations, 1u);
  ExpectMatchesBaselineExcept(result.value().results, {},
                              "truncated-response");
}

// A dropped request frame on the coordinator's side of the link: the
// connection closes before the node ever sees the query; requeue recovers.
TEST_F(NetChaosTest, DroppedRequestRequeuesWithoutLoss) {
  FaultInjector injector(/*seed=*/24);
  injector.ScheduleFault(fault_sites::kNetSend,
                         kNetClientEndpointBase * kNetOpStride,
                         FaultKind::kFail);
  std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/true);
  net::Coordinator coordinator(fleet->options);
  Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
  {
    ScopedFaultInjection scoped(&injector);
    result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  }
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().degraded.lost_segments.empty());
  ExpectMatchesBaselineExcept(result.value().results, {}, "dropped-request");
}

// A duplicated reply frame: the extra copy sits unread in the (per-RPC)
// connection and must not confuse the gather -- the result is exactly the
// fault-free one with no degradation recorded.
TEST_F(NetChaosTest, DuplicatedReplyIsHarmless) {
  FaultInjector injector(/*seed=*/25);
  injector.ScheduleFault(fault_sites::kNetSend, 0, FaultKind::kDuplicate);
  std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/true);
  net::Coordinator coordinator(fleet->options);
  Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
  {
    ScopedFaultInjection scoped(&injector);
    result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  }
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().degraded.degraded());
  EXPECT_EQ(result.value().degraded.nodes_lost, 0);
  EXPECT_EQ(injector.stats().duplicates, 1u);
  ExpectMatchesBaselineExcept(result.value().results, {}, "duplicated-reply");
}

// An accept-time drop: the TCP handshake lands (backlog) but the server
// closes the connection before reading; the coordinator sees a prompt EOF,
// not a deadline stall, and requeues.
TEST_F(NetChaosTest, AcceptDropRequeuesWithoutLoss) {
  FaultInjector injector(/*seed=*/26);
  injector.ScheduleFault(fault_sites::kNetAccept, 0, FaultKind::kFail);
  std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/true);
  net::Coordinator coordinator(fleet->options);
  Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
  {
    ScopedFaultInjection scoped(&injector);
    result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  }
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().degraded.lost_segments.empty());
  ExpectMatchesBaselineExcept(result.value().results, {}, "accept-drop");
}

// Deadline expiry: every frame send is delayed past the query deadline. In
// degraded mode every unanswered segment is enumerated as lost; in strict
// mode the query fails Unavailable. Either way, never a partial scorecard
// pretending to be whole.
TEST_F(NetChaosTest, DeadlineExpiryEnumeratesEveryUnansweredSegment) {
  {
    FaultInjector injector(/*seed=*/27);
    injector.SetDelayProbability(fault_sites::kNetSend, 1.0,
                                 /*delay_seconds=*/0.2);
    std::unique_ptr<Fleet> fleet =
        StartFleet(/*allow_degraded=*/true, /*deadline_seconds=*/0.05);
    net::Coordinator coordinator(fleet->options);
    Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
    {
      ScopedFaultInjection scoped(&injector);
      result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
    }
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const AdhocCluster::DegradedInfo& info = result.value().degraded;
    ExpectDegradedInfoWellFormed(info, "deadline-degraded");
    EXPECT_EQ(static_cast<int>(info.lost_segments.size()),
              dataset_->config.num_segments)
        << "every segment was unanswered, every one must be enumerated";
    ExpectMatchesBaselineExcept(result.value().results, info.lost_segments,
                                "deadline-degraded");
  }
  {
    FaultInjector injector(/*seed=*/28);
    injector.SetDelayProbability(fault_sites::kNetSend, 1.0,
                                 /*delay_seconds=*/0.2);
    std::unique_ptr<Fleet> fleet =
        StartFleet(/*allow_degraded=*/false, /*deadline_seconds=*/0.05);
    net::Coordinator coordinator(fleet->options);
    ScopedFaultInjection scoped(&injector);
    const auto strict = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.status().code(), StatusCode::kUnavailable);
  }
}

// ===========================================================================
// Replication chaos (DESIGN.md §11): every node serves ONLY its replica set
// from a pruned store (misrouted segments are rejected, never silently
// zero), R = 2. The sweep proves the availability claim end to end: any
// single node kill loses nothing and stays bit-identical -- even in strict
// mode -- and only when every replica of a segment is down is the loss
// enumerated, exactly. Repair scenarios ride the same fixture: a
// quarantined or missing replica heals from its peer with fingerprints
// verified, surviving a peer killed mid-repair and a peer pushing
// corrupted bytes.
//
// Reproduce seeded failures with
//   EXPBSI_CHAOS_SEED=<seed> ./build/tests/expbsi_tests
//       --gtest_filter='ReplicationChaosTest.*'
// tests/corpus/replication_seeds.txt is replayed before the exploration.
// ===========================================================================

class ReplicationChaosTest : public NetChaosTest {
 protected:
  static constexpr int kReplicas = 2;

  struct ReplicatedFleet {
    std::vector<std::unique_ptr<BsiStore>> stores;
    std::vector<std::unique_ptr<net::NodeServer>> nodes;
    net::CoordinatorOptions options;

    ~ReplicatedFleet() {
      for (auto& node : nodes) node->Stop();
    }
  };

  // Builds node `node_id`'s replica-set slice of the shared warehouse.
  static std::unique_ptr<BsiStore> PrunedStore(const Placement& placement,
                                               int node_id) {
    auto store = std::make_unique<BsiStore>();
    const std::vector<uint32_t> owned = placement.SegmentsOf(node_id);
    cold_->ForEachEntry([&](const BsiStoreKey& key, const std::string& bytes,
                            uint64_t fingerprint) {
      if (std::find(owned.begin(), owned.end(), key.segment) != owned.end()) {
        store->PutRecovered(key, bytes, fingerprint);
      }
    });
    return store;
  }

  static std::unique_ptr<ReplicatedFleet> StartReplicatedFleet(
      int replication_factor, bool allow_degraded) {
    auto fleet = std::make_unique<ReplicatedFleet>();
    const Placement placement(kNumNodes, dataset_->config.num_segments,
                              replication_factor);
    for (int i = 0; i < kNumNodes; ++i) {
      fleet->stores.push_back(PrunedStore(placement, i));
      net::NodeServerOptions node_options;
      node_options.node_id = i;
      node_options.owned_segments = placement.SegmentsOf(i);
      auto node = std::make_unique<net::NodeServer>(
          fleet->stores.back().get(), node_options);
      EXPECT_TRUE(node->Start().ok());
      fleet->options.node_ports.push_back(node->port());
      fleet->nodes.push_back(std::move(node));
    }
    fleet->options.num_segments = dataset_->config.num_segments;
    fleet->options.replication_factor = replication_factor;
    fleet->options.allow_degraded = allow_degraded;
    return fleet;
  }

  // One seeded iteration: exactly one scheduled node kill (victim and op
  // index drawn from the seed) layered with recoverable link noise
  // (duplicated frames, small delays -- kinds that never mark a node dead,
  // so the single-kill invariant is preserved). Asserts zero loss and
  // bit-identity; outputs let the replay test compare two runs.
  static void RunReplicationIteration(
      uint64_t seed, std::map<StrategyMetricPair, BucketValues>* results,
      AdhocCluster::DegradedInfo* degraded) {
    Rng rng(seed);
    FaultInjector injector(Splitmix(seed ^ 0x9E11CA05ull));
    const int victim = static_cast<int>(seed % kNumNodes);
    const uint64_t op = (seed / kNumNodes) % 2;
    injector.ScheduleFault(fault_sites::kNetNodeCrash,
                           static_cast<uint64_t>(victim) * kNetOpStride + op,
                           FaultKind::kCrash);
    injector.SetDuplicateProbability(fault_sites::kNetSend,
                                     rng.NextBounded(16) / 100.0);
    injector.SetDelayProbability(fault_sites::kNetSend,
                                 rng.NextBounded(11) / 100.0,
                                 /*delay_seconds=*/0.002);

    std::unique_ptr<ReplicatedFleet> fleet =
        StartReplicatedFleet(kReplicas, /*allow_degraded=*/true);
    net::Coordinator coordinator(fleet->options);
    Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
    {
      ScopedFaultInjection scoped(&injector);
      result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
    }
    const std::string ctx =
        "replication chaos (reproduce: EXPBSI_CHAOS_SEED=" +
        std::to_string(seed) +
        " ./build/tests/expbsi_tests"
        " --gtest_filter='ReplicationChaosTest.*')";
    ASSERT_TRUE(result.ok()) << ctx << ": " << result.status().ToString();
    const AdhocCluster::QueryStats& stats = result.value();
    EXPECT_TRUE(stats.degraded.lost_segments.empty())
        << ctx << " single-node kill lost data under R=2";
    EXPECT_LE(stats.degraded.nodes_lost, 1) << ctx;
    ExpectMatchesBaselineExcept(stats.results, {}, ctx);
    if (ChaosLogEnabled()) {
      std::fprintf(stderr,
                   "[replchaos] seed=%llu victim=%d op=%llu nodes_lost=%d "
                   "survived=%d injected=%llu\n",
                   static_cast<unsigned long long>(seed), victim,
                   static_cast<unsigned long long>(op),
                   stats.degraded.nodes_lost, stats.degraded.faults_survived,
                   static_cast<unsigned long long>(injector.stats().any()));
    }
    if (results != nullptr) *results = stats.results;
    if (degraded != nullptr) *degraded = stats.degraded;
  }

  static std::vector<uint64_t> ReplicationSeedSchedule() {
    if (const char* env = std::getenv("EXPBSI_CHAOS_SEED")) {
      return {static_cast<uint64_t>(std::strtoull(env, nullptr, 0))};
    }
    std::vector<uint64_t> seeds;
#ifdef EXPBSI_CORPUS_DIR
    std::ifstream in(std::string(EXPBSI_CORPUS_DIR) +
                     "/replication_seeds.txt");
    EXPECT_TRUE(in.good()) << "missing corpus file " << EXPBSI_CORPUS_DIR
                           << "/replication_seeds.txt";
    std::string line;
    while (std::getline(in, line)) {
      const size_t hash = line.find('#');
      if (hash != std::string::npos) line = line.substr(0, hash);
      std::istringstream ls(line);
      uint64_t seed;
      if (ls >> seed) seeds.push_back(seed);
    }
    EXPECT_GE(seeds.size(), 6u) << "replication corpus unexpectedly small";
#endif
    uint64_t x = 0x9E11CA7Eull;
    for (int i = 0, n = ExploreIters(); i < n; ++i) {
      x = Splitmix(x);
      seeds.push_back(x);
    }
    return seeds;
  }
};

// Fault-free pruned fleets are bit-identical to the scalar oracle at every
// replication factor (primaries are independent of R, so only the primary
// replica is ever dialed).
TEST_F(ReplicationChaosTest, FaultFreePrunedFleetMatchesOracle) {
  ASSERT_EQ(FaultInjector::Get(), nullptr);
  for (int r = 1; r <= kNumNodes; ++r) {
    std::unique_ptr<ReplicatedFleet> fleet =
        StartReplicatedFleet(r, /*allow_degraded=*/false);
    net::Coordinator coordinator(fleet->options);
    const auto stats = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
    ASSERT_TRUE(stats.ok()) << "R=" << r << ": " << stats.status().ToString();
    EXPECT_FALSE(stats.value().degraded.degraded()) << "R=" << r;
    ExpectMatchesBaselineExcept(stats.value().results, {},
                                "fault-free R=" + std::to_string(r));
  }
}

// The availability claim, exhaustively: kill ANY single node on its first
// admitted request and the STRICT-mode query still succeeds, complete and
// bit-identical -- the victim's segments fail over to their other replica.
TEST_F(ReplicationChaosTest, AnySingleNodeKillLosesNothing) {
  for (int victim = 0; victim < kNumNodes; ++victim) {
    const std::string ctx = "single kill, victim=" + std::to_string(victim);
    FaultInjector injector(/*seed=*/41);
    injector.ScheduleFault(fault_sites::kNetNodeCrash,
                           static_cast<uint64_t>(victim) * kNetOpStride,
                           FaultKind::kCrash);
    std::unique_ptr<ReplicatedFleet> fleet =
        StartReplicatedFleet(kReplicas, /*allow_degraded=*/false);
    net::Coordinator coordinator(fleet->options);
    Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
    {
      ScopedFaultInjection scoped(&injector);
      result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
    }
    ASSERT_TRUE(result.ok()) << ctx << ": " << result.status().ToString();
    EXPECT_TRUE(result.value().degraded.lost_segments.empty()) << ctx;
    EXPECT_EQ(result.value().degraded.nodes_lost, 1) << ctx;
    EXPECT_GT(result.value().degraded.faults_survived, 0) << ctx;
    ExpectMatchesBaselineExcept(result.value().results, {}, ctx);
    for (int j = 0; j < kNumNodes; ++j) {
      EXPECT_EQ(fleet->nodes[j]->crashed(), j == victim) << ctx;
    }
  }
}

// The seeded sweep (corpus first, then exploration).
TEST_F(ReplicationChaosTest, SurvivesSeededSingleKillSchedules) {
  for (uint64_t seed : ReplicationSeedSchedule()) {
    RunReplicationIteration(seed, nullptr, nullptr);
    if (HasFatalFailure()) return;
  }
}

// Same seed, fresh fleet, fresh injector: the replicated scatter replays
// identically -- results AND degradation accounting.
TEST_F(ReplicationChaosTest, ReplicationSweepReplaysIdentically) {
  const uint64_t seed = Splitmix(0x9E11DE7Eull);
  std::map<StrategyMetricPair, BucketValues> first, second;
  AdhocCluster::DegradedInfo dfirst, dsecond;
  RunReplicationIteration(seed, &first, &dfirst);
  if (HasFatalFailure()) return;
  RunReplicationIteration(seed, &second, &dsecond);
  if (HasFatalFailure()) return;
  ASSERT_EQ(first.size(), second.size());
  for (const auto& [pair, values] : first) {
    EXPECT_EQ(values.sums, second.at(pair).sums);
    EXPECT_EQ(values.counts, second.at(pair).counts);
  }
  EXPECT_EQ(dfirst.lost_segments, dsecond.lost_segments);
  EXPECT_EQ(dfirst.segments_answered, dsecond.segments_answered);
  EXPECT_EQ(dfirst.nodes_lost, dsecond.nodes_lost);
  EXPECT_EQ(dfirst.faults_survived, dsecond.faults_survived);
}

// Both replicas of some segments down: the loss is the EXACT
// placement-derived set -- segments whose whole replica set is inside the
// killed pair -- and everything else stays bit-identical. Strict mode
// refuses the first pair that actually loses data.
TEST_F(ReplicationChaosTest, BothReplicasDownEnumeratesExactLoss) {
  int strict_checked = 0;
  for (int a = 0; a < kNumNodes; ++a) {
    for (int b = a + 1; b < kNumNodes; ++b) {
      const std::string ctx = "pair kill {" + std::to_string(a) + "," +
                              std::to_string(b) + "}";
      FaultInjector injector(/*seed=*/43);
      for (int victim : {a, b}) {
        injector.ScheduleFault(fault_sites::kNetNodeCrash,
                               static_cast<uint64_t>(victim) * kNetOpStride,
                               FaultKind::kCrash);
      }
      std::unique_ptr<ReplicatedFleet> fleet =
          StartReplicatedFleet(kReplicas, /*allow_degraded=*/true);
      net::Coordinator coordinator(fleet->options);
      Result<AdhocCluster::QueryStats> result(
          Status::Unavailable("not run"));
      {
        ScopedFaultInjection scoped(&injector);
        result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
      }
      ASSERT_TRUE(result.ok()) << ctx << ": " << result.status().ToString();
      std::vector<int> expected_lost;
      for (int seg = 0; seg < dataset_->config.num_segments; ++seg) {
        const std::vector<int>& replicas =
            coordinator.placement().ReplicasOf(seg);
        if (std::all_of(replicas.begin(), replicas.end(),
                        [&](int n) { return n == a || n == b; })) {
          expected_lost.push_back(seg);
        }
      }
      EXPECT_EQ(result.value().degraded.lost_segments, expected_lost) << ctx;
      EXPECT_EQ(result.value().degraded.nodes_lost, 2) << ctx;
      ExpectDegradedInfoWellFormed(result.value().degraded, ctx);
      ExpectMatchesBaselineExcept(result.value().results,
                                  result.value().degraded.lost_segments, ctx);

      if (!expected_lost.empty() && strict_checked == 0) {
        ++strict_checked;
        FaultInjector strict_injector(/*seed=*/44);
        for (int victim : {a, b}) {
          strict_injector.ScheduleFault(
              fault_sites::kNetNodeCrash,
              static_cast<uint64_t>(victim) * kNetOpStride,
              FaultKind::kCrash);
        }
        std::unique_ptr<ReplicatedFleet> strict_fleet =
            StartReplicatedFleet(kReplicas, /*allow_degraded=*/false);
        net::Coordinator strict_coordinator(strict_fleet->options);
        ScopedFaultInjection scoped(&strict_injector);
        const auto strict =
            strict_coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
        ASSERT_FALSE(strict.ok()) << ctx;
        EXPECT_EQ(strict.status().code(), StatusCode::kUnavailable) << ctx;
      }
    }
  }
  // 6 segments over 3 replica pairs: at least one pair owns two segments,
  // so the strict leg must have run.
  EXPECT_EQ(strict_checked, 1);
}

// A peer killed mid-repair (net.repair kCrash) is failed over: the next
// peer supplies the verified copy and the healed blobs are bit-identical,
// fingerprints included.
TEST_F(ReplicationChaosTest, KillDuringRepairFailsOverToNextPeer) {
  net::NodeServerOptions a_options;
  a_options.node_id = 7;
  net::NodeServer peer_a(cold_, a_options);
  ASSERT_TRUE(peer_a.Start().ok());
  net::NodeServerOptions b_options;
  b_options.node_id = 8;
  net::NodeServer peer_b(cold_, b_options);
  ASSERT_TRUE(peer_b.Start().ok());

  FaultInjector injector(/*seed=*/45);
  injector.ScheduleFault(fault_sites::kNetRepair, 7ull * kNetOpStride,
                         FaultKind::kCrash);
  BsiStore dest;
  net::RepairStats stats;
  Status repaired = Status::Unavailable("not run");
  {
    ScopedFaultInjection scoped(&injector);
    repaired = net::RepairSegments({0}, {peer_a.port(), peer_b.port()},
                                   net::RepairOptions{}, &dest, &stats);
  }
  EXPECT_TRUE(repaired.ok()) << repaired.ToString();
  EXPECT_TRUE(peer_a.crashed());
  EXPECT_FALSE(peer_b.crashed());
  EXPECT_EQ(stats.segments_repaired, 1);
  EXPECT_GE(stats.peer_failures, 1);
  size_t blobs = 0;
  cold_->ForEachEntry([&](const BsiStoreKey& key, const std::string& bytes,
                          uint64_t fingerprint) {
    if (key.segment != 0) return;
    ++blobs;
    const Result<const std::string*> got = dest.Get(key);
    ASSERT_TRUE(got.ok()) << "healed store missing a blob";
    EXPECT_EQ(*got.value(), bytes);
    const Result<uint64_t> fp = dest.Fingerprint(key);
    ASSERT_TRUE(fp.ok());
    EXPECT_EQ(fp.value(), fingerprint);
  });
  EXPECT_GT(blobs, 0u);
  EXPECT_EQ(dest.NumBlobs(), blobs);
  peer_a.Stop();
  peer_b.Stop();
}

// A peer pushing corrupted bytes under a valid-looking fingerprint claim is
// caught by the receiver's re-fingerprint: the whole segment is rejected
// from that peer and healed from the next one instead.
TEST_F(ReplicationChaosTest, CorruptRepairPushIsRejectedByFingerprint) {
  net::NodeServerOptions a_options;
  a_options.node_id = 7;
  net::NodeServer peer_a(cold_, a_options);
  ASSERT_TRUE(peer_a.Start().ok());
  net::NodeServerOptions b_options;
  b_options.node_id = 8;
  net::NodeServer peer_b(cold_, b_options);
  ASSERT_TRUE(peer_b.Start().ok());

  FaultInjector injector(/*seed=*/46);
  injector.ScheduleFault(fault_sites::kNetRepair, 7ull * kNetOpStride,
                         FaultKind::kCorrupt);
  BsiStore dest;
  net::RepairStats stats;
  Status repaired = Status::Unavailable("not run");
  {
    ScopedFaultInjection scoped(&injector);
    repaired = net::RepairSegments({1}, {peer_a.port(), peer_b.port()},
                                   net::RepairOptions{}, &dest, &stats);
  }
  EXPECT_TRUE(repaired.ok()) << repaired.ToString();
  EXPECT_GE(stats.fingerprint_rejections, 1);
  EXPECT_EQ(stats.segments_repaired, 1);
  EXPECT_FALSE(peer_a.crashed());  // alive, just corrupt -- not a kill
  cold_->ForEachEntry([&](const BsiStoreKey& key, const std::string& bytes,
                          uint64_t fingerprint) {
    if (key.segment != 1) return;
    const Result<const std::string*> got = dest.Get(key);
    ASSERT_TRUE(got.ok()) << "healed store missing a blob";
    EXPECT_EQ(*got.value(), bytes) << "corrupt push leaked into the store";
    const Result<uint64_t> fp = dest.Fingerprint(key);
    ASSERT_TRUE(fp.ok());
    EXPECT_EQ(fp.value(), fingerprint);
  });
  peer_a.Stop();
  peer_b.Stop();
}

// End-to-end quarantine heal: a replica whose blob no longer matches its
// recorded fingerprint (at-rest corruption) is found by FindDamagedSegments
// and restored bit-identically from the segment's other replica.
TEST_F(ReplicationChaosTest, RepairRestoresQuarantinedReplica) {
  const Placement placement(kNumNodes, dataset_->config.num_segments,
                            kReplicas);
  std::unique_ptr<BsiStore> mine = PrunedStore(placement, 0);
  BsiStoreKey victim{};
  std::string victim_bytes;
  uint64_t victim_fp = 0;
  bool have_victim = false;
  mine->ForEachEntry([&](const BsiStoreKey& key, const std::string& bytes,
                         uint64_t fp) {
    if (!have_victim) {
      have_victim = true;
      victim = key;
      victim_bytes = bytes;
      victim_fp = fp;
    }
  });
  ASSERT_TRUE(have_victim);
  // Flip a byte but keep the recorded fingerprint -- what at-rest
  // corruption looks like after a recovery pass.
  std::string corrupted = victim_bytes;
  corrupted[0] = static_cast<char>(corrupted[0] ^ 0x5a);
  mine->PutRecovered(victim, corrupted, victim_fp);

  const std::vector<uint32_t> damaged =
      net::FindDamagedSegments(*mine, placement, 0);
  ASSERT_EQ(damaged.size(), 1u);
  EXPECT_EQ(damaged[0], static_cast<uint32_t>(victim.segment));

  // The segment's other replica serves the heal from its own pruned store.
  const std::vector<int>& replicas = placement.ReplicasOf(victim.segment);
  ASSERT_EQ(replicas.size(), 2u);
  const int peer_id = replicas[0] == 0 ? replicas[1] : replicas[0];
  std::unique_ptr<BsiStore> peer_store = PrunedStore(placement, peer_id);
  net::NodeServerOptions peer_options;
  peer_options.node_id = peer_id;
  peer_options.owned_segments = placement.SegmentsOf(peer_id);
  net::NodeServer peer(peer_store.get(), peer_options);
  ASSERT_TRUE(peer.Start().ok());

  net::RepairStats stats;
  const Status repaired = net::RepairSegments(
      damaged, {peer.port()}, net::RepairOptions{}, mine.get(), &stats);
  EXPECT_TRUE(repaired.ok()) << repaired.ToString();
  EXPECT_EQ(stats.segments_repaired, 1);
  EXPECT_GT(stats.blobs_installed, 0);
  EXPECT_TRUE(net::FindDamagedSegments(*mine, placement, 0).empty());
  const Result<const std::string*> healed = mine->Get(victim);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(*healed.value(), victim_bytes);
  peer.Stop();
}

// No peer can help: the repair fails LOUDLY with the count, never a store
// that silently serves the hole.
TEST_F(ReplicationChaosTest, RepairWithAllPeersDeadFailsLoudly) {
  // A started-then-stopped server yields a port that refuses connections.
  net::NodeServerOptions options;
  options.node_id = 9;
  net::NodeServer dead(cold_, options);
  ASSERT_TRUE(dead.Start().ok());
  const uint16_t dead_port = dead.port();
  dead.Stop();

  net::RepairOptions repair_options;
  repair_options.rpc_deadline_seconds = 2.0;
  BsiStore dest;
  net::RepairStats stats;
  const Status repaired = net::RepairSegments({0, 1}, {dead_port},
                                              repair_options, &dest, &stats);
  ASSERT_FALSE(repaired.ok());
  EXPECT_EQ(repaired.code(), StatusCode::kUnavailable);
  EXPECT_EQ(stats.segments_failed, 2);
  EXPECT_EQ(dest.NumBlobs(), 0u);
}

// Node-side warehouse faults travel the wire correctly: persistent fetch
// corruption on one segment's blobs exhausts node-side retries, comes back
// as lost=1 for exactly that segment, and is NOT requeued (the node is
// alive; retries already ran next to the data).
TEST_F(NetChaosTest, NodeSideLossIsReportedNotRequeued) {
  FaultInjector injector(/*seed=*/29);
  injector.SetCorruptProbability(fault_sites::kTierFetch, 1.0);
  std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/true);
  net::Coordinator coordinator(fleet->options);
  Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
  {
    ScopedFaultInjection scoped(&injector);
    result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  }
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const AdhocCluster::DegradedInfo& info = result.value().degraded;
  // Every fetch corrupts, so every segment is lost -- but through the
  // node-is-alive path: no node was declared dead.
  EXPECT_EQ(static_cast<int>(info.lost_segments.size()),
            dataset_->config.num_segments);
  EXPECT_EQ(info.nodes_lost, 0);
  ExpectDegradedInfoWellFormed(info, "node-side-loss");
  ExpectMatchesBaselineExcept(result.value().results, info.lost_segments,
                              "node-side-loss");
}

}  // namespace
}  // namespace expbsi
