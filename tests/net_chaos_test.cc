// Network chaos suite (DESIGN.md §9, docs/TESTING.md "Network chaos"):
// seeded fault schedules over the net.* sites replayed against a REAL
// TCP serving stack -- node servers on loopback, the scatter/gather
// coordinator in front. The invariants mirror the in-process chaos suite:
//
//   (a) a fault-free remote scorecard is BIT-IDENTICAL to the in-process
//       AdhocCluster's and the scalar oracle's;
//   (b) a degraded result enumerates exactly the lost segments -- every
//       other segment's values still match the fault-free run bit for bit
//       (never a silent loss);
//   (c) no crash, no hang: drops and truncations surface as prompt
//       connection closes, never timeout races, so schedules replay
//       deterministically.
//
// Reproducing a failure: every assertion message carries the iteration
// seed. Re-run just that seed with
//
//   EXPBSI_CHAOS_SEED=<seed> ./build/tests/expbsi_tests
//       --gtest_filter='NetChaosTest.*'   (one command, line-wrapped)
//
// EXPBSI_CHAOS_ITERS widens the random exploration (the CI net job runs
// 200 in Release); tests/corpus/net_seeds.txt is replayed BEFORE the
// exploration. EXPBSI_CHAOS_LOG=1 prints a one-line classification per
// seed, which is how corpus candidates are hunted.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/adhoc_cluster.h"
#include "common/fault_injector.h"
#include "common/rng.h"
#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"
#include "net/coordinator.h"
#include "net/node_server.h"

namespace expbsi {
namespace {

// ---------------------------------------------------------------------------
// Seed schedule (same shape as chaos_test.cc).
// ---------------------------------------------------------------------------

uint64_t Splitmix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::vector<uint64_t> NetCorpusSeeds() {
  std::vector<uint64_t> seeds;
#ifdef EXPBSI_CORPUS_DIR
  std::ifstream in(std::string(EXPBSI_CORPUS_DIR) + "/net_seeds.txt");
  EXPECT_TRUE(in.good()) << "missing corpus file " << EXPBSI_CORPUS_DIR
                         << "/net_seeds.txt";
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    uint64_t seed;
    if (ls >> seed) seeds.push_back(seed);
  }
  EXPECT_GE(seeds.size(), 4u) << "net chaos corpus unexpectedly small";
#endif
  return seeds;
}

int ExploreIters() {
  if (const char* env = std::getenv("EXPBSI_CHAOS_ITERS")) {
    return static_cast<int>(std::strtol(env, nullptr, 0));
  }
  return 25;
}

std::vector<uint64_t> SeedSchedule(uint64_t base) {
  if (const char* env = std::getenv("EXPBSI_CHAOS_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(env, nullptr, 0))};
  }
  std::vector<uint64_t> seeds = NetCorpusSeeds();
  uint64_t x = base;
  for (int i = 0, n = ExploreIters(); i < n; ++i) {
    x = Splitmix(x);
    seeds.push_back(x);
  }
  return seeds;
}

std::string Ctx(uint64_t seed, const std::string& what) {
  return what + " (reproduce: EXPBSI_CHAOS_SEED=" + std::to_string(seed) +
         " ./build/tests/expbsi_tests"
         " --gtest_filter='NetChaosTest.*')";
}

bool ChaosLogEnabled() {
  static const bool enabled = std::getenv("EXPBSI_CHAOS_LOG") != nullptr;
  return enabled;
}

// ---------------------------------------------------------------------------
// Fixture: one dataset, fault-free baselines, warehouse store shared by
// every node server. Servers are restarted per iteration so their fault op
// counters (accepts, requests, sends) restart from zero -- a schedule is a
// pure function of the seed, not of how many iterations ran before it.
// ---------------------------------------------------------------------------

constexpr Date kLo = 10;
constexpr Date kHi = 14;
constexpr int kNumNodes = 3;
const std::vector<uint64_t> kStrategies = {801, 802};
const std::vector<uint64_t> kMetrics = {901, 902};

class NetChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.num_users = 3000;
    config.num_segments = 6;
    config.num_days = 5;
    config.start_date = kLo;
    config.seed = 71;

    ExperimentConfig exp;
    exp.strategy_ids = {801, 802};
    exp.arm_effects = {1.0, 1.1};
    exp.traffic_salt = 5;

    MetricConfig m1;
    m1.metric_id = 901;
    m1.value_range = 100;
    m1.daily_participation = 0.5;
    MetricConfig m2;
    m2.metric_id = 902;
    m2.value_range = 1;
    m2.daily_participation = 0.7;

    dataset_ = new Dataset(GenerateDataset(config, {exp}, {m1, m2}, {}));
    bsi_ = new ExperimentBsiData(BuildExperimentBsiData(*dataset_, true));
    cold_ = new BsiStore(BuildColdStore(*bsi_));
    baseline_ = new std::map<StrategyMetricPair, BucketValues>();
    for (uint64_t s : kStrategies) {
      for (uint64_t m : kMetrics) {
        (*baseline_)[{s, m}] = ComputeStrategyMetricBsi(*bsi_, s, m, kLo, kHi);
      }
    }
  }

  static void TearDownTestSuite() {
    delete baseline_;
    delete cold_;
    delete bsi_;
    delete dataset_;
  }

  struct Fleet {
    std::vector<std::unique_ptr<net::NodeServer>> nodes;
    net::CoordinatorOptions options;

    ~Fleet() {
      for (auto& node : nodes) node->Stop();
    }
  };

  static std::unique_ptr<Fleet> StartFleet(bool allow_degraded,
                                           double deadline_seconds = 10.0) {
    auto fleet = std::make_unique<Fleet>();
    for (int i = 0; i < kNumNodes; ++i) {
      net::NodeServerOptions node_options;
      node_options.node_id = i;
      auto node = std::make_unique<net::NodeServer>(cold_, node_options);
      EXPECT_TRUE(node->Start().ok());
      fleet->options.node_ports.push_back(node->port());
      fleet->nodes.push_back(std::move(node));
    }
    fleet->options.num_segments = dataset_->config.num_segments;
    fleet->options.allow_degraded = allow_degraded;
    fleet->options.query_deadline_seconds = deadline_seconds;
    return fleet;
  }

  static void ExpectMatchesBaselineExcept(
      const std::map<StrategyMetricPair, BucketValues>& results,
      const std::vector<int>& lost_segments, const std::string& ctx) {
    const std::set<int> lost(lost_segments.begin(), lost_segments.end());
    ASSERT_EQ(results.size(), baseline_->size()) << ctx;
    for (const auto& [pair, values] : results) {
      const BucketValues& want = baseline_->at(pair);
      ASSERT_EQ(values.sums.size(), want.sums.size()) << ctx;
      ASSERT_EQ(values.counts.size(), want.counts.size()) << ctx;
      for (size_t seg = 0; seg < values.sums.size(); ++seg) {
        if (lost.count(static_cast<int>(seg)) > 0) {
          EXPECT_EQ(values.sums[seg], 0.0)
              << ctx << " lost segment " << seg << " has a nonzero sum";
          EXPECT_EQ(values.counts[seg], 0.0)
              << ctx << " lost segment " << seg << " has a nonzero count";
        } else {
          EXPECT_EQ(values.sums[seg], want.sums[seg])
              << ctx << " pair " << pair.first << "/" << pair.second
              << " segment " << seg << " diverged without being reported";
          EXPECT_EQ(values.counts[seg], want.counts[seg])
              << ctx << " pair " << pair.first << "/" << pair.second
              << " segment " << seg << " count diverged";
        }
      }
    }
  }

  static void ExpectDegradedInfoWellFormed(
      const AdhocCluster::DegradedInfo& info, const std::string& ctx) {
    EXPECT_TRUE(std::is_sorted(info.lost_segments.begin(),
                               info.lost_segments.end()))
        << ctx;
    EXPECT_EQ(std::adjacent_find(info.lost_segments.begin(),
                                 info.lost_segments.end()),
              info.lost_segments.end())
        << ctx << " duplicate lost segment";
    for (int seg : info.lost_segments) {
      EXPECT_GE(seg, 0) << ctx;
      EXPECT_LT(seg, dataset_->config.num_segments) << ctx;
    }
    EXPECT_EQ(info.segments_answered,
              dataset_->config.num_segments -
                  static_cast<int>(info.lost_segments.size()))
        << ctx;
  }

  // One chaos iteration: draw per-site probabilities from the seed, start a
  // fresh fleet, run one degraded-mode scorecard query under injection, and
  // check invariants (a)-(c). The schedule covers both link directions
  // (net.send fires on the coordinator's endpoints AND the nodes' reply
  // endpoints), accept-time drops, mid-scatter node kills, and node-local
  // warehouse faults (tier.fetch) so node-side retry/loss accounting is
  // exercised through the wire too.
  static void RunNetIteration(uint64_t seed) {
    Rng rng(seed);
    FaultInjector injector(Splitmix(seed ^ 0x4E7C4405ull));
    injector.SetFailProbability(fault_sites::kNetSend,
                                rng.NextBounded(16) / 100.0);
    injector.SetTruncateProbability(fault_sites::kNetSend,
                                    rng.NextBounded(11) / 100.0);
    injector.SetDuplicateProbability(fault_sites::kNetSend,
                                     rng.NextBounded(16) / 100.0);
    injector.SetDelayProbability(fault_sites::kNetSend,
                                 rng.NextBounded(11) / 100.0,
                                 /*delay_seconds=*/0.002);
    injector.SetFailProbability(fault_sites::kNetAccept,
                                rng.NextBounded(11) / 100.0);
    injector.SetCrashProbability(fault_sites::kNetNodeCrash,
                                 rng.NextBounded(7) / 100.0);
    injector.SetFailProbability(fault_sites::kTierFetch,
                                rng.NextBounded(11) / 100.0);
    injector.SetCorruptProbability(fault_sites::kTierFetch,
                                   rng.NextBounded(11) / 100.0);

    std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/true);
    net::Coordinator coordinator(fleet->options);
    Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
    {
      ScopedFaultInjection scoped(&injector);
      result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
    }
    const std::string ctx = Ctx(seed, "net chaos");
    ASSERT_TRUE(result.ok()) << ctx << " degraded-mode query failed: "
                             << result.status().ToString();
    const AdhocCluster::QueryStats& stats = result.value();
    ExpectDegradedInfoWellFormed(stats.degraded, ctx);
    ExpectMatchesBaselineExcept(stats.results, stats.degraded.lost_segments,
                                ctx);
    if (ChaosLogEnabled()) {
      const FaultInjector::Stats fs = injector.stats();
      std::fprintf(
          stderr,
          "[netchaos] seed=%llu lost=%d nodes_lost=%d survived=%d "
          "drops=%llu dups=%llu truncs=%llu crashes=%llu injected=%llu\n",
          static_cast<unsigned long long>(seed),
          static_cast<int>(stats.degraded.lost_segments.size()),
          stats.degraded.nodes_lost, stats.degraded.faults_survived,
          static_cast<unsigned long long>(fs.fails),
          static_cast<unsigned long long>(fs.duplicates),
          static_cast<unsigned long long>(fs.truncations),
          static_cast<unsigned long long>(fs.crashes),
          static_cast<unsigned long long>(fs.any()));
    }
  }

  static Dataset* dataset_;
  static ExperimentBsiData* bsi_;
  static BsiStore* cold_;
  static std::map<StrategyMetricPair, BucketValues>* baseline_;
};

Dataset* NetChaosTest::dataset_ = nullptr;
ExperimentBsiData* NetChaosTest::bsi_ = nullptr;
BsiStore* NetChaosTest::cold_ = nullptr;
std::map<StrategyMetricPair, BucketValues>* NetChaosTest::baseline_ = nullptr;

// ---------------------------------------------------------------------------
// Baseline sanity: the fault-free remote answer IS the oracle answer.
// ---------------------------------------------------------------------------

TEST_F(NetChaosTest, FaultFreeRemoteQueryMatchesScalarOracle) {
  ASSERT_EQ(FaultInjector::Get(), nullptr);
  std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/false);
  net::Coordinator coordinator(fleet->options);
  const auto stats = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats.value().degraded.degraded());
  ExpectMatchesBaselineExcept(stats.value().results, {}, "fault-free");
}

// ---------------------------------------------------------------------------
// The seeded sweep (corpus first, then exploration).
// ---------------------------------------------------------------------------

TEST_F(NetChaosTest, SurvivesSeededNetFaultSchedules) {
  for (uint64_t seed : SeedSchedule(0x4E7C4A05ull)) {
    RunNetIteration(seed);
    if (HasFatalFailure()) return;
  }
}

// Same seed, fresh fleet, fresh coordinator, fresh injector: results and
// degradation accounting replay identically even though real sockets and
// threads are involved (drops are connection closes, not timing races).
TEST_F(NetChaosTest, SameSeedReplaysIdentically) {
  const uint64_t seed = Splitmix(0x4E7DE7ull);
  auto run = [&](std::map<StrategyMetricPair, BucketValues>* results,
                 AdhocCluster::DegradedInfo* degraded) {
    FaultInjector injector(Splitmix(seed ^ 0x4E7C4405ull));
    injector.SetFailProbability(fault_sites::kNetSend, 0.15);
    injector.SetTruncateProbability(fault_sites::kNetSend, 0.08);
    injector.SetDuplicateProbability(fault_sites::kNetSend, 0.10);
    injector.SetCrashProbability(fault_sites::kNetNodeCrash, 0.10);
    std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/true);
    net::Coordinator coordinator(fleet->options);
    ScopedFaultInjection scoped(&injector);
    const auto stats = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    *results = stats.value().results;
    *degraded = stats.value().degraded;
  };
  std::map<StrategyMetricPair, BucketValues> first, second;
  AdhocCluster::DegradedInfo dfirst, dsecond;
  run(&first, &dfirst);
  if (HasFatalFailure()) return;
  run(&second, &dsecond);
  if (HasFatalFailure()) return;
  ASSERT_EQ(first.size(), second.size());
  for (const auto& [pair, values] : first) {
    EXPECT_EQ(values.sums, second.at(pair).sums);
    EXPECT_EQ(values.counts, second.at(pair).counts);
  }
  EXPECT_EQ(dfirst.lost_segments, dsecond.lost_segments);
  EXPECT_EQ(dfirst.segments_answered, dsecond.segments_answered);
  EXPECT_EQ(dfirst.nodes_lost, dsecond.nodes_lost);
  EXPECT_EQ(dfirst.faults_survived, dsecond.faults_survived);
}

// ---------------------------------------------------------------------------
// Named scenarios (hand-pinned schedules).
// ---------------------------------------------------------------------------

// Kill-at-every-wave sweep: node j is killed on its j-th admitted request,
// so the first kill orphans wave 1's segments, the second kills the node
// that picked them up in wave 2, the third kills the last survivor in wave
// 3. With any survivor left nothing is lost; with none, the loss is exact
// and enumerated -- never silent.
TEST_F(NetChaosTest, KillAtEveryWaveNeverLosesDataSilently) {
  for (int kill_waves = 1; kill_waves <= kNumNodes; ++kill_waves) {
    const std::string ctx =
        "kill-at-wave sweep, kills=" + std::to_string(kill_waves);
    FaultInjector injector(/*seed=*/21);
    for (int j = 0; j < kill_waves; ++j) {
      injector.ScheduleFault(
          fault_sites::kNetNodeCrash,
          static_cast<uint64_t>(j) * kNetOpStride + static_cast<uint64_t>(j),
          FaultKind::kCrash);
    }
    std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/true);
    net::Coordinator coordinator(fleet->options);
    Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
    {
      ScopedFaultInjection scoped(&injector);
      result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
    }
    ASSERT_TRUE(result.ok()) << ctx << ": " << result.status().ToString();
    const AdhocCluster::QueryStats& stats = result.value();
    EXPECT_EQ(stats.degraded.nodes_lost, kill_waves) << ctx;
    ExpectDegradedInfoWellFormed(stats.degraded, ctx);
    ExpectMatchesBaselineExcept(stats.results, stats.degraded.lost_segments,
                                ctx);
    if (kill_waves < kNumNodes) {
      EXPECT_TRUE(stats.degraded.lost_segments.empty())
          << ctx << " lost data with survivors available";
      EXPECT_GE(stats.degraded.faults_survived, kill_waves) << ctx;
    } else {
      EXPECT_FALSE(stats.degraded.lost_segments.empty())
          << ctx << " total node loss reported no lost segments";
    }
    for (int j = 0; j < kNumNodes; ++j) {
      EXPECT_EQ(fleet->nodes[j]->crashed(), j < kill_waves) << ctx;
    }
  }

  // Strict mode: total node loss is an error, not a quiet zero scorecard.
  FaultInjector injector(/*seed=*/22);
  injector.SetCrashProbability(fault_sites::kNetNodeCrash, 1.0);
  std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/false);
  net::Coordinator coordinator(fleet->options);
  ScopedFaultInjection scoped(&injector);
  const auto strict = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kUnavailable);
}

// A truncated response frame: the coordinator sees a short read mid-frame,
// treats the node as dead and requeues its wave. Nothing is lost and the
// final scorecard is still bit-identical.
TEST_F(NetChaosTest, TruncatedResponseRequeuesWithoutLoss) {
  FaultInjector injector(/*seed=*/23);
  // Op 0 = node 0's first reply send (server endpoints are the node ids).
  injector.ScheduleFault(fault_sites::kNetSend, 0, FaultKind::kTruncate);
  std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/true);
  net::Coordinator coordinator(fleet->options);
  Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
  {
    ScopedFaultInjection scoped(&injector);
    result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  }
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().degraded.lost_segments.empty());
  EXPECT_EQ(result.value().degraded.nodes_lost, 1);
  EXPECT_GE(result.value().degraded.faults_survived, 1);
  EXPECT_EQ(injector.stats().truncations, 1u);
  ExpectMatchesBaselineExcept(result.value().results, {},
                              "truncated-response");
}

// A dropped request frame on the coordinator's side of the link: the
// connection closes before the node ever sees the query; requeue recovers.
TEST_F(NetChaosTest, DroppedRequestRequeuesWithoutLoss) {
  FaultInjector injector(/*seed=*/24);
  injector.ScheduleFault(fault_sites::kNetSend,
                         kNetClientEndpointBase * kNetOpStride,
                         FaultKind::kFail);
  std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/true);
  net::Coordinator coordinator(fleet->options);
  Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
  {
    ScopedFaultInjection scoped(&injector);
    result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  }
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().degraded.lost_segments.empty());
  ExpectMatchesBaselineExcept(result.value().results, {}, "dropped-request");
}

// A duplicated reply frame: the extra copy sits unread in the (per-RPC)
// connection and must not confuse the gather -- the result is exactly the
// fault-free one with no degradation recorded.
TEST_F(NetChaosTest, DuplicatedReplyIsHarmless) {
  FaultInjector injector(/*seed=*/25);
  injector.ScheduleFault(fault_sites::kNetSend, 0, FaultKind::kDuplicate);
  std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/true);
  net::Coordinator coordinator(fleet->options);
  Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
  {
    ScopedFaultInjection scoped(&injector);
    result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  }
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().degraded.degraded());
  EXPECT_EQ(result.value().degraded.nodes_lost, 0);
  EXPECT_EQ(injector.stats().duplicates, 1u);
  ExpectMatchesBaselineExcept(result.value().results, {}, "duplicated-reply");
}

// An accept-time drop: the TCP handshake lands (backlog) but the server
// closes the connection before reading; the coordinator sees a prompt EOF,
// not a deadline stall, and requeues.
TEST_F(NetChaosTest, AcceptDropRequeuesWithoutLoss) {
  FaultInjector injector(/*seed=*/26);
  injector.ScheduleFault(fault_sites::kNetAccept, 0, FaultKind::kFail);
  std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/true);
  net::Coordinator coordinator(fleet->options);
  Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
  {
    ScopedFaultInjection scoped(&injector);
    result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  }
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().degraded.lost_segments.empty());
  ExpectMatchesBaselineExcept(result.value().results, {}, "accept-drop");
}

// Deadline expiry: every frame send is delayed past the query deadline. In
// degraded mode every unanswered segment is enumerated as lost; in strict
// mode the query fails Unavailable. Either way, never a partial scorecard
// pretending to be whole.
TEST_F(NetChaosTest, DeadlineExpiryEnumeratesEveryUnansweredSegment) {
  {
    FaultInjector injector(/*seed=*/27);
    injector.SetDelayProbability(fault_sites::kNetSend, 1.0,
                                 /*delay_seconds=*/0.2);
    std::unique_ptr<Fleet> fleet =
        StartFleet(/*allow_degraded=*/true, /*deadline_seconds=*/0.05);
    net::Coordinator coordinator(fleet->options);
    Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
    {
      ScopedFaultInjection scoped(&injector);
      result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
    }
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const AdhocCluster::DegradedInfo& info = result.value().degraded;
    ExpectDegradedInfoWellFormed(info, "deadline-degraded");
    EXPECT_EQ(static_cast<int>(info.lost_segments.size()),
              dataset_->config.num_segments)
        << "every segment was unanswered, every one must be enumerated";
    ExpectMatchesBaselineExcept(result.value().results, info.lost_segments,
                                "deadline-degraded");
  }
  {
    FaultInjector injector(/*seed=*/28);
    injector.SetDelayProbability(fault_sites::kNetSend, 1.0,
                                 /*delay_seconds=*/0.2);
    std::unique_ptr<Fleet> fleet =
        StartFleet(/*allow_degraded=*/false, /*deadline_seconds=*/0.05);
    net::Coordinator coordinator(fleet->options);
    ScopedFaultInjection scoped(&injector);
    const auto strict = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.status().code(), StatusCode::kUnavailable);
  }
}

// Node-side warehouse faults travel the wire correctly: persistent fetch
// corruption on one segment's blobs exhausts node-side retries, comes back
// as lost=1 for exactly that segment, and is NOT requeued (the node is
// alive; retries already ran next to the data).
TEST_F(NetChaosTest, NodeSideLossIsReportedNotRequeued) {
  FaultInjector injector(/*seed=*/29);
  injector.SetCorruptProbability(fault_sites::kTierFetch, 1.0);
  std::unique_ptr<Fleet> fleet = StartFleet(/*allow_degraded=*/true);
  net::Coordinator coordinator(fleet->options);
  Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
  {
    ScopedFaultInjection scoped(&injector);
    result = coordinator.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  }
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const AdhocCluster::DegradedInfo& info = result.value().degraded;
  // Every fetch corrupts, so every segment is lost -- but through the
  // node-is-alive path: no node was declared dead.
  EXPECT_EQ(static_cast<int>(info.lost_segments.size()),
            dataset_->config.num_segments);
  EXPECT_EQ(info.nodes_lost, 0);
  ExpectDegradedInfoWellFormed(info, "node-side-loss");
  ExpectMatchesBaselineExcept(result.value().results, info.lost_segments,
                              "node-side-loss");
}

}  // namespace
}  // namespace expbsi
