#include "bsi/bsi_group_by.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace expbsi {
namespace {

using testing_util::ToPairVector;

struct GroupCase {
  uint64_t seed;
  int num_buckets;
  int num_positions;
};

class BsiGroupByTest : public ::testing::TestWithParam<GroupCase> {};

TEST_P(BsiGroupByTest, SumsAndCountsMatchNaive) {
  const GroupCase& param = GetParam();
  Rng rng(param.seed);
  // Every position gets a bucket; a subset gets a value; the universe is a
  // random subset of positions (the "exposed" mask of a scorecard).
  std::map<uint32_t, uint64_t> bucket_of;
  std::map<uint32_t, uint64_t> value_of;
  RoaringBitmap universe;
  for (int i = 0; i < param.num_positions; ++i) {
    const uint32_t pos = static_cast<uint32_t>(rng.NextBounded(1u << 20));
    bucket_of[pos] = rng.NextBounded(param.num_buckets);
    if (rng.NextBernoulli(0.6)) value_of[pos] = 1 + rng.NextBounded(1000);
    if (rng.NextBernoulli(0.7)) universe.Add(pos);
  }
  std::vector<std::pair<uint32_t, uint64_t>> bucket_pairs;
  for (const auto& [pos, b] : bucket_of) bucket_pairs.emplace_back(pos, b + 1);
  Bsi bucket = Bsi::FromPairs(bucket_pairs);
  Bsi value = Bsi::FromPairs(ToPairVector(value_of));

  std::vector<uint64_t> expect_sums(param.num_buckets, 0);
  std::vector<uint64_t> expect_counts(param.num_buckets, 0);
  for (const auto& [pos, b] : bucket_of) {
    if (!universe.Contains(pos)) continue;
    ++expect_counts[b];
    auto it = value_of.find(pos);
    if (it != value_of.end()) expect_sums[b] += it->second;
  }

  EXPECT_EQ(GroupSumByBucket(value, bucket, param.num_buckets, universe),
            expect_sums);
  EXPECT_EQ(GroupCountByBucket(bucket, param.num_buckets, universe),
            expect_counts);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BsiGroupByTest,
    ::testing::Values(GroupCase{71, 4, 2000},     // few buckets
                      GroupCase{72, 1024, 20000}, // the paper's bucket count
                      GroupCase{73, 1000, 20000}, // non-power-of-two
                      GroupCase{74, 1, 500},      // single bucket
                      GroupCase{75, 1024, 100})); // buckets >> positions

TEST(BsiGroupByTest, PartitionVisitsDisjointMasks) {
  Rng rng(76);
  std::vector<std::pair<uint32_t, uint64_t>> bucket_pairs;
  for (uint32_t pos = 0; pos < 5000; ++pos) {
    bucket_pairs.emplace_back(pos, 1 + rng.NextBounded(16));
  }
  Bsi bucket = Bsi::FromPairs(bucket_pairs);
  RoaringBitmap universe;
  universe.AddRange(0, 5000);
  RoaringBitmap seen;
  uint64_t total = 0;
  PartitionByBucket(bucket, 16, universe,
                    [&seen, &total](int bucket_id, const RoaringBitmap& mask) {
                      EXPECT_GE(bucket_id, 0);
                      EXPECT_LT(bucket_id, 16);
                      EXPECT_FALSE(RoaringBitmap::Intersects(seen, mask));
                      seen.OrInPlace(mask);
                      total += mask.Cardinality();
                    });
  EXPECT_EQ(total, 5000u);
}

TEST(BsiGroupByTest, UniverseOutsideBucketAssignmentIsIgnored) {
  Bsi bucket = Bsi::FromPairs({{1, 1}, {2, 2}});  // buckets 0 and 1
  Bsi value = Bsi::FromPairs({{1, 10}, {2, 20}, {3, 30}});
  RoaringBitmap universe;
  universe.AddRange(0, 10);  // includes position 3, which has no bucket
  const std::vector<uint64_t> sums =
      GroupSumByBucket(value, bucket, 2, universe);
  EXPECT_EQ(sums, (std::vector<uint64_t>{10, 20}));
}

}  // namespace
}  // namespace expbsi
