#include "storage/block_compressor.h"

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace expbsi {
namespace {

std::string RandomBytes(Rng& rng, size_t n) {
  std::string out(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<char>(rng.NextBounded(256));
  }
  return out;
}

void ExpectRoundTrip(const std::string& input) {
  const std::string compressed = Lz4LikeCompress(input);
  Result<std::string> back = Lz4LikeDecompress(compressed, input.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), input);
}

TEST(BlockCompressorTest, EmptyInput) { ExpectRoundTrip(""); }

TEST(BlockCompressorTest, TinyInput) {
  ExpectRoundTrip("a");
  ExpectRoundTrip("hello");
}

TEST(BlockCompressorTest, HighlyRepetitiveCompressesWell) {
  std::string input;
  for (int i = 0; i < 1000; ++i) input += "abcdefgh";
  const std::string compressed = Lz4LikeCompress(input);
  EXPECT_LT(compressed.size(), input.size() / 10);
  ExpectRoundTrip(input);
}

TEST(BlockCompressorTest, AllZerosCompressesWell) {
  const std::string input(100000, '\0');
  const std::string compressed = Lz4LikeCompress(input);
  EXPECT_LT(compressed.size(), input.size() / 50);
  ExpectRoundTrip(input);
}

TEST(BlockCompressorTest, RandomDataDoesNotExplode) {
  Rng rng(1);
  const std::string input = RandomBytes(rng, 100000);
  const std::string compressed = Lz4LikeCompress(input);
  // Incompressible data should stay close to its original size.
  EXPECT_LT(compressed.size(), input.size() + input.size() / 100 + 64);
  ExpectRoundTrip(input);
}

TEST(BlockCompressorTest, LongMatchesAndExtendedLengths) {
  // > 255 literal run followed by > 255 match length to exercise the
  // extension chains.
  Rng rng(2);
  std::string input = RandomBytes(rng, 400);
  input += std::string(2000, 'x');
  input += RandomBytes(rng, 300);
  ExpectRoundTrip(input);
}

TEST(BlockCompressorTest, OverlappingMatchReplication) {
  // "ababab..." forces matches whose offset < length (self-overlap).
  std::string input;
  for (int i = 0; i < 5000; ++i) input += (i % 2 == 0 ? 'a' : 'b');
  ExpectRoundTrip(input);
}

TEST(BlockCompressorTest, FramedBlockRoundTrip) {
  std::string input = "the quick brown fox jumps over the lazy dog ";
  for (int i = 0; i < 6; ++i) input += input;
  const std::string block = CompressBlock(input);
  Result<std::string> back = DecompressBlock(block);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), input);
}

TEST(BlockCompressorTest, CorruptionDetected) {
  std::string input(5000, 'q');
  const std::string compressed = Lz4LikeCompress(input);
  // Wrong original size.
  EXPECT_FALSE(Lz4LikeDecompress(compressed, input.size() + 1).ok());
  // Truncated stream.
  EXPECT_FALSE(
      Lz4LikeDecompress(compressed.substr(0, compressed.size() / 2),
                        input.size())
          .ok());
  // Truncated frame header.
  EXPECT_FALSE(DecompressBlock("abc").ok());
}

class CompressorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompressorPropertyTest, RoundTripMixedContent) {
  Rng rng(GetParam());
  std::string input;
  // Alternating compressible and incompressible chunks of random sizes.
  const int chunks = 1 + static_cast<int>(rng.NextBounded(20));
  for (int c = 0; c < chunks; ++c) {
    const size_t len = rng.NextBounded(5000);
    if (rng.NextBernoulli(0.5)) {
      input += std::string(len, static_cast<char>(rng.NextBounded(256)));
    } else {
      input += RandomBytes(rng, len);
    }
  }
  ExpectRoundTrip(input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressorPropertyTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18, 19,
                                           20));

}  // namespace
}  // namespace expbsi
