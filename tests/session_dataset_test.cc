// Tests for the unit-hierarchy case (§3.1.1): session-level analysis units
// randomized (and bucketed) by user. "The randomization unit should always
// be higher or equal to the analysis unit."

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"
#include "expdata/segmenter.h"

namespace expbsi {
namespace {

class SessionDatasetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.num_users = 8000;
    config.num_segments = 4;
    config.num_buckets = 64;
    config.num_days = 5;
    config.seed = 88;

    ExperimentConfig exp;
    exp.strategy_ids = {31, 32};
    exp.arm_effects = {1.0, 1.25};
    exp.traffic_salt = 19;

    MetricConfig m;  // forwarding-count-per-session
    m.metric_id = 777;
    m.value_range = 30;
    m.daily_participation = 0.8;

    dataset_ = new Dataset(
        GenerateSessionDataset(config, {exp}, {m}, /*sessions_per_day=*/1.5));
    bsi_ = new ExperimentBsiData(BuildExperimentBsiData(*dataset_, true));
  }

  static void TearDownTestSuite() {
    delete bsi_;
    delete dataset_;
  }

  static Dataset* dataset_;
  static ExperimentBsiData* bsi_;
};

Dataset* SessionDatasetTest::dataset_ = nullptr;
ExperimentBsiData* SessionDatasetTest::bsi_ = nullptr;

TEST_F(SessionDatasetTest, AnalysisUnitIsSessionRandomizationIsUser) {
  EXPECT_FALSE(dataset_->config.bucket_equals_segment);
  size_t expose_rows = 0;
  std::set<UnitId> sessions;
  std::set<UnitId> users;
  for (const SegmentData& seg : dataset_->segments) {
    for (const ExposeRow& row : seg.expose) {
      // Session ids are distinct from user ids and never repeat.
      EXPECT_TRUE(sessions.insert(row.analysis_unit_id).second);
      users.insert(row.randomization_unit_id);
      // The session lives in the segment of its own (analysis) id.
      EXPECT_EQ(SegmentOf(row.analysis_unit_id, 4),
                &seg - dataset_->segments.data());
      ++expose_rows;
    }
  }
  EXPECT_GT(expose_rows, 1000u);
  // Many sessions per user.
  EXPECT_GT(sessions.size(), users.size());
}

TEST_F(SessionDatasetTest, SessionsOfAUserShareTheBucket) {
  // Bucket assignment comes from the randomization unit (user), so all of a
  // user's sessions land in the same statistical bucket even though they
  // scatter across segments.
  std::map<UnitId, std::set<int>> buckets_of_user;
  for (const SegmentData& seg : dataset_->segments) {
    for (const ExposeRow& row : seg.expose) {
      buckets_of_user[row.randomization_unit_id].insert(
          BucketOf(row.randomization_unit_id, 64));
    }
  }
  for (const auto& [user, buckets] : buckets_of_user) {
    EXPECT_EQ(buckets.size(), 1u);
  }
}

TEST_F(SessionDatasetTest, BucketedScorecardMatchesBruteForce) {
  const Date lo = 0, hi = 4;
  BucketValues expect;
  expect.sums.assign(64, 0.0);
  expect.counts.assign(64, 0.0);
  for (const SegmentData& seg : dataset_->segments) {
    std::map<UnitId, std::pair<Date, int>> exposed;  // session -> (date, bucket)
    for (const ExposeRow& row : seg.expose) {
      if (row.strategy_id != 32) continue;
      exposed[row.analysis_unit_id] = {row.first_expose_date,
                                       BucketOf(row.randomization_unit_id,
                                                64)};
    }
    for (const auto& [sid, info] : exposed) {
      if (info.first <= hi) expect.counts[info.second] += 1.0;
    }
    for (const MetricRow& row : seg.metrics) {
      if (row.metric_id != 777 || row.date < lo || row.date > hi) continue;
      auto it = exposed.find(row.analysis_unit_id);
      if (it != exposed.end() && it->second.first <= row.date) {
        expect.sums[it->second.second] += static_cast<double>(row.value);
      }
    }
  }
  const BucketValues got = ComputeStrategyMetricBsi(*bsi_, 32, 777, lo, hi);
  EXPECT_EQ(got.sums, expect.sums);
  EXPECT_EQ(got.counts, expect.counts);
}

TEST_F(SessionDatasetTest, PerSessionEffectIsDetected) {
  const std::vector<ScorecardEntry> entries =
      ComputeScorecard(*bsi_, 31, {32}, {777}, 0, 4);
  ASSERT_EQ(entries.size(), 1u);
  // forwarding-count-per-session: treatment should be up.
  EXPECT_GT(entries[0].ttest.mean_diff, 0.0);
  EXPECT_LT(entries[0].ttest.p_value, 0.05);
  // Degrees of freedom come from the user-level buckets, not sessions.
  EXPECT_EQ(entries[0].treatment.df, 63.0);
}

TEST_F(SessionDatasetTest, DeterministicAcrossRuns) {
  DatasetConfig config = dataset_->config;
  ExperimentConfig exp;
  exp.strategy_ids = {31, 32};
  exp.arm_effects = {1.0, 1.25};
  exp.traffic_salt = 19;
  MetricConfig m;
  m.metric_id = 777;
  m.value_range = 30;
  m.daily_participation = 0.8;
  Dataset again = GenerateSessionDataset(config, {exp}, {m}, 1.5);
  for (int seg = 0; seg < 4; ++seg) {
    ASSERT_EQ(again.segments[seg].metrics.size(),
              dataset_->segments[seg].metrics.size());
    ASSERT_EQ(again.segments[seg].expose.size(),
              dataset_->segments[seg].expose.size());
  }
}

}  // namespace
}  // namespace expbsi
