#include "bsi/bsi_aggregate.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace expbsi {
namespace {

using testing_util::RandomValueMap;
using testing_util::ToPairVector;

using ValueMap = std::map<uint32_t, uint64_t>;

ValueMap ToMap(const Bsi& bsi) {
  ValueMap out;
  for (const auto& [pos, value] : bsi.ToPairs()) out[pos] = value;
  return out;
}

// --- In-BSI aggregates ------------------------------------------------------

class BsiInAggregateTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    values_ = RandomValueMap(rng, 3000, 30000, 1u << 14);
    bsi_ = Bsi::FromPairs(ToPairVector(values_));
  }

  ValueMap values_;
  Bsi bsi_;
};

TEST_P(BsiInAggregateTest, SumAverageMinMax) {
  uint64_t expect_sum = 0;
  uint64_t expect_min = ~uint64_t{0};
  uint64_t expect_max = 0;
  for (const auto& [pos, v] : values_) {
    (void)pos;
    expect_sum += v;
    expect_min = std::min(expect_min, v);
    expect_max = std::max(expect_max, v);
  }
  EXPECT_EQ(bsi_.Sum(), expect_sum);
  EXPECT_DOUBLE_EQ(bsi_.Average(),
                   static_cast<double>(expect_sum) / values_.size());
  EXPECT_EQ(bsi_.MinValue(), expect_min);
  EXPECT_EQ(bsi_.MaxValue(), expect_max);
}

TEST_P(BsiInAggregateTest, SumUnderMask) {
  Rng rng(GetParam() + 100);
  RoaringBitmap mask;
  uint64_t expect = 0;
  for (const auto& [pos, v] : values_) {
    if (rng.NextBernoulli(0.4)) {
      mask.Add(pos);
      expect += v;
    }
  }
  // Positions in the mask but absent from the BSI contribute nothing.
  mask.Add(4000000);
  EXPECT_EQ(bsi_.SumUnderMask(mask), expect);
}

TEST_P(BsiInAggregateTest, QuantilesMatchSortedOrder) {
  std::vector<uint64_t> sorted;
  sorted.reserve(values_.size());
  for (const auto& [pos, v] : values_) {
    (void)pos;
    sorted.push_back(v);
  }
  std::sort(sorted.begin(), sorted.end());
  const uint64_t n = sorted.size();
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    uint64_t rank = static_cast<uint64_t>(
        std::max(1.0, std::ceil(q * static_cast<double>(n))));
    if (rank > n) rank = n;
    EXPECT_EQ(bsi_.Quantile(q), sorted[rank - 1]) << "q=" << q;
  }
  EXPECT_EQ(bsi_.Quantile(0.0), sorted.front());
}

TEST_P(BsiInAggregateTest, TopK) {
  for (uint64_t k : {1u, 10u, 500u}) {
    RoaringBitmap top = TopK(bsi_, k);
    ASSERT_EQ(top.Cardinality(), std::min<uint64_t>(k, values_.size()));
    // Every selected value must be >= every unselected value.
    uint64_t min_selected = ~uint64_t{0};
    top.ForEach([this, &min_selected](uint32_t pos) {
      min_selected = std::min(min_selected, values_.at(pos));
    });
    for (const auto& [pos, v] : values_) {
      if (!top.Contains(pos)) {
        EXPECT_LE(v, min_selected);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BsiInAggregateTest,
                         ::testing::Values(51, 52, 53));

TEST(BsiInAggregateEdge, TopKDegenerate) {
  Bsi bsi = Bsi::FromValues({5, 5, 5, 5});
  EXPECT_EQ(TopK(bsi, 0).Cardinality(), 0u);
  EXPECT_EQ(TopK(bsi, 2).Cardinality(), 2u);   // ties broken deterministically
  EXPECT_EQ(TopK(bsi, 100).Cardinality(), 4u);
  EXPECT_TRUE(TopK(Bsi(), 3).IsEmpty());
}

// --- Aggregates over BSIs (sumBSI / maxBSI / mulBSI / distinctPos) ----------

class BsiOverAggregateTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    map_x_ = RandomValueMap(rng, 2000, 20000, 1000);
    map_y_ = RandomValueMap(rng, 2000, 20000, 1000);
    x_ = Bsi::FromPairs(ToPairVector(map_x_));
    y_ = Bsi::FromPairs(ToPairVector(map_y_));
  }

  ValueMap map_x_, map_y_;
  Bsi x_, y_;
};

TEST_P(BsiOverAggregateTest, MaxBsi) {
  ValueMap expect;
  for (const auto& [pos, v] : map_x_) expect[pos] = v;
  for (const auto& [pos, v] : map_y_) {
    auto [it, inserted] = expect.try_emplace(pos, v);
    if (!inserted) it->second = std::max(it->second, v);
  }
  EXPECT_EQ(ToMap(MaxBsi(x_, y_)), expect);
}

TEST_P(BsiOverAggregateTest, MinBsi) {
  // Min with an absent (zero) operand is zero, i.e. absent.
  ValueMap expect;
  for (const auto& [pos, v] : map_x_) {
    auto it = map_y_.find(pos);
    if (it != map_y_.end()) expect[pos] = std::min(v, it->second);
  }
  EXPECT_EQ(ToMap(MinBsi(x_, y_)), expect);
}

TEST_P(BsiOverAggregateTest, DistinctPos) {
  std::set<uint32_t> expect;
  for (const auto& [pos, v] : map_x_) {
    (void)v;
    expect.insert(pos);
  }
  for (const auto& [pos, v] : map_y_) {
    (void)v;
    expect.insert(pos);
  }
  RoaringBitmap distinct = DistinctPos(x_, y_);
  EXPECT_EQ(distinct.Cardinality(), expect.size());
  for (uint32_t pos : expect) EXPECT_TRUE(distinct.Contains(pos));
}

TEST_P(BsiOverAggregateTest, SumBsiList) {
  Rng rng(GetParam() + 7);
  ValueMap map_z = RandomValueMap(rng, 2000, 20000, 1000);
  Bsi z = Bsi::FromPairs(ToPairVector(map_z));
  ValueMap expect;
  for (const ValueMap* m : {&map_x_, &map_y_, &map_z}) {
    for (const auto& [pos, v] : *m) expect[pos] += v;
  }
  EXPECT_EQ(ToMap(SumBsi({&x_, &y_, &z})), expect);
}

TEST_P(BsiOverAggregateTest, MaxBsiMatchesPaperFormulaOnIntersection) {
  // On both-present positions, maxBSI must equal the paper's
  // X * (X > Y) + Y * (X <= Y).
  RoaringBitmap gt = Bsi::Gt(x_, y_);
  RoaringBitmap le = Bsi::Le(x_, y_);
  Bsi formula = Bsi::Add(Bsi::MultiplyByBinary(x_, gt),
                         Bsi::MultiplyByBinary(y_, le));
  Bsi ours = MaxBsi(x_, y_);
  RoaringBitmap both = RoaringBitmap::And(x_.existence(), y_.existence());
  EXPECT_TRUE(Bsi::MultiplyByBinary(ours, both).Equals(formula));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BsiOverAggregateTest,
                         ::testing::Values(61, 62, 63));

}  // namespace
}  // namespace expbsi

namespace expbsi {
namespace {

using testing_util::RandomValueMap;
using testing_util::ToPairVector;

TEST(MultiplyScalarTest, MatchesNaive) {
  Rng rng(71);
  auto values = RandomValueMap(rng, 2000, 20000, 1000);
  Bsi x = Bsi::FromPairs(ToPairVector(values));
  for (uint64_t k : {0ull, 1ull, 2ull, 3ull, 7ull, 100ull, 255ull}) {
    Bsi product = Bsi::MultiplyScalar(x, k);
    if (k == 0) {
      EXPECT_TRUE(product.IsEmpty());
      continue;
    }
    for (const auto& [pos, v] : values) {
      EXPECT_EQ(product.Get(pos), v * k) << "k=" << k << " pos=" << pos;
    }
    EXPECT_EQ(product.Cardinality(), x.Cardinality());
  }
}

TEST(WeightedSumBsiTest, PreferenceQueryScore) {
  // A preference query: score = 3*price_rank + 1*quality_rank, then top-k.
  Rng rng(72);
  auto a_map = RandomValueMap(rng, 1500, 10000, 100);
  auto b_map = RandomValueMap(rng, 1500, 10000, 100);
  Bsi a = Bsi::FromPairs(ToPairVector(a_map));
  Bsi b = Bsi::FromPairs(ToPairVector(b_map));
  Bsi score = WeightedSumBsi({{&a, 3}, {&b, 1}});
  std::map<uint32_t, uint64_t> expect;
  for (const auto& [pos, v] : a_map) expect[pos] += 3 * v;
  for (const auto& [pos, v] : b_map) expect[pos] += v;
  for (const auto& [pos, v] : expect) {
    EXPECT_EQ(score.Get(pos), v);
  }
  EXPECT_EQ(score.Cardinality(), expect.size());
  // Top-k of the score agrees with a naive sort.
  const RoaringBitmap top = TopK(score, 10);
  std::vector<uint64_t> sorted;
  for (const auto& [pos, v] : expect) sorted.push_back(v);
  std::sort(sorted.rbegin(), sorted.rend());
  uint64_t min_selected = ~uint64_t{0};
  top.ForEach([&](uint32_t pos) {
    min_selected = std::min(min_selected, expect[pos]);
  });
  EXPECT_EQ(min_selected, sorted[9]);
}

}  // namespace
}  // namespace expbsi
