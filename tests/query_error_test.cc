// Error-path coverage for RunQuery / ExecuteQuery: every validation rule in
// query/executor.cc and the parser's failure modes, asserting the exact
// error messages (the differential oracle relies on these strings staying
// in sync with src/reference/ref_query.cc, so they are pinned here).

#include <string>

#include <gtest/gtest.h>

#include "engine/experiment_data.h"
#include "expdata/generator.h"
#include "query/executor.h"
#include "reference/ref_data.h"
#include "reference/ref_query.h"

namespace expbsi {
namespace {

DatasetConfig SmallConfig(bool bucket_equals_segment) {
  DatasetConfig config;
  config.num_users = 50;
  config.num_segments = 2;
  config.bucket_equals_segment = bucket_equals_segment;
  config.num_buckets = 8;
  config.num_days = 3;
  config.seed = 7;
  return config;
}

Dataset SmallDataset(bool bucket_equals_segment) {
  ExperimentConfig experiment;
  experiment.strategy_ids = {100, 101};
  experiment.arm_effects = {1.0, 1.1};
  MetricConfig metric;
  metric.metric_id = 5;
  metric.value_range = 20;
  return GenerateDataset(SmallConfig(bucket_equals_segment), {experiment},
                         {metric}, {});
}

class QueryErrorTest : public ::testing::Test {
 protected:
  QueryErrorTest()
      : dataset_(SmallDataset(/*bucket_equals_segment=*/true)),
        bsi_(BuildExperimentBsiData(dataset_, true)),
        ref_(BuildRefExperimentData(dataset_)) {}

  // Asserts that both engines reject `text` with exactly `message`.
  void ExpectError(const std::string& text, const std::string& message) {
    const Result<QueryResult> got = RunQuery(bsi_, text);
    ASSERT_FALSE(got.ok()) << text;
    EXPECT_EQ(got.status().message(), message) << text;
    const Result<QueryResult> ref_got = RefRunQuery(ref_, text);
    ASSERT_FALSE(ref_got.ok()) << text;
    EXPECT_EQ(ref_got.status().message(), message) << text;
  }

  Dataset dataset_;
  ExperimentBsiData bsi_;
  RefExperimentData ref_;
};

TEST_F(QueryErrorTest, OffsetPredicateRequiresExposeSource) {
  ExpectError(
      "SELECT sum(value) FROM metric(5, date = 0) WHERE offset >= 1",
      "offset predicates require an expose(...) source");
}

TEST_F(QueryErrorTest, GroupByBucketRejectsNonDecomposableAggregates) {
  ExpectError(
      "SELECT median(value) FROM metric(5, date = 0) GROUP BY BUCKET",
      "GROUP BY BUCKET supports sum/count/avg only");
  ExpectError(
      "SELECT uv(value) FROM metric(5, date = 0, to = 2) GROUP BY BUCKET",
      "GROUP BY BUCKET supports sum/count/avg only");
  ExpectError(
      "SELECT min(value) FROM metric(5, date = 1) GROUP BY BUCKET",
      "GROUP BY BUCKET supports sum/count/avg only");
}

TEST_F(QueryErrorTest, GroupByBucketNeedsExposedPredicateWhenBucketed) {
  // With bucket != segment the bucket ids live in the expose log, so the
  // grouped query must name exactly one strategy.
  const Dataset dataset = SmallDataset(/*bucket_equals_segment=*/false);
  const ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);
  const RefExperimentData ref = BuildRefExperimentData(dataset);
  const std::string message =
      "GROUP BY BUCKET with bucket != segment requires exactly one "
      "exposed(...) predicate (the bucket ids live in that strategy's "
      "expose log)";
  for (const std::string text :
       {"SELECT sum(value) FROM metric(5, date = 0) GROUP BY BUCKET",
        "SELECT sum(value) FROM metric(5, date = 0) "
        "WHERE exposed(100) AND exposed(101) GROUP BY BUCKET"}) {
    const Result<QueryResult> got = RunQuery(bsi, text);
    ASSERT_FALSE(got.ok()) << text;
    EXPECT_EQ(got.status().message(), message) << text;
    const Result<QueryResult> ref_got = RefRunQuery(ref, text);
    ASSERT_FALSE(ref_got.ok()) << text;
    EXPECT_EQ(ref_got.status().message(), message) << text;
  }
  // One exposed(...) predicate makes the same query valid.
  const std::string valid =
      "SELECT sum(value) FROM metric(5, date = 0) WHERE exposed(100) "
      "GROUP BY BUCKET";
  EXPECT_TRUE(RunQuery(bsi, valid).ok());
  EXPECT_TRUE(RefRunQuery(ref, valid).ok());
}

TEST_F(QueryErrorTest, ParseErrorsSurfaceWithOffsets) {
  // The parser is shared between both executors; a few representative
  // failures, each pinned to its message.
  const Result<QueryResult> missing_from = RunQuery(bsi_, "SELECT sum(value)");
  ASSERT_FALSE(missing_from.ok());
  EXPECT_NE(missing_from.status().message().find("expected 'from'"),
            std::string::npos)
      << missing_from.status().message();

  const Result<QueryResult> garbage = RunQuery(bsi_, "SELEC sum(value)");
  ASSERT_FALSE(garbage.ok());

  const Result<QueryResult> trailing =
      RunQuery(bsi_, "SELECT count(*) FROM expose(100) garbage");
  ASSERT_FALSE(trailing.ok());

  // Error parity with the reference runner on parse failures is automatic
  // (same parser), but assert it once to pin the plumbing.
  const Result<QueryResult> ref_err = RefRunQuery(ref_, "SELEC sum(value)");
  ASSERT_FALSE(ref_err.ok());
  EXPECT_EQ(ref_err.status().message(), garbage.status().message());
}

TEST_F(QueryErrorTest, MissingDataIsNotAnError) {
  // Unknown metric / strategy ids are data absence, not query errors: the
  // segments contribute nothing and the aggregates come back zero.
  for (const std::string text :
       {"SELECT sum(value), count(*) FROM metric(99999, date = 0)",
        "SELECT count(*) FROM expose(424242)",
        "SELECT sum(value) FROM metric(5, date = 0) WHERE exposed(424242)"}) {
    const Result<QueryResult> got = RunQuery(bsi_, text);
    ASSERT_TRUE(got.ok()) << text;
    for (const double v : got.value().row) EXPECT_EQ(v, 0.0) << text;
    const Result<QueryResult> ref_got = RefRunQuery(ref_, text);
    ASSERT_TRUE(ref_got.ok()) << text;
    EXPECT_EQ(got.value().row, ref_got.value().row) << text;
  }
}

}  // namespace
}  // namespace expbsi
