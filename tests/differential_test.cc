// Differential-oracle fuzzing: every optimized path (BSI columns, the
// scorecard / deep-dive / pre-experiment engines, the EQL executor) is run
// against the deliberately-naive scalar reference in src/reference/ on
// hundreds of randomized workloads. Integer aggregates and engine bucket
// values must match BIT FOR BIT (both sides fold the same integer partials
// into doubles in the same order); the statistical layer is compared to a
// small relative tolerance because the reference t-CDF is computed by
// numerical integration instead of the production continued fraction.
//
// Reproducing a failure: every assertion message carries the iteration seed.
// Re-run just that seed with
//
//   EXPBSI_DIFF_SEED=<seed> ./build/tests/expbsi_tests
//       --gtest_filter='DifferentialTest.*'   (one command, line-wrapped)
//
// The deterministic corpus in tests/corpus/seeds.txt is replayed BEFORE the
// random exploration, so known-nasty container transitions are always
// covered even if the exploration schedule changes.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bsi/bsi.h"
#include "bsi/bsi_aggregate.h"
#include "common/cpu_features.h"
#include "engine/deepdive.h"
#include "engine/experiment_data.h"
#include "engine/preexperiment.h"
#include "engine/scorecard.h"
#include "query/executor.h"
#include "reference/ref_column.h"
#include "reference/ref_data.h"
#include "reference/ref_engine.h"
#include "reference/ref_query.h"
#include "reference/ref_stats.h"
#include "tests/property_gen.h"

namespace expbsi {
namespace {

using propgen::ColumnShape;
using propgen::FuzzDataset;

// ---------------------------------------------------------------------------
// Seed schedules.
// ---------------------------------------------------------------------------

// splitmix64: decorrelates consecutive exploration seeds.
uint64_t Splitmix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// tests/corpus/seeds.txt: one seed per line, '#' comments. The build passes
// the directory via EXPBSI_CORPUS_DIR.
std::vector<uint64_t> CorpusSeeds() {
  std::vector<uint64_t> seeds;
#ifdef EXPBSI_CORPUS_DIR
  std::ifstream in(std::string(EXPBSI_CORPUS_DIR) + "/seeds.txt");
  EXPECT_TRUE(in.good()) << "missing corpus file " << EXPBSI_CORPUS_DIR
                         << "/seeds.txt";
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    uint64_t seed;
    if (ls >> seed) seeds.push_back(seed);
  }
  EXPECT_GE(seeds.size(), 5u) << "corpus unexpectedly small";
#endif
  return seeds;
}

// Corpus seeds first (deterministic regressions), then `explore` random
// seeds derived from `base`. EXPBSI_DIFF_SEED overrides everything with a
// single seed for one-command repro.
std::vector<uint64_t> SeedSchedule(uint64_t base, int explore) {
  if (const char* env = std::getenv("EXPBSI_DIFF_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(env, nullptr, 0))};
  }
  std::vector<uint64_t> seeds = CorpusSeeds();
  uint64_t x = base;
  for (int i = 0; i < explore; ++i) {
    x = Splitmix(x);
    seeds.push_back(x);
  }
  return seeds;
}

std::string Ctx(uint64_t seed, const std::string& what) {
  return what + " (reproduce: EXPBSI_DIFF_SEED=" + std::to_string(seed) +
         " ./build/tests/expbsi_tests"
         " --gtest_filter='DifferentialTest.*')";
}

// ---------------------------------------------------------------------------
// Comparison helpers.
// ---------------------------------------------------------------------------

void ExpectPositionsEqual(const RoaringBitmap& got, const RefPositions& want,
                          const std::string& ctx) {
  EXPECT_EQ(got.ToVector(), want) << ctx;
}

void ExpectColumnsEqual(const Bsi& got, const RefColumn& want,
                        const std::string& ctx) {
  const std::vector<std::pair<uint32_t, uint64_t>> got_pairs = got.ToPairs();
  const std::vector<std::pair<uint32_t, uint64_t>> want_pairs(
      want.values().begin(), want.values().end());
  EXPECT_EQ(got_pairs, want_pairs) << ctx;
}

// Floating-point agreement for the stats layer: same formulas, possibly
// different association order / CDF evaluation method.
void ExpectClose(double got, double want, const std::string& ctx,
                 double rel = 5e-8) {
  if (std::isnan(got) || std::isnan(want)) {
    EXPECT_TRUE(std::isnan(got) && std::isnan(want)) << ctx;
    return;
  }
  const double tol =
      rel * std::max(1.0, std::max(std::fabs(got), std::fabs(want)));
  EXPECT_NEAR(got, want, tol) << ctx;
}

// Engine bucket values must match exactly: both engines fold the same
// uint64 partials into doubles in the same order.
void ExpectBucketsBitEqual(const BucketValues& got, const BucketValues& want,
                           const std::string& ctx) {
  EXPECT_EQ(got.sums, want.sums) << ctx;
  EXPECT_EQ(got.counts, want.counts) << ctx;
}

void ExpectEstimatesClose(const MetricEstimate& got,
                          const MetricEstimate& want,
                          const std::string& ctx) {
  ExpectClose(got.mean, want.mean, ctx + " mean");
  ExpectClose(got.var_of_mean, want.var_of_mean, ctx + " var_of_mean");
  EXPECT_EQ(got.df, want.df) << ctx;
  ExpectClose(got.total_sum, want.total_sum, ctx + " total_sum");
  ExpectClose(got.total_count, want.total_count, ctx + " total_count");
}

void ExpectTTestsClose(const TTestResult& got, const TTestResult& want,
                       const std::string& ctx) {
  ExpectClose(got.mean_diff, want.mean_diff, ctx + " mean_diff");
  ExpectClose(got.relative_diff, want.relative_diff, ctx + " relative_diff");
  ExpectClose(got.std_error, want.std_error, ctx + " std_error");
  ExpectClose(got.t_stat, want.t_stat, ctx + " t_stat");
  ExpectClose(got.df, want.df, ctx + " df");
  ExpectClose(got.p_value, want.p_value, ctx + " p_value");
}

void ExpectEntriesClose(const ScorecardEntry& got, const ScorecardEntry& want,
                        const std::string& ctx) {
  EXPECT_EQ(got.metric_id, want.metric_id) << ctx;
  EXPECT_EQ(got.treatment_id, want.treatment_id) << ctx;
  EXPECT_EQ(got.control_id, want.control_id) << ctx;
  ExpectEstimatesClose(got.treatment, want.treatment, ctx + " treatment");
  ExpectEstimatesClose(got.control, want.control, ctx + " control");
  ExpectTTestsClose(got.ttest, want.ttest, ctx + " ttest");
}

// ---------------------------------------------------------------------------
// Raw column operations: Bsi vs RefColumn.
// ---------------------------------------------------------------------------

constexpr uint32_t kUniverse = 1 << 20;

std::pair<Bsi, RefColumn> BuildBoth(
    const std::vector<std::pair<uint32_t, uint64_t>>& pairs) {
  return {Bsi::FromPairs(pairs), RefColumn::FromPairs(pairs)};
}

void RunColumnOpsIteration(uint64_t seed) {
  Rng rng(seed);
  const ColumnShape shape_x = propgen::RandomShape(rng);
  const ColumnShape shape_y = propgen::RandomShape(rng);

  // Wide-value columns: aggregates + comparisons + ranges. Values of the
  // multi-position shapes are capped so Sum stays far below 2^64.
  const auto pairs_x =
      propgen::GenColumnPairs(rng, shape_x, kUniverse, uint64_t{1} << 20);
  const auto pairs_y =
      propgen::GenColumnPairs(rng, shape_y, kUniverse, uint64_t{1} << 20);
  const auto [x, rx] = BuildBoth(pairs_x);
  const auto [y, ry] = BuildBoth(pairs_y);
  const std::string ctx = Ctx(seed, "column ops");

  ExpectColumnsEqual(x, rx, ctx + " roundtrip x");
  ExpectPositionsEqual(x.existence(), rx.Existence(), ctx + " existence");
  EXPECT_EQ(x.Cardinality(), rx.Cardinality()) << ctx;

  // Point lookups on present and absent positions.
  for (int i = 0; i < 16; ++i) {
    const uint32_t pos = static_cast<uint32_t>(rng.NextBounded(kUniverse));
    EXPECT_EQ(x.Get(pos), rx.Get(pos)) << ctx << " pos=" << pos;
    EXPECT_EQ(x.Exists(pos), rx.Exists(pos)) << ctx << " pos=" << pos;
  }

  // Comparisons (both-present convention).
  ExpectPositionsEqual(Bsi::Lt(x, y), RefColumn::Lt(rx, ry), ctx + " Lt");
  ExpectPositionsEqual(Bsi::Eq(x, y), RefColumn::Eq(rx, ry), ctx + " Eq");
  ExpectPositionsEqual(Bsi::Ne(x, y), RefColumn::Ne(rx, ry), ctx + " Ne");
  ExpectPositionsEqual(Bsi::Le(x, y), RefColumn::Le(rx, ry), ctx + " Le");
  ExpectPositionsEqual(Bsi::Gt(x, y), RefColumn::Gt(rx, ry), ctx + " Gt");
  ExpectPositionsEqual(Bsi::Ge(x, y), RefColumn::Ge(rx, ry), ctx + " Ge");

  // Range searches, with constants spanning below / inside / above the
  // value range (0 and UINT64_MAX are the degenerate bounds).
  const uint64_t ks[] = {0, 1, 2, 1 + rng.NextBounded(uint64_t{1} << 20),
                         (uint64_t{1} << 62), ~uint64_t{0}};
  for (const uint64_t k : ks) {
    const std::string kctx = ctx + " k=" + std::to_string(k);
    ExpectPositionsEqual(x.RangeEq(k), rx.RangeEq(k), kctx + " RangeEq");
    ExpectPositionsEqual(x.RangeNe(k), rx.RangeNe(k), kctx + " RangeNe");
    ExpectPositionsEqual(x.RangeLt(k), rx.RangeLt(k), kctx + " RangeLt");
    ExpectPositionsEqual(x.RangeLe(k), rx.RangeLe(k), kctx + " RangeLe");
    ExpectPositionsEqual(x.RangeGt(k), rx.RangeGt(k), kctx + " RangeGt");
    ExpectPositionsEqual(x.RangeGe(k), rx.RangeGe(k), kctx + " RangeGe");
  }
  const uint64_t lo = rng.NextBounded(uint64_t{1} << 21);
  const uint64_t hi = lo + rng.NextBounded(uint64_t{1} << 21);
  ExpectPositionsEqual(x.RangeBetween(lo, hi), rx.RangeBetween(lo, hi),
                       ctx + " RangeBetween");

  // In-column aggregates. Min/Max/Quantile CHECK-fail on empty input in
  // both implementations, so they are only compared on non-empty columns
  // (the empty-input aborts are covered by bsi_edge_test.cc).
  EXPECT_EQ(x.Sum(), rx.Sum()) << ctx << " Sum";
  EXPECT_EQ(x.Average(), rx.Average()) << ctx << " Average";
  const RefPositions mask_positions = propgen::GenMask(rng, kUniverse);
  const RoaringBitmap mask = RoaringBitmap::FromSorted(mask_positions);
  EXPECT_EQ(x.SumUnderMask(mask), rx.SumUnderMask(mask_positions))
      << ctx << " SumUnderMask";
  if (!rx.IsEmpty()) {
    EXPECT_EQ(x.MinValue(), rx.MinValue()) << ctx << " MinValue";
    EXPECT_EQ(x.MaxValue(), rx.MaxValue()) << ctx << " MaxValue";
    for (const double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.999, 1.0}) {
      EXPECT_EQ(x.Quantile(q), rx.Quantile(q)) << ctx << " q=" << q;
    }
  }

  // Quantile over several masked inputs (cross-segment merge), guarded the
  // same way as the production CHECK on an empty combined candidate set.
  {
    const RefPositions my = ry.Existence();
    uint64_t candidates = RoaringBitmap::And(x.existence(), mask).Cardinality();
    candidates += y.Cardinality();
    if (candidates > 0) {
      const std::vector<MaskedBsi> inputs = {{&x, &mask}, {&y, nullptr}};
      const std::vector<RefMaskedColumn> ref_inputs = {
          {&rx, &mask_positions}, {&ry, nullptr}};
      for (const double q : {0.1, 0.5, 0.95}) {
        EXPECT_EQ(QuantileOverInputs(inputs, q),
                  RefQuantileOverInputs(ref_inputs, q))
            << ctx << " QuantileOverInputs q=" << q;
      }
    }
    (void)my;
  }

  // Arithmetic on small-value columns: caps keep every intermediate far
  // below 64 bits (Bsi::Multiply is exact in slices while the scalar oracle
  // multiplies in uint64, so unbounded operands would diverge by design).
  const auto small_x = propgen::GenColumnPairs(
      rng, propgen::RandomArithmeticShape(rng), kUniverse, uint64_t{1} << 16);
  const auto small_y = propgen::GenColumnPairs(
      rng, propgen::RandomArithmeticShape(rng), kUniverse, uint64_t{1} << 16);
  const auto [sx, rsx] = BuildBoth(small_x);
  const auto [sy, rsy] = BuildBoth(small_y);
  ExpectColumnsEqual(Bsi::Add(sx, sy), RefColumn::Add(rsx, rsy),
                     ctx + " Add");
  ExpectColumnsEqual(Bsi::Subtract(sx, sy), RefColumn::Subtract(rsx, rsy),
                     ctx + " Subtract");
  ExpectColumnsEqual(Bsi::Multiply(sx, sy), RefColumn::Multiply(rsx, rsy),
                     ctx + " Multiply");
  ExpectColumnsEqual(Bsi::MultiplyByBinary(sx, mask),
                     RefColumn::MultiplyByBinary(rsx, mask_positions),
                     ctx + " MultiplyByBinary");
  const uint64_t scalar = rng.NextBounded(uint64_t{1} << 16);
  ExpectColumnsEqual(Bsi::AddScalar(sx, scalar),
                     RefColumn::AddScalar(rsx, scalar), ctx + " AddScalar");
  ExpectColumnsEqual(Bsi::MultiplyScalar(sx, scalar),
                     RefColumn::MultiplyScalar(rsx, scalar),
                     ctx + " MultiplyScalar");
  const int bits = static_cast<int>(rng.NextBounded(9));
  ExpectColumnsEqual(Bsi::ShiftLeft(sx, bits),
                     RefColumn::ShiftLeft(rsx, bits), ctx + " ShiftLeft");

  // List aggregates.
  ExpectColumnsEqual(MaxBsi(sx, sy),
                     [&] {
                       RefColumn out;
                       for (const auto& [pos, v] : rsx.values()) {
                         out.SetValue(pos, v);
                       }
                       for (const auto& [pos, v] : rsy.values()) {
                         out.SetValue(pos, std::max(out.Get(pos), v));
                       }
                       return out;
                     }(),
                     ctx + " MaxBsi");
  ExpectPositionsEqual(DistinctPos(sx, sy),
                       [&] {
                         RefPositions out;
                         for (const auto& [pos, v] : rsx.values()) {
                           out.push_back(pos);
                         }
                         RefPositions other = rsy.Existence();
                         RefPositions merged;
                         std::set_union(out.begin(), out.end(),
                                        other.begin(), other.end(),
                                        std::back_inserter(merged));
                         return merged;
                       }(),
                       ctx + " DistinctPos");

  // Multi-operand kernels: the CSA sum, the lazy union accumulator, and the
  // legacy pairwise folds must all agree with a scalar fold over N inputs.
  {
    const int n = 2 + static_cast<int>(rng.NextBounded(7));  // 2..8 operands
    std::vector<Bsi> cols;
    std::vector<RefColumn> ref_cols;
    cols.reserve(n);
    ref_cols.reserve(n);
    for (int i = 0; i < n; ++i) {
      const auto pairs = propgen::GenColumnPairs(
          rng, propgen::RandomArithmeticShape(rng), kUniverse,
          uint64_t{1} << 16);
      auto [b, r] = BuildBoth(pairs);
      cols.push_back(std::move(b));
      ref_cols.push_back(std::move(r));
    }
    std::vector<const Bsi*> inputs;
    for (const Bsi& b : cols) inputs.push_back(&b);

    RefColumn ref_sum;
    for (const RefColumn& r : ref_cols) ref_sum = RefColumn::Add(ref_sum, r);
    ExpectColumnsEqual(SumBsiCsa(inputs), ref_sum,
                       ctx + " SumBsiCsa n=" + std::to_string(n));
    ExpectColumnsEqual(SumBsiPairwise(inputs), ref_sum,
                       ctx + " SumBsiPairwise n=" + std::to_string(n));
    ExpectColumnsEqual(SumBsi(inputs), ref_sum,
                       ctx + " SumBsi dispatch n=" + std::to_string(n));

    // Weighted sum: weights up to 2^8 keep the total far below 64 bits.
    std::vector<WeightedBsi> weighted;
    RefColumn ref_weighted;
    for (int i = 0; i < n; ++i) {
      const uint64_t w = rng.NextBounded(1 + (uint64_t{1} << 8));  // 0 valid
      weighted.push_back({&cols[i], w});
      ref_weighted = RefColumn::Add(
          ref_weighted, RefColumn::MultiplyScalar(ref_cols[i], w));
    }
    ExpectColumnsEqual(WeightedSumBsiCsa(weighted), ref_weighted,
                       ctx + " WeightedSumBsiCsa");
    ExpectColumnsEqual(WeightedSumBsiPairwise(weighted), ref_weighted,
                       ctx + " WeightedSumBsiPairwise");

    RefPositions ref_union;
    for (const RefColumn& r : ref_cols) {
      const RefPositions e = r.Existence();
      RefPositions merged;
      std::set_union(ref_union.begin(), ref_union.end(), e.begin(), e.end(),
                     std::back_inserter(merged));
      ref_union = std::move(merged);
    }
    ExpectPositionsEqual(DistinctPosLazy(inputs), ref_union,
                         ctx + " DistinctPosLazy");
    ExpectPositionsEqual(DistinctPosPairwise(inputs), ref_union,
                         ctx + " DistinctPosPairwise");
  }

  // Galloping intersect: skewed array-array workloads where one side is far
  // smaller than the other (the kGallopRatio dispatch), checked against
  // std::set_intersection in both argument orders.
  {
    std::vector<uint32_t> small_vals, large_vals;
    propgen::GenSkewedArrays(rng, /*chunk_base=*/1u << 16, &small_vals,
                             &large_vals);
    const RoaringBitmap small_bm = RoaringBitmap::FromSorted(small_vals);
    const RoaringBitmap large_bm = RoaringBitmap::FromSorted(large_vals);
    RefPositions want;
    std::set_intersection(small_vals.begin(), small_vals.end(),
                          large_vals.begin(), large_vals.end(),
                          std::back_inserter(want));
    ExpectPositionsEqual(RoaringBitmap::And(small_bm, large_bm), want,
                         ctx + " gallop And(small, large)");
    ExpectPositionsEqual(RoaringBitmap::And(large_bm, small_bm), want,
                         ctx + " gallop And(large, small)");
    EXPECT_EQ(RoaringBitmap::AndCardinality(small_bm, large_bm), want.size())
        << ctx << " gallop AndCardinality";
    EXPECT_EQ(RoaringBitmap::Intersects(small_bm, large_bm), !want.empty())
        << ctx << " gallop Intersects";
    EXPECT_EQ(RoaringBitmap::Intersects(large_bm, small_bm), !want.empty())
        << ctx << " gallop Intersects swapped";
  }
}

TEST(DifferentialTest, ColumnOpsMatchScalarOracle) {
  for (const uint64_t seed : SeedSchedule(/*base=*/0xC015EED, 120)) {
    RunColumnOpsIteration(seed);
    if (HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Compare kernels: correlated workloads, swept over every (compare kernel,
// SIMD dispatch tier) combination the host supports.
// ---------------------------------------------------------------------------

// One correlated-pair iteration: all six comparisons, boundary-constant
// range scans, and RangeBetween over boundary bound pairs. Planted equal /
// off-by-one / high-slice relationships make the eq/lt accumulator updates
// (Algorithms 1-3) load-bearing instead of vacuously empty.
void RunCompareIteration(uint64_t seed, const std::string& label) {
  Rng rng(seed);
  std::vector<std::pair<uint32_t, uint64_t>> pairs_x, pairs_y;
  propgen::GenCorrelatedPairs(rng, kUniverse, uint64_t{1} << 20, &pairs_x,
                              &pairs_y);
  const auto [x, rx] = BuildBoth(pairs_x);
  const auto [y, ry] = BuildBoth(pairs_y);
  const std::string ctx = Ctx(seed, "compare[" + label + "]");

  ExpectPositionsEqual(Bsi::Lt(x, y), RefColumn::Lt(rx, ry), ctx + " Lt");
  ExpectPositionsEqual(Bsi::Eq(x, y), RefColumn::Eq(rx, ry), ctx + " Eq");
  ExpectPositionsEqual(Bsi::Ne(x, y), RefColumn::Ne(rx, ry), ctx + " Ne");
  ExpectPositionsEqual(Bsi::Le(x, y), RefColumn::Le(rx, ry), ctx + " Le");
  ExpectPositionsEqual(Bsi::Gt(x, y), RefColumn::Gt(rx, ry), ctx + " Gt");
  ExpectPositionsEqual(Bsi::Ge(x, y), RefColumn::Ge(rx, ry), ctx + " Ge");

  const std::vector<uint64_t> ks = propgen::GenBoundaryConstants(rng, pairs_x);
  for (const uint64_t k : ks) {
    const std::string kctx = ctx + " k=" + std::to_string(k);
    ExpectPositionsEqual(x.RangeEq(k), rx.RangeEq(k), kctx + " RangeEq");
    ExpectPositionsEqual(x.RangeNe(k), rx.RangeNe(k), kctx + " RangeNe");
    ExpectPositionsEqual(x.RangeLt(k), rx.RangeLt(k), kctx + " RangeLt");
    ExpectPositionsEqual(x.RangeLe(k), rx.RangeLe(k), kctx + " RangeLe");
    ExpectPositionsEqual(x.RangeGt(k), rx.RangeGt(k), kctx + " RangeGt");
    ExpectPositionsEqual(x.RangeGe(k), rx.RangeGe(k), kctx + " RangeGe");
  }
  for (size_t i = 0; i + 1 < ks.size(); i += 2) {
    const uint64_t lo = std::min(ks[i], ks[i + 1]);
    const uint64_t hi = std::max(ks[i], ks[i + 1]);
    ExpectPositionsEqual(x.RangeBetween(lo, hi), rx.RangeBetween(lo, hi),
                         ctx + " RangeBetween [" + std::to_string(lo) + "," +
                             std::to_string(hi) + "]");
  }
}

// Forces each dispatch tier the host supports (portable always runs; AVX2 /
// AVX-512 only where detected -- CI hosts without them skip those legs) and
// both compare kernels, so the word path, the legacy pairwise path, and
// every SIMD variant all face the same oracle.
TEST(DifferentialTest, CompareKernelsAcrossKernelAndSimdTiers) {
  const MultiOpKernel saved_kernel = GetMultiOpKernel();
  const SimdTier saved_tier = ActiveSimdTier();
  const int max_tier = static_cast<int>(DetectedSimdTier());
  for (int t = 0; t <= max_tier; ++t) {
    const SimdTier tier = static_cast<SimdTier>(t);
    SetSimdTierForTesting(tier);
    for (const MultiOpKernel kernel :
         {MultiOpKernel::kMultiOperand, MultiOpKernel::kPairwise}) {
      SetMultiOpKernel(kernel);
      const std::string label =
          std::string(SimdTierName(tier)) + "/" +
          (kernel == MultiOpKernel::kMultiOperand ? "word" : "pairwise");
      // Distinct bases per combination: each leg explores its own seeds on
      // top of the shared corpus replay.
      const uint64_t base = 0xC04Bull ^ (static_cast<uint64_t>(t) << 8) ^
                            static_cast<uint64_t>(kernel);
      for (const uint64_t seed : SeedSchedule(base, 12)) {
        RunCompareIteration(seed, label);
        if (HasFatalFailure()) {
          SetMultiOpKernel(saved_kernel);
          SetSimdTierForTesting(saved_tier);
          return;
        }
      }
    }
  }
  SetMultiOpKernel(saved_kernel);
  SetSimdTierForTesting(saved_tier);
}

// ---------------------------------------------------------------------------
// Engines: scorecard / deep-dive / pre-experiment vs the scalar reference.
// ---------------------------------------------------------------------------

void RunEngineIteration(uint64_t seed) {
  Rng rng(seed);
  const FuzzDataset fd = propgen::GenDataset(rng);
  const Dataset& dataset = fd.dataset;
  const ExperimentBsiData bsi =
      BuildExperimentBsiData(dataset, fd.engagement_ordered);
  const RefExperimentData ref = BuildRefExperimentData(dataset);
  const Date lo = dataset.config.start_date;
  const Date hi = lo + dataset.config.num_days - 1;
  const std::string ctx = Ctx(seed, "engines");

  const uint64_t control = propgen::kFuzzControlStrategy;
  const uint64_t treatment = propgen::kFuzzTreatmentStrategy;

  // Scorecard kernels: exact.
  for (const uint64_t strategy : {control, treatment}) {
    const std::string sctx = ctx + " strategy=" + std::to_string(strategy);
    const BucketValues got = ComputeStrategyMetricBsi(
        bsi, strategy, propgen::kFuzzMetricA, lo, hi);
    ExpectBucketsBitEqual(
        got,
        RefComputeStrategyMetric(ref, strategy, propgen::kFuzzMetricA, lo,
                                 hi),
        sctx + " metric");
    const ExposeMaskCache cache =
        ExposeMaskCache::Build(bsi, strategy, lo, hi);
    ExpectBucketsBitEqual(ComputeStrategyMetricBsiCached(
                              bsi, cache, propgen::kFuzzMetricA, lo, hi),
                          got, sctx + " cached");
    ExpectBucketsBitEqual(
        ComputeStrategyRatioMetricBsi(bsi, strategy, propgen::kFuzzMetricA,
                                      propgen::kFuzzMetricB, lo, hi),
        RefComputeStrategyRatioMetric(ref, strategy, propgen::kFuzzMetricA,
                                      propgen::kFuzzMetricB, lo, hi),
        sctx + " ratio");
    ExpectBucketsBitEqual(
        ComputeStrategyUniqueVisitorsBsi(bsi, strategy,
                                         propgen::kFuzzMetricA, lo, hi),
        RefComputeStrategyUniqueVisitors(ref, strategy,
                                         propgen::kFuzzMetricA, lo, hi),
        sctx + " uv");
  }

  // Deep dive: dimension-filtered kernels (exact) and breakdowns (stats to
  // tolerance). Session datasets carry no dimension logs; the filter then
  // rejects every unit, identically in both engines.
  {
    std::vector<DimensionPredicate> preds;
    preds.push_back({propgen::kFuzzDimension,
                     DimensionPredicate::Op::kLe,
                     1 + rng.NextBounded(4)});
    if (rng.NextBernoulli(0.5)) {
      preds.push_back({propgen::kFuzzDimension2,
                       DimensionPredicate::Op::kNe,
                       1 + rng.NextBounded(3)});
    }
    if (rng.NextBernoulli(0.5)) {
      // A lower bound on the same dimension as the kLe above: the deep-dive
      // engine fuses the pair into one RangeBetween scan (possibly an
      // inverted, empty interval), the oracle applies them one by one.
      preds.push_back({propgen::kFuzzDimension,
                       rng.NextBernoulli(0.5) ? DimensionPredicate::Op::kGe
                                              : DimensionPredicate::Op::kGt,
                       1 + rng.NextBounded(4)});
    }
    const Date dim_date = lo + static_cast<Date>(
                                   rng.NextBounded(dataset.config.num_days));
    ExpectBucketsBitEqual(
        ComputeStrategyMetricBsiFiltered(bsi, treatment,
                                         propgen::kFuzzMetricA, lo, hi,
                                         preds, dim_date),
        RefComputeStrategyMetricFiltered(ref, treatment,
                                         propgen::kFuzzMetricA, lo, hi,
                                         preds, dim_date),
        ctx + " filtered");

    const std::vector<uint64_t> dim_values = {1, 2, 3};
    const auto got_dim = ComputeDimensionBreakdown(
        bsi, control, treatment, propgen::kFuzzMetricA, lo, hi,
        propgen::kFuzzDimension, dim_values, dim_date);
    const auto want_dim = RefComputeDimensionBreakdown(
        ref, control, treatment, propgen::kFuzzMetricA, lo, hi,
        propgen::kFuzzDimension, dim_values, dim_date);
    ASSERT_EQ(got_dim.size(), want_dim.size()) << ctx;
    for (size_t i = 0; i < got_dim.size(); ++i) {
      EXPECT_EQ(got_dim[i].dimension_value, want_dim[i].dimension_value)
          << ctx;
      ExpectEntriesClose(got_dim[i].entry, want_dim[i].entry,
                         ctx + " dim breakdown " + std::to_string(i));
    }
  }
  {
    const auto got_daily = ComputeDailyBreakdown(
        bsi, control, treatment, propgen::kFuzzMetricA, lo, hi);
    const auto want_daily = RefComputeDailyBreakdown(
        ref, control, treatment, propgen::kFuzzMetricA, lo, hi);
    ASSERT_EQ(got_daily.size(), want_daily.size()) << ctx;
    for (size_t i = 0; i < got_daily.size(); ++i) {
      ExpectEntriesClose(got_daily[i], want_daily[i],
                         ctx + " daily " + std::to_string(i));
    }
  }

  // Full scorecard (stats to tolerance).
  {
    const std::vector<uint64_t> metric_ids = {propgen::kFuzzMetricA,
                                              propgen::kFuzzMetricB};
    const auto got = ComputeScorecard(bsi, control, {treatment}, metric_ids,
                                      lo, hi);
    const auto want = RefComputeScorecard(ref, control, {treatment},
                                          metric_ids, lo, hi);
    ASSERT_EQ(got.size(), want.size()) << ctx;
    for (size_t i = 0; i < got.size(); ++i) {
      ExpectEntriesClose(got[i], want[i],
                         ctx + " scorecard " + std::to_string(i));
    }

    const auto got_cov = ComputeMetricCovarianceMatrix(bsi, treatment,
                                                       metric_ids, lo, hi);
    const auto want_cov = RefComputeMetricCovarianceMatrix(
        ref, treatment, metric_ids, lo, hi);
    ASSERT_EQ(got_cov.size(), want_cov.size()) << ctx;
    for (size_t i = 0; i < got_cov.size(); ++i) {
      ASSERT_EQ(got_cov[i].size(), want_cov[i].size()) << ctx;
      for (size_t j = 0; j < got_cov[i].size(); ++j) {
        ExpectClose(got_cov[i][j], want_cov[i][j],
                    ctx + " cov[" + std::to_string(i) + "][" +
                        std::to_string(j) + "]");
      }
    }
  }

  // Pre-experiment + CUPED: the experiment "starts" mid-range, the lookback
  // covers the days before it, and the pre-agg tree must agree exactly with
  // both the linear fold and the oracle.
  {
    const Date expt_start = lo + dataset.config.num_days / 2;
    const int lookback = static_cast<int>(expt_start - lo);
    const BucketValues pre = ComputePreExperimentBsi(
        bsi, treatment, propgen::kFuzzMetricB, expt_start, lookback, hi);
    ExpectBucketsBitEqual(pre,
                          RefComputePreExperiment(ref, treatment,
                                                  propgen::kFuzzMetricB,
                                                  expt_start, lookback, hi),
                          ctx + " pre-experiment");
    const PreAggIndex index =
        BuildPreAggIndex(bsi, propgen::kFuzzMetricB, lo, hi);
    ExpectBucketsBitEqual(
        ComputePreExperimentWithTree(bsi, index, treatment, expt_start,
                                     lookback, hi),
        pre, ctx + " pre-agg tree");

    const BucketValues ty = ComputeStrategyMetricBsi(
        bsi, treatment, propgen::kFuzzMetricB, expt_start, hi);
    const BucketValues cy = ComputeStrategyMetricBsi(
        bsi, control, propgen::kFuzzMetricB, expt_start, hi);
    const BucketValues tx = pre;
    const BucketValues cx = ComputePreExperimentBsi(
        bsi, control, propgen::kFuzzMetricB, expt_start, lookback, hi);
    const CupedScorecardEntry got = CompareWithCuped(
        propgen::kFuzzMetricB, treatment, ty, tx, control, cy, cx);
    ExpectEntriesClose(got.raw,
                       RefCompareStrategies(propgen::kFuzzMetricB, treatment,
                                            ty, control, cy),
                       ctx + " cuped raw");
    const double theta = RefPooledCupedTheta({&ty, &cy}, {&tx, &cx});
    ExpectClose(got.theta, theta, ctx + " theta");
    const CupedResult t_adj = RefApplyCuped(ty, tx, theta);
    const CupedResult c_adj = RefApplyCuped(cy, cx, theta);
    ExpectEstimatesClose(got.treatment_adjusted, t_adj.adjusted,
                         ctx + " treatment_adjusted");
    ExpectEstimatesClose(got.control_adjusted, c_adj.adjusted,
                         ctx + " control_adjusted");
    ExpectClose(got.treatment_variance_reduction, t_adj.variance_reduction,
                ctx + " t var reduction");
    ExpectClose(got.control_variance_reduction, c_adj.variance_reduction,
                ctx + " c var reduction");
    ExpectTTestsClose(
        got.adjusted_ttest,
        RefWelchTTest(t_adj.adjusted.mean, t_adj.adjusted.var_of_mean,
                      t_adj.adjusted.df, c_adj.adjusted.mean,
                      c_adj.adjusted.var_of_mean, c_adj.adjusted.df),
        ctx + " adjusted ttest");
  }
}

TEST(DifferentialTest, EnginesMatchScalarOracle) {
  for (const uint64_t seed : SeedSchedule(/*base=*/0xE46133ull, 80)) {
    RunEngineIteration(seed);
    if (HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Ad-hoc EQL queries: RunQuery vs RefRunQuery, including error parity.
// ---------------------------------------------------------------------------

void RunQueryIteration(uint64_t seed) {
  Rng rng(seed);
  const FuzzDataset fd = propgen::GenDataset(rng);
  const ExperimentBsiData bsi =
      BuildExperimentBsiData(fd.dataset, fd.engagement_ordered);
  const RefExperimentData ref = BuildRefExperimentData(fd.dataset);

  for (int i = 0; i < 5; ++i) {
    const std::string text = propgen::GenQuery(rng, fd.dataset);
    const std::string ctx = Ctx(seed, "query [" + text + "]");
    const Result<QueryResult> got = RunQuery(bsi, text);
    const Result<QueryResult> want = RefRunQuery(ref, text);
    ASSERT_EQ(got.ok(), want.ok())
        << ctx << "\n  bsi status: " << got.status().ToString()
        << "\n  ref status: " << want.status().ToString();
    if (!got.ok()) {
      // Same validation rule must fire with the same message.
      EXPECT_EQ(got.status().message(), want.status().message()) << ctx;
      continue;
    }
    const QueryResult& g = got.value();
    const QueryResult& w = want.value();
    EXPECT_EQ(g.columns, w.columns) << ctx;
    EXPECT_EQ(g.row, w.row) << ctx;  // exact: same fold order
    EXPECT_EQ(g.per_bucket, w.per_bucket) << ctx;
  }
}

TEST(DifferentialTest, QueriesMatchScalarOracle) {
  for (const uint64_t seed : SeedSchedule(/*base=*/0x5ca1ab1eull, 120)) {
    RunQueryIteration(seed);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace expbsi
