#include <vector>

#include <gtest/gtest.h>

#include "cluster/adhoc_cluster.h"
#include "cluster/precompute_pipeline.h"
#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"

namespace expbsi {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.num_users = 10000;
    config.num_segments = 8;
    config.num_days = 7;
    config.start_date = 50;
    config.seed = 31;

    ExperimentConfig exp;
    exp.strategy_ids = {801, 802, 803};
    exp.arm_effects = {1.0, 1.1, 1.0};
    exp.traffic_salt = 3;

    MetricConfig m1;
    m1.metric_id = 901;
    m1.value_range = 100;
    m1.daily_participation = 0.5;
    MetricConfig m2;
    m2.metric_id = 902;
    m2.value_range = 1;
    m2.daily_participation = 0.7;

    dataset_ = new Dataset(GenerateDataset(config, {exp}, {m1, m2}, {}));
    bsi_ = new ExperimentBsiData(BuildExperimentBsiData(*dataset_, true));
  }

  static void TearDownTestSuite() {
    delete bsi_;
    delete dataset_;
  }

  static Dataset* dataset_;
  static ExperimentBsiData* bsi_;
};

Dataset* ClusterTest::dataset_ = nullptr;
ExperimentBsiData* ClusterTest::bsi_ = nullptr;

TEST_F(ClusterTest, PrecomputeBsiMatchesDirectEngine) {
  PrecomputeConfig config;
  config.num_threads = 4;
  config.batch_size = 3;
  PrecomputePipeline pipeline(dataset_, bsi_, config);
  const std::vector<StrategyMetricPair> pairs = {
      {801, 901}, {802, 901}, {803, 901}, {801, 902}, {802, 902},
  };
  const PrecomputeStats stats = pipeline.RunBsi(pairs, 50, 56);
  EXPECT_EQ(stats.pairs_computed, 5);
  EXPECT_GT(stats.cpu_seconds, 0.0);
  EXPECT_GT(stats.bytes_read, 0u);
  for (const StrategyMetricPair& pair : pairs) {
    const BucketValues* cached = pipeline.GetResult(pair);
    ASSERT_NE(cached, nullptr);
    const BucketValues direct =
        ComputeStrategyMetricBsi(*bsi_, pair.first, pair.second, 50, 56);
    EXPECT_EQ(cached->sums, direct.sums);
    EXPECT_EQ(cached->counts, direct.counts);
  }
}

TEST_F(ClusterTest, PrecomputeNormalMatchesBsi) {
  PrecomputeConfig config;
  config.num_threads = 2;
  config.batch_size = 8;
  PrecomputePipeline bsi_pipe(dataset_, bsi_, config);
  PrecomputePipeline normal_pipe(dataset_, bsi_, config);
  const std::vector<StrategyMetricPair> pairs = {{801, 901}, {802, 902}};
  bsi_pipe.RunBsi(pairs, 50, 56);
  const PrecomputeStats normal_stats = normal_pipe.RunNormal(pairs, 50, 56);
  EXPECT_EQ(normal_stats.pairs_computed, 2);
  for (const StrategyMetricPair& pair : pairs) {
    EXPECT_EQ(bsi_pipe.GetResult(pair)->sums,
              normal_pipe.GetResult(pair)->sums);
    EXPECT_EQ(bsi_pipe.GetResult(pair)->counts,
              normal_pipe.GetResult(pair)->counts);
  }
}

TEST_F(ClusterTest, NormalReadsMoreBytesThanBsi) {
  // The headline network-traffic claim: BSI blobs are much smaller than the
  // rows the normal method must move.
  const uint64_t bsi_bytes = BsiPairReadBytes(*bsi_, 802, 901, 50, 56);
  const uint64_t normal_bytes =
      NormalPairReadBytes(*dataset_, 802, 901, 50, 56);
  EXPECT_LT(bsi_bytes, normal_bytes);
}

TEST_F(ClusterTest, AdhocBsiQueryMatchesDirectEngine) {
  AdhocClusterConfig config;
  config.num_nodes = 3;
  AdhocCluster cluster(dataset_, bsi_, config);
  Result<AdhocCluster::QueryStats> stats_or =
      cluster.QueryBsi({801, 802}, {901, 902}, 50, 56);
  ASSERT_TRUE(stats_or.ok());
  const AdhocCluster::QueryStats& stats = stats_or.value();
  EXPECT_GT(stats.latency_seconds, 0.0);
  ASSERT_EQ(stats.results.size(), 4u);
  for (const auto& [pair, result] : stats.results) {
    const BucketValues direct =
        ComputeStrategyMetricBsi(*bsi_, pair.first, pair.second, 50, 56);
    EXPECT_EQ(result.sums, direct.sums) << pair.first << "/" << pair.second;
    EXPECT_EQ(result.counts, direct.counts);
  }
}

TEST_F(ClusterTest, AdhocNormalBitmapMatchesBsiResults) {
  AdhocCluster cluster(dataset_, bsi_, AdhocClusterConfig{});
  const auto bsi_stats = cluster.QueryBsi({802}, {901}, 50, 56);
  const auto normal_stats = cluster.QueryNormalBitmap({802}, {901}, 50, 56);
  ASSERT_TRUE(bsi_stats.ok());
  ASSERT_TRUE(normal_stats.ok());
  const BucketValues& a = bsi_stats.value().results.at({802, 901});
  const BucketValues& b = normal_stats.value().results.at({802, 901});
  EXPECT_EQ(a.sums, b.sums);
  EXPECT_EQ(a.counts, b.counts);
}

TEST_F(ClusterTest, RepeatQueriesHitHotTier) {
  AdhocCluster cluster(dataset_, bsi_, AdhocClusterConfig{});
  const auto first_or = cluster.QueryBsi({801}, {901}, 50, 56);
  ASSERT_TRUE(first_or.ok());
  EXPECT_GT(first_or.value().bytes_from_cold, 0u);
  const auto second_or = cluster.QueryBsi({801}, {901}, 50, 56);
  ASSERT_TRUE(second_or.ok());
  EXPECT_EQ(second_or.value().bytes_from_cold, 0u);
  EXPECT_GT(second_or.value().hot_hits, 0u);
}

// The normal-format baseline must report the same hot/cold IO shape as the
// BSI path (first touch = cold bytes, reuse = hot hits), so the two paths'
// QueryStats are comparable and the asymmetry fixed here can't regress.
TEST_F(ClusterTest, RepeatNormalBitmapQueriesHitHotTierLikeBsi) {
  AdhocCluster cluster(dataset_, bsi_, AdhocClusterConfig{});
  const auto first_or = cluster.QueryNormalBitmap({801}, {901}, 50, 56);
  ASSERT_TRUE(first_or.ok());
  EXPECT_GT(first_or.value().bytes_from_cold, 0u);
  EXPECT_EQ(first_or.value().hot_hits, 0u);
  const auto second_or = cluster.QueryNormalBitmap({801}, {901}, 50, 56);
  ASSERT_TRUE(second_or.ok());
  EXPECT_EQ(second_or.value().bytes_from_cold, 0u);
  EXPECT_GT(second_or.value().hot_hits, 0u);

  // Same first/repeat signature the BSI path shows on a fresh cluster
  // (RepeatQueriesHitHotTier), asserted side by side.
  AdhocCluster bsi_cluster(dataset_, bsi_, AdhocClusterConfig{});
  const auto bsi_first = bsi_cluster.QueryBsi({801}, {901}, 50, 56);
  ASSERT_TRUE(bsi_first.ok());
  const auto bsi_second = bsi_cluster.QueryBsi({801}, {901}, 50, 56);
  ASSERT_TRUE(bsi_second.ok());
  EXPECT_GT(bsi_first.value().bytes_from_cold, 0u);
  EXPECT_EQ(bsi_second.value().bytes_from_cold, 0u);
  EXPECT_GT(bsi_second.value().hot_hits, 0u);
}

TEST_F(ClusterTest, QueryStatsCarryFinishedTraceTree) {
  AdhocCluster cluster(dataset_, bsi_, AdhocClusterConfig{});
  const auto bsi_or = cluster.QueryBsi({801, 802}, {901}, 50, 56);
  ASSERT_TRUE(bsi_or.ok());
  ASSERT_NE(bsi_or.value().trace, nullptr);
  const auto spans = bsi_or.value().trace->spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].id, 1u);
  EXPECT_EQ(spans[0].name, "adhoc_query_bsi");
  EXPECT_FALSE(spans[0].open);  // root closed before the stats returned
  bool has_wave = false, has_node = false, has_segment = false;
  for (const auto& span : spans) {
    EXPECT_FALSE(span.open);
    EXPECT_LT(span.parent_id, span.id);
    if (span.name == "wave") has_wave = true;
    if (span.name == "node_execute") has_node = true;
    if (span.name == "segment_execute") has_segment = true;
  }
  EXPECT_TRUE(has_wave);
  EXPECT_TRUE(has_node);
  EXPECT_TRUE(has_segment);

  const auto norm_or = cluster.QueryNormalBitmap({801}, {901}, 50, 56);
  ASSERT_TRUE(norm_or.ok());
  ASSERT_NE(norm_or.value().trace, nullptr);
  const std::string tree = norm_or.value().trace->ToText();
  EXPECT_NE(tree.find("adhoc_query_normal"), std::string::npos);
  EXPECT_NE(tree.find("node_scan"), std::string::npos);
}

TEST_F(ClusterTest, ColdStoreHoldsAllBlobs) {
  const BsiStore store = BuildColdStore(*bsi_);
  // 8 segments x (3 expose + 2 metrics x 7 days) = 8 * 17 blobs, minus any
  // (metric, day) with no rows in a segment.
  EXPECT_GT(store.NumBlobs(), 100u);
  EXPECT_GT(store.TotalBytes(), 0u);
  EXPECT_TRUE(store.Contains(BsiStoreKey{0, BsiKind::kExpose, 801, 0}));
}

TEST_F(ClusterTest, CorruptColdBlobSurfacesAsStatusNotCrash) {
  AdhocCluster cluster(dataset_, bsi_, AdhocClusterConfig{});
  // Inject garbage over a metric blob in the warehouse.
  cluster.mutable_cold_store().Put(BsiStoreKey{0, BsiKind::kMetric, 901, 52},
                                   "garbage bytes that are not a bsi");
  const auto result = cluster.QueryBsi({801}, {901}, 50, 56);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  // Queries that avoid the corrupt blob still work.
  const auto other = cluster.QueryBsi({801}, {902}, 50, 56);
  EXPECT_TRUE(other.ok());
}

TEST_F(ClusterTest, QueryBsiEmptyListsYieldEmptyResults) {
  AdhocCluster cluster(dataset_, bsi_, AdhocClusterConfig{});
  const auto no_strategies = cluster.QueryBsi({}, {901}, 50, 56);
  ASSERT_TRUE(no_strategies.ok());
  EXPECT_TRUE(no_strategies.value().results.empty());
  EXPECT_FALSE(no_strategies.value().degraded.degraded());
  const auto no_metrics = cluster.QueryBsi({801}, {}, 50, 56);
  ASSERT_TRUE(no_metrics.ok());
  EXPECT_TRUE(no_metrics.value().results.empty());
}

TEST_F(ClusterTest, QueryBsiInvertedDateRangeIsACheckedContractError) {
  AdhocCluster cluster(dataset_, bsi_, AdhocClusterConfig{});
  EXPECT_DEATH(cluster.QueryBsi({801}, {901}, 56, 50).ok(), "CHECK failed");
}

TEST_F(ClusterTest, UnknownStrategyIsAbsenceNotDegradation) {
  // NotFound is semantic absence: the strategy simply has no expose log, so
  // every slot stays zero and nothing is retried, lost or flagged.
  AdhocClusterConfig config;
  config.allow_degraded = true;
  AdhocCluster cluster(dataset_, bsi_, config);
  const auto stats = cluster.QueryBsi({777777}, {901}, 50, 56);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats.value().degraded.degraded());
  EXPECT_EQ(stats.value().degraded.retries, 0);
  const BucketValues& values = stats.value().results.at({777777, 901});
  for (double sum : values.sums) EXPECT_EQ(sum, 0.0);
  for (double count : values.counts) EXPECT_EQ(count, 0.0);
}

TEST_F(ClusterTest, CorruptBlobInDegradedModeLosesOnlyItsSegment) {
  AdhocClusterConfig config;
  config.num_nodes = 3;
  config.allow_degraded = true;
  AdhocCluster cluster(dataset_, bsi_, config);
  // Garbage stored in the warehouse itself: the transfer fingerprint
  // matches (the warehouse faithfully serves what it stores), so detection
  // falls to the decoder, and retries cannot help. Segment 2 alone is
  // dropped -- and reported.
  cluster.mutable_cold_store().Put(BsiStoreKey{2, BsiKind::kMetric, 901, 52},
                                   "garbage bytes that are not a bsi");
  const auto stats = cluster.QueryBsi({801, 802}, {901}, 50, 56);
  ASSERT_TRUE(stats.ok());
  const auto& degraded = stats.value().degraded;
  EXPECT_EQ(degraded.lost_segments, std::vector<int>{2});
  EXPECT_EQ(degraded.segments_answered, dataset_->config.num_segments - 1);
  for (const auto& [pair, values] : stats.value().results) {
    const BucketValues direct =
        ComputeStrategyMetricBsi(*bsi_, pair.first, pair.second, 50, 56);
    for (size_t seg = 0; seg < values.sums.size(); ++seg) {
      if (seg == 2) {
        EXPECT_EQ(values.sums[seg], 0.0);
        EXPECT_EQ(values.counts[seg], 0.0);
      } else {
        EXPECT_EQ(values.sums[seg], direct.sums[seg]);
        EXPECT_EQ(values.counts[seg], direct.counts[seg]);
      }
    }
  }
}

TEST_F(ClusterTest, SegmentOwnershipCoversAllNodes) {
  AdhocClusterConfig config;
  config.num_nodes = 3;
  AdhocCluster cluster(dataset_, bsi_, config);
  std::vector<int> owned(3, 0);
  for (int seg = 0; seg < dataset_->config.num_segments; ++seg) {
    const int node = cluster.NodeOfSegment(seg);
    ASSERT_GE(node, 0);
    ASSERT_LT(node, 3);
    ++owned[node];
  }
  for (int n : owned) EXPECT_GT(n, 0);
}

}  // namespace
}  // namespace expbsi
