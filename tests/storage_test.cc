#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/bsi_store.h"
#include "storage/column_store.h"
#include "storage/tiered_store.h"

namespace expbsi {
namespace {

TEST(NormalMetricTableTest, AppendAndRawBytes) {
  NormalMetricTable table;
  table.Append(3, MetricRow{10, 8371, 12345, 7});
  table.Append(3, MetricRow{10, 8371, 12346, 9});
  EXPECT_EQ(table.NumRows(), 2u);
  EXPECT_EQ(table.RawBytes(), 2u * 18);
  EXPECT_EQ(table.value()[0], 7u);
  EXPECT_EQ(table.unit_id()[1], 12346u);
}

TEST(NormalMetricTableTest, SortImprovesCompression) {
  Rng rng(1);
  NormalMetricTable table;
  for (int i = 0; i < 50000; ++i) {
    table.Append(static_cast<uint16_t>(rng.NextBounded(16)),
                 MetricRow{static_cast<Date>(rng.NextBounded(7)),
                           1000 + rng.NextBounded(3),
                           rng.NextBounded(1u << 20),
                           1 + rng.NextBounded(50)});
  }
  const size_t unsorted = table.CompressedBytes();
  table.SortForStorage();
  const size_t sorted = table.CompressedBytes();
  EXPECT_LT(sorted, unsorted);
  // Sort preserves row multiset: spot-check the ordering key.
  for (size_t i = 1; i < table.NumRows(); ++i) {
    EXPECT_LE(table.segment()[i - 1], table.segment()[i]);
  }
}

TEST(NormalExposeTableTest, AppendSortCompress) {
  Rng rng(2);
  NormalExposeTable table;
  for (int i = 0; i < 20000; ++i) {
    table.Append(static_cast<uint16_t>(rng.NextBounded(16)),
                 static_cast<uint16_t>(rng.NextBounded(1024)),
                 ExposeRow{8764293 + rng.NextBounded(3),
                           rng.NextBounded(1u << 20),
                           rng.NextBounded(1u << 20),
                           static_cast<Date>(rng.NextBounded(7))});
  }
  EXPECT_EQ(table.RawBytes(), 20000u * 16);
  const size_t unsorted = table.CompressedBytes();
  table.SortForStorage();
  EXPECT_LT(table.CompressedBytes(), unsorted);
}

TEST(BsiStoreTest, PutGetReplace) {
  BsiStore store;
  const BsiStoreKey key{3, BsiKind::kMetric, 8371, 20};
  EXPECT_FALSE(store.Contains(key));
  EXPECT_FALSE(store.Get(key).ok());
  store.Put(key, "hello");
  EXPECT_TRUE(store.Contains(key));
  EXPECT_EQ(*store.Get(key).value(), "hello");
  EXPECT_EQ(store.TotalBytes(), 5u);
  store.Put(key, "hi");
  EXPECT_EQ(*store.Get(key).value(), "hi");
  EXPECT_EQ(store.TotalBytes(), 2u);
  EXPECT_EQ(store.NumBlobs(), 1u);
}

TEST(BsiStoreTest, KeyComponentsDistinguish) {
  BsiStore store;
  store.Put({1, BsiKind::kMetric, 5, 10}, "a");
  store.Put({2, BsiKind::kMetric, 5, 10}, "b");
  store.Put({1, BsiKind::kExpose, 5, 10}, "c");
  store.Put({1, BsiKind::kMetric, 6, 10}, "d");
  store.Put({1, BsiKind::kMetric, 5, 11}, "e");
  EXPECT_EQ(store.NumBlobs(), 5u);
  EXPECT_EQ(*store.Get({1, BsiKind::kMetric, 5, 10}).value(), "a");
  EXPECT_EQ(*store.Get({1, BsiKind::kMetric, 5, 11}).value(), "e");
}

TEST(TieredStoreTest, HotHitAfterColdRead) {
  BsiStore cold;
  const BsiStoreKey key{0, BsiKind::kMetric, 1, 1};
  cold.Put(key, std::string(100, 'x'));
  TieredStore tier(&cold, 1 << 20);
  auto first = tier.Fetch(key);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(tier.stats().cold_reads, 1u);
  EXPECT_EQ(tier.stats().hot_hits, 0u);
  EXPECT_EQ(tier.stats().bytes_from_cold, 100u);
  auto second = tier.Fetch(key);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(tier.stats().cold_reads, 1u);
  EXPECT_EQ(tier.stats().hot_hits, 1u);
}

TEST(TieredStoreTest, LruEvictionUnderBudget) {
  BsiStore cold;
  for (uint64_t i = 0; i < 10; ++i) {
    cold.Put({0, BsiKind::kMetric, i, 0}, std::string(100, 'x'));
  }
  TieredStore tier(&cold, 350);  // room for ~3 blobs
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(tier.Fetch({0, BsiKind::kMetric, i, 0}).ok());
  }
  EXPECT_GT(tier.stats().evictions, 0u);
  EXPECT_LE(tier.hot_bytes(), 350u);
  // Most recent key is hot; the oldest has been evicted.
  const auto before = tier.stats();
  ASSERT_TRUE(tier.Fetch({0, BsiKind::kMetric, 9, 0}).ok());
  EXPECT_EQ(tier.stats().hot_hits, before.hot_hits + 1);
  ASSERT_TRUE(tier.Fetch({0, BsiKind::kMetric, 0, 0}).ok());
  EXPECT_EQ(tier.stats().cold_reads, before.cold_reads + 1);
}

TEST(TieredStoreTest, WarmDoesNotCountAsQueryTraffic) {
  BsiStore cold;
  const BsiStoreKey key{0, BsiKind::kMetric, 1, 1};
  cold.Put(key, "payload");
  TieredStore tier(&cold, 1 << 20);
  ASSERT_TRUE(tier.Warm(key).ok());
  EXPECT_EQ(tier.stats().cold_reads, 0u);
  auto fetched = tier.Fetch(key);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(tier.stats().hot_hits, 1u);
  EXPECT_EQ(tier.stats().bytes_from_cold, 0u);
}

TEST(TieredStoreTest, MissingKeyPropagatesNotFound) {
  BsiStore cold;
  TieredStore tier(&cold, 100);
  auto result = tier.Fetch({9, BsiKind::kExpose, 42, 0});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// Regression: a blob larger than the whole hot budget used to be inserted
// and then evict every other entry for nothing. It must be served straight
// from cold, leaving the cache untouched.
TEST(TieredStoreTest, OversizeBlobBypassesHotTier) {
  BsiStore cold;
  for (uint64_t i = 0; i < 3; ++i) {
    cold.Put({0, BsiKind::kMetric, i, 0}, std::string(100, 'x'));
  }
  const BsiStoreKey big{0, BsiKind::kMetric, 99, 0};
  cold.Put(big, std::string(5000, 'y'));
  TieredStore tier(&cold, 350);  // fits the three small blobs, never `big`
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(tier.Fetch({0, BsiKind::kMetric, i, 0}).ok());
  }
  auto blob = tier.Fetch(big);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob.value()->size(), 5000u);
  EXPECT_EQ(tier.stats().oversize_bypasses, 1u);
  EXPECT_EQ(tier.stats().evictions, 0u);
  EXPECT_LE(tier.hot_bytes(), 350u);
  // The small blobs are still hot...
  const auto before = tier.stats();
  ASSERT_TRUE(tier.Fetch({0, BsiKind::kMetric, 0, 0}).ok());
  EXPECT_EQ(tier.stats().hot_hits, before.hot_hits + 1);
  // ...and the oversize blob goes back to cold every time.
  ASSERT_TRUE(tier.Fetch(big).ok());
  EXPECT_EQ(tier.stats().cold_reads, before.cold_reads + 1);
  EXPECT_EQ(tier.stats().oversize_bypasses, 2u);
}

TEST(BsiStoreTest, FingerprintTracksBlobContent) {
  BsiStore store;
  const BsiStoreKey key{0, BsiKind::kMetric, 1, 1};
  store.Put(key, "hello world");
  const auto fp = store.Fingerprint(key);
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp.value(), BlobFingerprint("hello world"));
  store.Put(key, "hello world!");  // replaced content, new fingerprint
  ASSERT_TRUE(store.Fingerprint(key).ok());
  EXPECT_NE(store.Fingerprint(key).value(), fp.value());
  EXPECT_FALSE(store.Fingerprint({9, BsiKind::kExpose, 7, 0}).ok());
  // Single-bit sensitivity, the property corruption detection rests on.
  EXPECT_NE(BlobFingerprint("hello world"), BlobFingerprint("hello worle"));
  EXPECT_NE(BlobFingerprint(""), BlobFingerprint(std::string(1, '\0')));
}

}  // namespace
}  // namespace expbsi

namespace expbsi {
namespace {

TEST(BsiStorePersistenceTest, SaveLoadRoundTrip) {
  BsiStore store;
  store.Put({1, BsiKind::kExpose, 42, 0}, "expose blob");
  store.Put({2, BsiKind::kMetric, 8371, 19}, std::string(5000, 'x'));
  store.Put({3, BsiKind::kDimension, 7, 20}, "");
  const std::string path = ::testing::TempDir() + "/bsi_store_roundtrip.bin";
  ASSERT_TRUE(store.SaveToFile(path).ok());
  Result<BsiStore> loaded = BsiStore::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().NumBlobs(), 3u);
  EXPECT_EQ(loaded.value().TotalBytes(), store.TotalBytes());
  EXPECT_EQ(*loaded.value().Get({1, BsiKind::kExpose, 42, 0}).value(),
            "expose blob");
  EXPECT_EQ(loaded.value().Get({2, BsiKind::kMetric, 8371, 19}).value()->size(),
            5000u);
  EXPECT_TRUE(loaded.value().Contains({3, BsiKind::kDimension, 7, 20}));
}

TEST(BsiStorePersistenceTest, LoadErrors) {
  EXPECT_EQ(BsiStore::LoadFromFile("/nonexistent/dir/f.bin").status().code(),
            StatusCode::kNotFound);
  // Truncated file.
  const std::string path = ::testing::TempDir() + "/bsi_store_trunc.bin";
  BsiStore store;
  store.Put({1, BsiKind::kMetric, 1, 1}, "payload payload payload");
  ASSERT_TRUE(store.SaveToFile(path).ok());
  {
    FILE* f = fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string bytes(100, '\0');
    const size_t n = fread(bytes.data(), 1, bytes.size(), f);
    fclose(f);
    f = fopen(path.c_str(), "wb");
    fwrite(bytes.data(), 1, n - 5, f);  // drop the tail
    fclose(f);
  }
  EXPECT_EQ(BsiStore::LoadFromFile(path).status().code(),
            StatusCode::kCorruption);
  // Bad magic.
  {
    FILE* f = fopen(path.c_str(), "wb");
    const uint32_t bad = 0xdeadbeef;
    fwrite(&bad, sizeof(bad), 1, f);
    const uint64_t zero = 0;
    fwrite(&zero, sizeof(zero), 1, f);
    fclose(f);
  }
  EXPECT_EQ(BsiStore::LoadFromFile(path).status().code(),
            StatusCode::kCorruption);
}

TEST(BsiStorePersistenceTest, ForEachVisitsAll) {
  BsiStore store;
  store.Put({1, BsiKind::kMetric, 1, 1}, "a");
  store.Put({2, BsiKind::kMetric, 2, 2}, "bb");
  size_t visited = 0, bytes = 0;
  store.ForEach([&](const BsiStoreKey& key, const std::string& blob) {
    (void)key;
    ++visited;
    bytes += blob.size();
  });
  EXPECT_EQ(visited, 2u);
  EXPECT_EQ(bytes, 3u);
}

}  // namespace
}  // namespace expbsi
