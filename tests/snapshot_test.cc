// Persistence-layer tests (DESIGN.md §6 "Durability model"): CRC32C vectors,
// the atomic-publish protocol of fileio::WriteFileAtomic, snapshot round-trip
// bit-identity, manifest fallback and quarantine on corruption, GC, the
// ad-hoc cluster's snapshot cold start, pipeline snapshot publication, and
// the tiered store's unconditional fingerprint gate on recovered blobs.
//
// The randomized kill-recovery sweeps live in chaos_test.cc; the
// corrupt-bytes fuzzing of every decode path lives in decode_fuzz_test.cc.
// This file is the deterministic, named-scenario layer.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/adhoc_cluster.h"
#include "cluster/precompute_pipeline.h"
#include "common/crc32c.h"
#include "common/fault_injector.h"
#include "common/file_io.h"
#include "common/rng.h"
#include "common/status.h"
#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"
#include "query/executor.h"
#include "reference/ref_data.h"
#include "reference/ref_query.h"
#include "storage/bsi_store.h"
#include "storage/snapshot.h"
#include "storage/tiered_store.h"
#include "tests/property_gen.h"

namespace expbsi {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// A fresh, empty scratch directory under the test tmp root. Re-created
// (emptied) on every call so repeated runs and in-process repetitions never
// see stale snapshot files.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "expbsi_" + name;
  EXPECT_TRUE(fileio::CreateDirIfMissing(dir).ok());
  const Result<std::vector<std::string>> entries = fileio::ListDir(dir);
  EXPECT_TRUE(entries.ok());
  for (const std::string& entry : entries.value()) {
    EXPECT_TRUE(fileio::RemoveFileIfExists(dir + "/" + entry).ok());
  }
  return dir;
}

// Deterministic store of opaque blobs -- the snapshot layer is
// content-agnostic, so arbitrary bytes exercise it fully.
BsiStore MakeStore(uint64_t seed, int num_segments, int blobs_per_segment) {
  Rng rng(seed);
  BsiStore store;
  for (int seg = 0; seg < num_segments; ++seg) {
    for (int b = 0; b < blobs_per_segment; ++b) {
      std::string bytes(1 + rng.NextBounded(600), '\0');
      for (char& c : bytes) c = static_cast<char>(rng.Next() & 0xff);
      BsiStoreKey key;
      key.segment = static_cast<uint16_t>(seg);
      key.kind = static_cast<BsiKind>(b % 3);
      key.id = 100 + b;
      key.date = static_cast<uint32_t>(b % 5);
      store.Put(key, std::move(bytes));
    }
  }
  return store;
}

using BlobKey = std::tuple<uint16_t, uint8_t, uint64_t, uint32_t>;
using BlobMap = std::map<BlobKey, std::pair<std::string, uint64_t>>;

BlobMap ContentsOf(const BsiStore& store) {
  BlobMap out;
  store.ForEachEntry([&](const BsiStoreKey& key, const std::string& bytes,
                         uint64_t fingerprint) {
    out[{key.segment, static_cast<uint8_t>(key.kind), key.id, key.date}] = {
        bytes, fingerprint};
  });
  return out;
}

BsiStoreKey FromBlobKey(const BlobKey& k) {
  BsiStoreKey key;
  key.segment = std::get<0>(k);
  key.kind = static_cast<BsiKind>(std::get<1>(k));
  key.id = std::get<2>(k);
  key.date = std::get<3>(k);
  return key;
}

// Asserts `recovered` holds exactly `want`'s blobs, bit for bit, fingerprint
// for fingerprint, all flagged as recovered.
void ExpectBitIdentical(const BsiStore& recovered, const BsiStore& want,
                        const std::string& ctx) {
  const BlobMap got_map = ContentsOf(recovered);
  const BlobMap want_map = ContentsOf(want);
  ASSERT_EQ(got_map.size(), want_map.size()) << ctx;
  for (const auto& [k, v] : want_map) {
    const auto it = got_map.find(k);
    ASSERT_NE(it, got_map.end()) << ctx << " missing blob";
    EXPECT_EQ(it->second.first, v.first) << ctx << " blob bytes diverged";
    EXPECT_EQ(it->second.second, v.second) << ctx << " fingerprint diverged";
    EXPECT_TRUE(recovered.WasRecovered(FromBlobKey(k))) << ctx;
  }
}

std::string ReadAll(const std::string& path) {
  const Result<std::string> r =
      fileio::ReadFileToString(path, kMaxSegmentFileBytes);
  EXPECT_TRUE(r.ok()) << path << ": " << r.status().ToString();
  return r.ok() ? r.value() : std::string();
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ---------------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownAnswerVectors) {
  // The Castagnoli check value (RFC 3720 appendix B / every CRC catalogue).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // 32 zero bytes: iSCSI test vector.
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  const std::string ffs(32, '\xff');
  EXPECT_EQ(Crc32c(ffs), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, EverySingleBitflipIsDetected) {
  // CRC32C has Hamming distance >= 4 at these lengths: any single flipped
  // bit MUST change the checksum. This is the property the whole corruption
  // taxonomy leans on.
  Rng rng(0xC5C);
  std::string data(257, '\0');
  for (char& c : data) c = static_cast<char>(rng.Next() & 0xff);
  const uint32_t clean = Crc32c(data);
  for (size_t bit = 0; bit < data.size() * 8; ++bit) {
    data[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    EXPECT_NE(Crc32c(data), clean) << "bit " << bit << " undetected";
    data[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  }
}

// ---------------------------------------------------------------------------
// fileio::WriteFileAtomic commit protocol
// ---------------------------------------------------------------------------

TEST(FileIoTest, AtomicWritePublishesOrLeavesOldFile) {
  const std::string dir = FreshDir("fileio_atomic");
  const std::string path = dir + "/data";
  ASSERT_TRUE(fileio::WriteFileAtomic(path, "version one").ok());
  EXPECT_EQ(ReadAll(path), "version one");

  fileio::AtomicWriteOptions opts;
  opts.write_fault_site = fault_sites::kSnapshotWrite;
  opts.rename_fault_site = fault_sites::kSnapshotRename;

  {
    // Kill mid-write: the .tmp holds a torn prefix, the published file is
    // untouched.
    FaultInjector injector(7);
    injector.ScheduleFault(fault_sites::kSnapshotWrite, 0, FaultKind::kCrash);
    ScopedFaultInjection scoped(&injector);
    EXPECT_FALSE(fileio::WriteFileAtomic(path, "version two", opts).ok());
  }
  EXPECT_EQ(ReadAll(path), "version one");
  const Result<uint64_t> torn = fileio::FileSizeOf(path + ".tmp");
  ASSERT_TRUE(torn.ok()) << "crash at write site should leave a torn .tmp";
  EXPECT_LT(torn.value(), std::string("version two").size());

  {
    // Kill after the durable .tmp, before the rename: still the old file.
    FaultInjector injector(7);
    injector.ScheduleFault(fault_sites::kSnapshotRename, 0,
                           FaultKind::kCrash);
    ScopedFaultInjection scoped(&injector);
    EXPECT_FALSE(fileio::WriteFileAtomic(path, "version two", opts).ok());
  }
  EXPECT_EQ(ReadAll(path), "version one");
  EXPECT_EQ(ReadAll(path + ".tmp"), "version two");

  // No fault: the write lands and the .tmp is consumed by the rename.
  ASSERT_TRUE(fileio::WriteFileAtomic(path, "version two", opts).ok());
  EXPECT_EQ(ReadAll(path), "version two");
  EXPECT_FALSE(fileio::FileSizeOf(path + ".tmp").ok());
}

TEST(FileIoTest, ReadFileToStringRefusesOversizedFiles) {
  const std::string dir = FreshDir("fileio_cap");
  const std::string path = dir + "/big";
  ASSERT_TRUE(fileio::WriteFileAtomic(path, std::string(1000, 'x')).ok());
  const Result<std::string> r = fileio::ReadFileToString(path, 999);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_TRUE(fileio::ReadFileToString(path, 1000).ok());
}

// ---------------------------------------------------------------------------
// Snapshot round trip, versioning, GC
// ---------------------------------------------------------------------------

TEST(SnapshotTest, RoundTripIsBitIdentical) {
  const std::string dir = FreshDir("snap_roundtrip");
  const BsiStore store = MakeStore(11, /*num_segments=*/3,
                                   /*blobs_per_segment=*/5);
  const Result<SnapshotWriteStats> written = SnapshotWriter::Write(store, dir);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(written.value().version, 1u);
  EXPECT_EQ(written.value().segment_files, 3u);
  EXPECT_GT(written.value().bytes_written, 0u);

  RecoveryReport report;
  const Result<BsiStore> recovered = BsiStore::Recover(dir, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(report.fully_recovered());
  EXPECT_EQ(report.manifest_version, 1u);
  EXPECT_EQ(report.manifests_skipped, 0u);
  EXPECT_EQ(report.segments_recovered, (std::vector<uint16_t>{0, 1, 2}));
  EXPECT_EQ(report.blobs_recovered, store.NumBlobs());
  EXPECT_EQ(report.bytes_recovered, store.TotalBytes());
  EXPECT_TRUE(report.errors.empty());
  ExpectBitIdentical(recovered.value(), store, "round trip");
}

TEST(SnapshotTest, EmptyStoreRoundTrips) {
  const std::string dir = FreshDir("snap_empty");
  const BsiStore store;
  const Result<SnapshotWriteStats> written = SnapshotWriter::Write(store, dir);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(written.value().segment_files, 0u);
  RecoveryReport report;
  const Result<BsiStore> recovered = BsiStore::Recover(dir, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().NumBlobs(), 0u);
  EXPECT_TRUE(report.fully_recovered());
}

TEST(SnapshotTest, VersionsBumpAndOldVersionsAreCollected) {
  const std::string dir = FreshDir("snap_gc");
  for (uint64_t v = 1; v <= 3; ++v) {
    const BsiStore store = MakeStore(/*seed=*/v, /*num_segments=*/2,
                                     /*blobs_per_segment=*/3);
    const Result<SnapshotWriteStats> written =
        SnapshotWriter::Write(store, dir);
    ASSERT_TRUE(written.ok()) << written.status().ToString();
    EXPECT_EQ(written.value().version, v);
  }
  // GC keeps the committed version and its predecessor (the fallback
  // target), nothing older.
  EXPECT_EQ(SnapshotReader::ListManifestVersions(dir),
            (std::vector<uint64_t>{2, 3}));
  const Result<std::vector<std::string>> listing1 = fileio::ListDir(dir);
  ASSERT_TRUE(listing1.ok());
  for (const std::string& name : listing1.value()) {
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
  RecoveryReport report;
  const Result<BsiStore> recovered = BsiStore::Recover(dir, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.manifest_version, 3u);
  ExpectBitIdentical(recovered.value(), MakeStore(3, 2, 3), "after gc");
}

TEST(SnapshotTest, RecoveryFallsBackPastCorruptNewestManifest) {
  const std::string dir = FreshDir("snap_fallback");
  const BsiStore v1 = MakeStore(21, 2, 4);
  ASSERT_TRUE(SnapshotWriter::Write(v1, dir).ok());
  {
    // v2's manifest commits but its bytes were corrupted in flight (one-shot
    // kCorrupt on the LAST write of the snapshot: 2 segment files, then the
    // manifest at write-op index 2).
    const BsiStore v2 = MakeStore(22, 2, 4);
    FaultInjector injector(99);
    injector.ScheduleFault(fault_sites::kSnapshotWrite, 2,
                           FaultKind::kCorrupt);
    ScopedFaultInjection scoped(&injector);
    ASSERT_TRUE(SnapshotWriter::Write(v2, dir).ok());
  }
  RecoveryReport report;
  const Result<BsiStore> recovered = BsiStore::Recover(dir, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(report.manifest_version, 1u);
  EXPECT_EQ(report.manifests_skipped, 1u);
  ASSERT_FALSE(report.errors.empty());
  EXPECT_NE(report.errors[0].find("manifest"), std::string::npos)
      << report.errors[0];
  EXPECT_TRUE(report.fully_recovered());
  ExpectBitIdentical(recovered.value(), v1, "fallback");
}

TEST(SnapshotTest, TornManifestTmpIsNeverACommit) {
  const std::string dir = FreshDir("snap_torn_manifest");
  const BsiStore v1 = MakeStore(31, 2, 4);
  ASSERT_TRUE(SnapshotWriter::Write(v1, dir).ok());
  {
    // Kill right before the manifest rename (rename-op index 2 after the
    // two segment files): v2's manifest exists only as a durable .tmp,
    // which must never be treated as a commit.
    const BsiStore v2 = MakeStore(32, 2, 4);
    FaultInjector injector(5);
    injector.ScheduleFault(fault_sites::kSnapshotRename, 2,
                           FaultKind::kCrash);
    ScopedFaultInjection scoped(&injector);
    EXPECT_FALSE(SnapshotWriter::Write(v2, dir).ok());
  }
  EXPECT_EQ(SnapshotReader::ListManifestVersions(dir),
            (std::vector<uint64_t>{1}));
  RecoveryReport report;
  const Result<BsiStore> recovered = BsiStore::Recover(dir, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.manifest_version, 1u);
  EXPECT_EQ(report.manifests_skipped, 0u);  // a .tmp is not a candidate
  ExpectBitIdentical(recovered.value(), v1, "torn manifest");
}

TEST(SnapshotTest, BitflippedSegmentFileIsQuarantinedAndEnumerated) {
  const std::string dir = FreshDir("snap_bitflip");
  const BsiStore store = MakeStore(41, /*num_segments=*/3,
                                   /*blobs_per_segment=*/4);
  ASSERT_TRUE(SnapshotWriter::Write(store, dir).ok());

  const std::string victim = dir + "/" + SnapshotSegmentFileName(1, 1);
  std::string bytes = ReadAll(victim);
  bytes[bytes.size() / 2] ^= 0x10;  // one flipped bit, mid-payload
  WriteRaw(victim, bytes);

  RecoveryReport report;
  const Result<BsiStore> recovered = BsiStore::Recover(dir, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(report.lost_segments, (std::vector<uint16_t>{1}));
  EXPECT_EQ(report.segments_recovered, (std::vector<uint16_t>{0, 2}));
  ASSERT_EQ(report.quarantined_files.size(), 1u);
  EXPECT_TRUE(
      fileio::FileSizeOf(dir + "/" + report.quarantined_files[0]).ok())
      << "quarantined file should remain on disk for inspection";
  ASSERT_FALSE(report.errors.empty());

  // Every blob outside the lost segment is still bit-identical.
  const BlobMap want = ContentsOf(store);
  const BlobMap got = ContentsOf(recovered.value());
  for (const auto& [k, v] : want) {
    if (std::get<0>(k) == 1) {
      EXPECT_EQ(got.count(k), 0u) << "lost segment leaked a blob";
    } else {
      ASSERT_EQ(got.count(k), 1u);
      EXPECT_EQ(got.at(k), v);
    }
  }
}

TEST(SnapshotTest, TruncatedSegmentFileIsDetected) {
  const std::string dir = FreshDir("snap_truncated");
  const BsiStore store = MakeStore(51, 2, 4);
  ASSERT_TRUE(SnapshotWriter::Write(store, dir).ok());
  const std::string victim = dir + "/" + SnapshotSegmentFileName(0, 1);
  const std::string bytes = ReadAll(victim);
  WriteRaw(victim, bytes.substr(0, bytes.size() - 3));

  RecoveryReport report;
  const Result<BsiStore> recovered = BsiStore::Recover(dir, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.lost_segments, (std::vector<uint16_t>{0}));
  ASSERT_FALSE(report.errors.empty());
}

TEST(SnapshotTest, MissingOrEmptyDirIsNotFound) {
  const Result<BsiStore> missing =
      BsiStore::Recover(::testing::TempDir() + "expbsi_does_not_exist_zz");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  const std::string dir = FreshDir("snap_empty_dir");
  const Result<BsiStore> empty = BsiStore::Recover(dir);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, AllManifestsCorruptIsCorruption) {
  const std::string dir = FreshDir("snap_all_corrupt");
  ASSERT_TRUE(SnapshotWriter::Write(MakeStore(61, 2, 3), dir).ok());
  const std::string manifest = dir + "/" + SnapshotManifestName(1);
  std::string bytes = ReadAll(manifest);
  bytes[3] ^= 0x01;
  WriteRaw(manifest, bytes);

  RecoveryReport report;
  const Result<BsiStore> recovered = BsiStore::Recover(dir, &report);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kCorruption);
  EXPECT_NE(recovered.status().message().find("no valid manifest"),
            std::string::npos)
      << recovered.status().ToString();
  EXPECT_EQ(report.manifests_skipped, 1u);
}

// ---------------------------------------------------------------------------
// TieredStore fingerprint gate on recovered blobs
// ---------------------------------------------------------------------------

TEST(SnapshotTest, TieredStoreVerifiesRecoveredBlobsUnconditionally) {
  ASSERT_EQ(FaultInjector::Get(), nullptr);
  const std::string dir = FreshDir("snap_tier");
  const BsiStore store = MakeStore(71, 1, 3);
  ASSERT_TRUE(SnapshotWriter::Write(store, dir).ok());
  const Result<BsiStore> recovered = BsiStore::Recover(dir);
  ASSERT_TRUE(recovered.ok());

  TieredStore tier(&recovered.value(), /*hot_capacity_bytes=*/1u << 20);
  int fetched = 0;
  recovered.value().ForEach(
      [&](const BsiStoreKey& key, const std::string& bytes) {
        const auto blob = tier.Fetch(key);
        ASSERT_TRUE(blob.ok()) << blob.status().ToString();
        EXPECT_EQ(*blob.value(), bytes);
        ++fetched;
      });
  ASSERT_EQ(fetched, 3);
  // Even without an installed injector, every recovered blob's cold read
  // went through the fingerprint check -- those bytes crossed a crash
  // boundary.
  EXPECT_EQ(tier.stats().fingerprint_verifications,
            static_cast<uint64_t>(fetched));
  EXPECT_EQ(tier.stats().fingerprint_mismatches, 0u);

  // A recovered blob whose bytes do NOT match the recorded fingerprint must
  // be refused, not served.
  BsiStore tampered;
  BsiStoreKey key;
  key.segment = 0;
  key.id = 7;
  tampered.PutRecovered(key, "not the original bytes",
                        BlobFingerprint("the original bytes"));
  TieredStore bad_tier(&tampered, 1u << 20);
  const auto blob = bad_tier.Fetch(key);
  ASSERT_FALSE(blob.ok());
  EXPECT_EQ(blob.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(bad_tier.stats().fingerprint_mismatches, 1u);
}

// ---------------------------------------------------------------------------
// ReconstructBsiData
// ---------------------------------------------------------------------------

TEST(SnapshotTest, ReconstructRejectsMiskeyedBlob) {
  DatasetConfig config;
  config.num_users = 200;
  config.num_segments = 2;
  config.num_days = 2;
  config.seed = 9;
  ExperimentConfig exp;
  exp.strategy_ids = {801};
  exp.arm_effects = {1.0};
  MetricConfig metric;
  metric.metric_id = 901;
  const Dataset dataset = GenerateDataset(config, {exp}, {metric}, {});
  const ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);
  BsiStore store = BuildColdStore(bsi);

  // Re-home one metric blob under a wrong metric id: the decoded payload
  // then contradicts its key, which must fail loudly instead of silently
  // serving metric 999's numbers from metric 901's data.
  BsiStoreKey victim;
  bool found = false;
  store.ForEach([&](const BsiStoreKey& key, const std::string&) {
    if (!found && key.kind == BsiKind::kMetric) {
      victim = key;
      found = true;
    }
  });
  ASSERT_TRUE(found);
  const std::string bytes = *store.Get(victim).value();
  BsiStoreKey wrong = victim;
  wrong.id = 999;
  store.Put(wrong, bytes);

  const Result<ExperimentBsiData> rebuilt = ReconstructBsiData(
      store, bsi.num_segments, bsi.num_buckets, bsi.bucket_equals_segment);
  ASSERT_FALSE(rebuilt.ok());
  EXPECT_EQ(rebuilt.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Ad-hoc cluster cold start
// ---------------------------------------------------------------------------

class ClusterColdStartTest : public ::testing::Test {
 protected:
  static constexpr Date kLo = 5;
  static constexpr Date kHi = 7;

  static void SetUpTestSuite() {
    DatasetConfig config;
    config.num_users = 1500;
    config.num_segments = 4;
    config.num_days = 3;
    config.start_date = kLo;
    config.seed = 77;
    ExperimentConfig exp;
    exp.strategy_ids = {801, 802};
    exp.arm_effects = {1.0, 1.1};
    MetricConfig metric;
    metric.metric_id = 901;
    metric.value_range = 50;
    metric.daily_participation = 0.4;
    dataset_ = new Dataset(GenerateDataset(config, {exp}, {metric}, {}));
    bsi_ = new ExperimentBsiData(BuildExperimentBsiData(*dataset_, true));
  }

  static void TearDownTestSuite() {
    delete bsi_;
    delete dataset_;
    bsi_ = nullptr;
    dataset_ = nullptr;
  }

  static Result<AdhocCluster::QueryStats> Query(AdhocCluster& cluster) {
    return cluster.QueryBsi({801, 802}, {901}, kLo, kHi);
  }

  static Dataset* dataset_;
  static ExperimentBsiData* bsi_;
};

Dataset* ClusterColdStartTest::dataset_ = nullptr;
ExperimentBsiData* ClusterColdStartTest::bsi_ = nullptr;

TEST_F(ClusterColdStartTest, ColdStartServesIdenticalScorecards) {
  const std::string dir = FreshDir("cluster_cold_start");

  AdhocCluster baseline(dataset_, bsi_, AdhocClusterConfig{});
  const auto want = Query(baseline);
  ASSERT_TRUE(want.ok());

  // First boot: nothing on disk, builds from `bsi` and commits a snapshot.
  AdhocClusterConfig config;
  config.snapshot_dir = dir;
  AdhocCluster builder(dataset_, bsi_, config);
  EXPECT_FALSE(builder.cold_started_from_snapshot());
  ASSERT_TRUE(builder.snapshot_write_status().ok())
      << builder.snapshot_write_status().ToString();
  ASSERT_EQ(SnapshotReader::ListManifestVersions(dir).size(), 1u);

  // Second boot: no dataset, no bsi -- the warehouse comes entirely from
  // the snapshot, and the scorecard must be bit-identical.
  AdhocCluster restarted(nullptr, nullptr, config);
  EXPECT_TRUE(restarted.cold_started_from_snapshot());
  EXPECT_TRUE(restarted.recovery_report().fully_recovered());
  EXPECT_EQ(restarted.num_segments(), dataset_->config.num_segments);
  const auto got = Query(restarted);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_FALSE(got.value().degraded.degraded());
  ASSERT_EQ(got.value().results.size(), want.value().results.size());
  for (const auto& [pair, values] : want.value().results) {
    const BucketValues& g = got.value().results.at(pair);
    EXPECT_EQ(g.sums, values.sums) << pair.first << "/" << pair.second;
    EXPECT_EQ(g.counts, values.counts) << pair.first << "/" << pair.second;
  }
}

TEST_F(ClusterColdStartTest, LostSegmentsAreDegradedNeverSilent) {
  const std::string dir = FreshDir("cluster_cold_start_lost");
  AdhocClusterConfig config;
  config.snapshot_dir = dir;
  {
    AdhocCluster builder(dataset_, bsi_, config);
    ASSERT_TRUE(builder.snapshot_write_status().ok());
  }
  // Flip a bit in segment 2's file: recovery quarantines it.
  const std::string victim = dir + "/" + SnapshotSegmentFileName(2, 1);
  std::string bytes = ReadAll(victim);
  bytes[bytes.size() - 5] ^= 0x04;
  WriteRaw(victim, bytes);

  // Strict mode refuses to serve a scorecard biased by a missing segment.
  AdhocCluster strict(nullptr, nullptr, config);
  ASSERT_TRUE(strict.cold_started_from_snapshot());
  EXPECT_EQ(strict.recovery_report().lost_segments,
            (std::vector<uint16_t>{2}));
  const auto refused = Query(strict);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCorruption);

  // Degraded mode serves, flags segment 2, and every other segment matches
  // the fault-free scorecard bit for bit.
  AdhocCluster baseline(dataset_, bsi_, AdhocClusterConfig{});
  const auto want = Query(baseline);
  ASSERT_TRUE(want.ok());
  AdhocClusterConfig degraded_config = config;
  degraded_config.allow_degraded = true;
  AdhocCluster degraded(nullptr, nullptr, degraded_config);
  const auto got = Query(degraded);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().degraded.lost_segments, (std::vector<int>{2}));
  for (const auto& [pair, values] : want.value().results) {
    const BucketValues& g = got.value().results.at(pair);
    ASSERT_EQ(g.sums.size(), values.sums.size());
    for (size_t seg = 0; seg < values.sums.size(); ++seg) {
      if (seg == 2) {
        EXPECT_EQ(g.sums[seg], 0.0);
        EXPECT_EQ(g.counts[seg], 0.0);
      } else {
        EXPECT_EQ(g.sums[seg], values.sums[seg]) << "segment " << seg;
        EXPECT_EQ(g.counts[seg], values.counts[seg]) << "segment " << seg;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pipeline snapshot publication
// ---------------------------------------------------------------------------

TEST_F(ClusterColdStartTest, PipelinePublishesOnlyCleanBatches) {
  const std::string dir = FreshDir("pipeline_publish");
  PrecomputeConfig config;
  config.num_threads = 2;
  config.snapshot_dir = dir;
  const std::vector<StrategyMetricPair> pairs = {{801, 901}, {802, 901}};

  {
    PrecomputePipeline pipeline(dataset_, bsi_, config);
    const PrecomputeStats stats = pipeline.RunBsi(pairs, kLo, kHi);
    ASSERT_TRUE(stats.failed_pairs.empty());
    EXPECT_TRUE(stats.snapshot_written);
    EXPECT_EQ(stats.snapshot_version, 1u);
    EXPECT_TRUE(stats.snapshot_error.empty()) << stats.snapshot_error;
  }
  {
    // Daily rebuild: the next clean batch commits the next version.
    PrecomputePipeline pipeline(dataset_, bsi_, config);
    const PrecomputeStats stats = pipeline.RunBsi(pairs, kLo, kHi);
    EXPECT_TRUE(stats.snapshot_written);
    EXPECT_EQ(stats.snapshot_version, 2u);
  }
  {
    // A batch with failed pairs must NOT publish a stale warehouse.
    PrecomputeConfig no_retry = config;
    no_retry.retry.max_attempts = 1;
    PrecomputePipeline pipeline(dataset_, bsi_, no_retry);
    FaultInjector injector(3);
    injector.SetFailProbability(fault_sites::kPipelineTask, 1.0);
    ScopedFaultInjection scoped(&injector);
    const PrecomputeStats stats = pipeline.RunBsi(pairs, kLo, kHi);
    ASSERT_FALSE(stats.failed_pairs.empty());
    EXPECT_FALSE(stats.snapshot_written);
  }
  EXPECT_EQ(SnapshotReader::ListManifestVersions(dir),
            (std::vector<uint64_t>{1, 2}));
  const Result<BsiStore> recovered = BsiStore::Recover(dir);
  ASSERT_TRUE(recovered.ok());
  ExpectBitIdentical(recovered.value(), BuildColdStore(*bsi_), "published");
}

// ---------------------------------------------------------------------------
// Differential round trip (satellite of the chaos/differential harness):
// snapshot -> drop -> recover -> reconstruct -> full query engine, against
// the scalar oracle. Exact equality, same as differential_test.cc.
// ---------------------------------------------------------------------------

void RunSnapshotDifferentialIteration(uint64_t seed, const std::string& dir) {
  Rng rng(seed);
  const propgen::FuzzDataset fd = propgen::GenDataset(rng);
  const ExperimentBsiData bsi =
      BuildExperimentBsiData(fd.dataset, fd.engagement_ordered);
  const RefExperimentData ref = BuildRefExperimentData(fd.dataset);
  const std::string ctx =
      "snapshot differential seed=" + std::to_string(seed);

  const BsiStore store = BuildColdStore(bsi);
  const Result<SnapshotWriteStats> written = SnapshotWriter::Write(store, dir);
  ASSERT_TRUE(written.ok()) << ctx << ": " << written.status().ToString();
  RecoveryReport report;
  const Result<BsiStore> recovered = BsiStore::Recover(dir, &report);
  ASSERT_TRUE(recovered.ok()) << ctx << ": " << recovered.status().ToString();
  ASSERT_TRUE(report.fully_recovered()) << ctx;
  ExpectBitIdentical(recovered.value(), store, ctx);

  const Result<ExperimentBsiData> rebuilt =
      ReconstructBsiData(recovered.value(), bsi.num_segments, bsi.num_buckets,
                         bsi.bucket_equals_segment);
  ASSERT_TRUE(rebuilt.ok()) << ctx << ": " << rebuilt.status().ToString();

  for (int i = 0; i < 3; ++i) {
    const std::string text = propgen::GenQuery(rng, fd.dataset);
    const Result<QueryResult> got = RunQuery(rebuilt.value(), text);
    const Result<QueryResult> want = RefRunQuery(ref, text);
    ASSERT_EQ(got.ok(), want.ok())
        << ctx << " [" << text << "]\n  recovered: "
        << got.status().ToString() << "\n  ref: " << want.status().ToString();
    if (!got.ok()) {
      EXPECT_EQ(got.status().message(), want.status().message()) << ctx;
      continue;
    }
    EXPECT_EQ(got.value().columns, want.value().columns) << ctx;
    EXPECT_EQ(got.value().row, want.value().row) << ctx << " [" << text << "]";
    EXPECT_EQ(got.value().per_bucket, want.value().per_bucket) << ctx;
  }
}

TEST(SnapshotDifferentialTest, RecoveredWarehouseMatchesScalarOracle) {
  uint64_t x = 0x5eedf11eull;
  for (int i = 0; i < 8; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    uint64_t s = x;
    s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9ull;
    s = (s ^ (s >> 27)) * 0x94d049bb133111ebull;
    const std::string dir = FreshDir("snap_diff_" + std::to_string(i));
    RunSnapshotDifferentialIteration(s ^ (s >> 31), dir);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace expbsi
