#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "bsi/bsi.h"
#include "bsi/bsi_aggregate.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "tests/test_util.h"

namespace expbsi {
namespace {

using testing_util::RandomValueMap;
using testing_util::ToPairVector;

using ValueMap = std::map<uint32_t, uint64_t>;

std::set<uint32_t> ToSet(const RoaringBitmap& bm) {
  std::set<uint32_t> out;
  bm.ForEach([&out](uint32_t v) { out.insert(v); });
  return out;
}

TEST(BsiCompareBasic, AlgorithmSemanticsRequireBothPresent) {
  // X has 10 at position 1 only; Y has 5 at positions 1 and 2.
  Bsi x = Bsi::FromPairs({{1, 10}});
  Bsi y = Bsi::FromPairs({{1, 5}, {2, 5}});
  // Position 2 exists only in Y: no comparison result there.
  EXPECT_EQ(ToSet(Bsi::Lt(x, y)), std::set<uint32_t>{});
  EXPECT_EQ(ToSet(Bsi::Gt(x, y)), std::set<uint32_t>{1});
  EXPECT_EQ(ToSet(Bsi::Ne(x, y)), std::set<uint32_t>{1});
  EXPECT_EQ(ToSet(Bsi::Eq(x, y)), std::set<uint32_t>{});
  EXPECT_EQ(ToSet(Bsi::Le(x, y)), std::set<uint32_t>{});
  EXPECT_EQ(ToSet(Bsi::Ge(x, y)), std::set<uint32_t>{1});
}

TEST(BsiCompareBasic, EqualValues) {
  Bsi x = Bsi::FromPairs({{1, 7}, {2, 9}});
  Bsi y = Bsi::FromPairs({{1, 7}, {2, 8}});
  EXPECT_EQ(ToSet(Bsi::Eq(x, y)), std::set<uint32_t>{1});
  EXPECT_EQ(ToSet(Bsi::Ne(x, y)), std::set<uint32_t>{2});
  EXPECT_EQ(ToSet(Bsi::Le(x, y)), std::set<uint32_t>{1});
  EXPECT_EQ(ToSet(Bsi::Ge(x, y)), (std::set<uint32_t>{1, 2}));
}

TEST(BsiCompareBasic, DifferentSliceCounts) {
  // X values need 3 slices, Y values need 10: the shorter operand's missing
  // slices count as zeros.
  Bsi x = Bsi::FromPairs({{1, 7}, {2, 7}});
  Bsi y = Bsi::FromPairs({{1, 700}, {2, 3}});
  EXPECT_EQ(ToSet(Bsi::Lt(x, y)), std::set<uint32_t>{1});
  EXPECT_EQ(ToSet(Bsi::Gt(x, y)), std::set<uint32_t>{2});
}

class BsiCompareTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    // Small value range so equality cases are common.
    map_x_ = RandomValueMap(rng, 4000, 30000, 64);
    map_y_ = RandomValueMap(rng, 4000, 30000, 64);
    x_ = Bsi::FromPairs(ToPairVector(map_x_));
    y_ = Bsi::FromPairs(ToPairVector(map_y_));
  }

  // Positions present in both maps where pred(x, y) holds.
  template <typename Pred>
  std::set<uint32_t> Expected(Pred pred) const {
    std::set<uint32_t> out;
    for (const auto& [pos, xv] : map_x_) {
      auto it = map_y_.find(pos);
      if (it != map_y_.end() && pred(xv, it->second)) out.insert(pos);
    }
    return out;
  }

  ValueMap map_x_, map_y_;
  Bsi x_, y_;
};

TEST_P(BsiCompareTest, AllOperators) {
  EXPECT_EQ(ToSet(Bsi::Lt(x_, y_)),
            Expected([](uint64_t a, uint64_t b) { return a < b; }));
  EXPECT_EQ(ToSet(Bsi::Le(x_, y_)),
            Expected([](uint64_t a, uint64_t b) { return a <= b; }));
  EXPECT_EQ(ToSet(Bsi::Gt(x_, y_)),
            Expected([](uint64_t a, uint64_t b) { return a > b; }));
  EXPECT_EQ(ToSet(Bsi::Ge(x_, y_)),
            Expected([](uint64_t a, uint64_t b) { return a >= b; }));
  EXPECT_EQ(ToSet(Bsi::Eq(x_, y_)),
            Expected([](uint64_t a, uint64_t b) { return a == b; }));
  EXPECT_EQ(ToSet(Bsi::Ne(x_, y_)),
            Expected([](uint64_t a, uint64_t b) { return a != b; }));
}

TEST_P(BsiCompareTest, PartitionProperty) {
  // Lt, Eq, Gt partition the both-present positions.
  RoaringBitmap both =
      RoaringBitmap::And(x_.existence(), y_.existence());
  RoaringBitmap lt = Bsi::Lt(x_, y_);
  RoaringBitmap eq = Bsi::Eq(x_, y_);
  RoaringBitmap gt = Bsi::Gt(x_, y_);
  EXPECT_EQ(lt.Cardinality() + eq.Cardinality() + gt.Cardinality(),
            both.Cardinality());
  EXPECT_FALSE(RoaringBitmap::Intersects(lt, eq));
  EXPECT_FALSE(RoaringBitmap::Intersects(lt, gt));
  EXPECT_FALSE(RoaringBitmap::Intersects(eq, gt));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BsiCompareTest,
                         ::testing::Values(31, 32, 33, 34, 35));

// --- Range searches against constants --------------------------------------

struct RangeCase {
  uint64_t seed;
  uint64_t k;
  uint64_t max_value;
};

class BsiRangeTest : public ::testing::TestWithParam<RangeCase> {};

TEST_P(BsiRangeTest, AllRangeOperators) {
  const RangeCase& param = GetParam();
  Rng rng(param.seed);
  ValueMap values = RandomValueMap(rng, 5000, 40000, param.max_value);
  Bsi bsi = Bsi::FromPairs(ToPairVector(values));
  const uint64_t k = param.k;

  auto expected = [&values](auto pred) {
    std::set<uint32_t> out;
    for (const auto& [pos, v] : values) {
      if (pred(v)) out.insert(pos);
    }
    return out;
  };
  EXPECT_EQ(ToSet(bsi.RangeEq(k)),
            expected([k](uint64_t v) { return v == k; }));
  EXPECT_EQ(ToSet(bsi.RangeNe(k)),
            expected([k](uint64_t v) { return v != k; }));
  EXPECT_EQ(ToSet(bsi.RangeLt(k)),
            expected([k](uint64_t v) { return v < k; }));
  EXPECT_EQ(ToSet(bsi.RangeLe(k)),
            expected([k](uint64_t v) { return v <= k; }));
  EXPECT_EQ(ToSet(bsi.RangeGt(k)),
            expected([k](uint64_t v) { return v > k; }));
  EXPECT_EQ(ToSet(bsi.RangeGe(k)),
            expected([k](uint64_t v) { return v >= k; }));
  EXPECT_EQ(ToSet(bsi.RangeBetween(k / 2, k)),
            expected([k](uint64_t v) { return v >= k / 2 && v <= k; }));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BsiRangeTest,
    ::testing::Values(RangeCase{41, 1, 16},          // boundary small
                      RangeCase{42, 8, 16},          // mid
                      RangeCase{43, 16, 16},         // max
                      RangeCase{44, 100, 16},        // k above all values
                      RangeCase{45, 500, 100000},    // sparse wide range
                      RangeCase{46, 99999, 100000},  // near max
                      RangeCase{47, 0, 50}));        // k = 0

TEST(BsiRangeEdge, ZeroConstantSemantics) {
  Bsi bsi = Bsi::FromPairs({{1, 3}, {2, 8}});
  // Every present value is > 0 and != 0; none is < 0, <= 0 or == 0.
  EXPECT_EQ(bsi.RangeGt(0).Cardinality(), 2u);
  EXPECT_EQ(bsi.RangeNe(0).Cardinality(), 2u);
  EXPECT_TRUE(bsi.RangeEq(0).IsEmpty());
  EXPECT_TRUE(bsi.RangeLt(0).IsEmpty());
  EXPECT_TRUE(bsi.RangeLe(0).IsEmpty());
  EXPECT_EQ(bsi.RangeGe(0).Cardinality(), 2u);
}

TEST(BsiRangeEdge, BetweenDegenerateBounds) {
  Bsi bsi = Bsi::FromPairs({{1, 3}, {2, 8}, {3, 200}});
  // [0, 0]: no stored value is zero (zero == absent).
  EXPECT_TRUE(bsi.RangeBetween(0, 0).IsEmpty());
  // [0, hi] degrades to <= hi.
  EXPECT_EQ(ToSet(bsi.RangeBetween(0, 8)), (std::set<uint32_t>{1, 2}));
  // lo == hi is an exact match.
  EXPECT_EQ(ToSet(bsi.RangeBetween(8, 8)), std::set<uint32_t>{2});
  // lo wider than the slice count: nothing can qualify.
  EXPECT_TRUE(bsi.RangeBetween(uint64_t{1} << 40, uint64_t{1} << 41)
                  .IsEmpty());
  // hi wider than the slice count degrades to >= lo.
  EXPECT_EQ(ToSet(bsi.RangeBetween(4, ~uint64_t{0})),
            (std::set<uint32_t>{2, 3}));
  // Full-range bounds select everything present.
  EXPECT_EQ(ToSet(bsi.RangeBetween(0, ~uint64_t{0})),
            (std::set<uint32_t>{1, 2, 3}));
}

// One side a dense block (bitset containers), the other a sparse scatter
// (array containers) sharing the same chunks: the word kernels must take the
// dense path on one operand and expand/probe the other.
TEST(BsiCompareBasic, MixedDenseSparseContainers) {
  Rng rng(77);
  ValueMap dense_map, sparse_map;
  for (uint32_t pos = 0; pos < 30000; ++pos) {
    if (rng.NextBernoulli(0.8)) dense_map[pos] = 1 + rng.NextBounded(64);
  }
  for (int i = 0; i < 200; ++i) {
    sparse_map[static_cast<uint32_t>(rng.NextBounded(30000))] =
        1 + rng.NextBounded(64);
  }
  Bsi dense = Bsi::FromPairs(ToPairVector(dense_map));
  Bsi sparse = Bsi::FromPairs(ToPairVector(sparse_map));

  const auto expected = [&](auto pred) {
    std::set<uint32_t> out;
    for (const auto& [pos, sv] : sparse_map) {
      auto it = dense_map.find(pos);
      if (it != dense_map.end() && pred(it->second, sv)) out.insert(pos);
    }
    return out;
  };
  EXPECT_EQ(ToSet(Bsi::Lt(dense, sparse)),
            expected([](uint64_t a, uint64_t b) { return a < b; }));
  EXPECT_EQ(ToSet(Bsi::Eq(dense, sparse)),
            expected([](uint64_t a, uint64_t b) { return a == b; }));
  // Swapped argument order flips which operand drives the sparse probe.
  EXPECT_EQ(ToSet(Bsi::Lt(sparse, dense)),
            expected([](uint64_t a, uint64_t b) { return b < a; }));
}

// The word kernels and the legacy pairwise path are interchangeable: force
// each via the MultiOpKernel flag and require identical bitmaps on a
// workload with planted equalities and cross-slice differences.
TEST(BsiCompareBasic, WordAndPairwiseKernelsAgree) {
  const MultiOpKernel saved = GetMultiOpKernel();
  Rng rng(123);
  ValueMap mx = RandomValueMap(rng, 6000, 50000, 64);
  ValueMap my = RandomValueMap(rng, 6000, 50000, 64);
  // Plant exact equalities so Eq is non-trivial.
  int planted = 0;
  for (const auto& [pos, v] : mx) {
    if (my.count(pos) && ++planted % 3 == 0) my[pos] = v;
  }
  Bsi x = Bsi::FromPairs(ToPairVector(mx));
  Bsi y = Bsi::FromPairs(ToPairVector(my));

  SetMultiOpKernel(MultiOpKernel::kMultiOperand);
  const RoaringBitmap lt_w = Bsi::Lt(x, y);
  const RoaringBitmap eq_w = Bsi::Eq(x, y);
  const RoaringBitmap ne_w = Bsi::Ne(x, y);
  const RoaringBitmap le_w = Bsi::Le(x, y);
  const RoaringBitmap rb_w = x.RangeBetween(10, 40);
  SetMultiOpKernel(MultiOpKernel::kPairwise);
  EXPECT_TRUE(Bsi::Lt(x, y).Equals(lt_w));
  EXPECT_TRUE(Bsi::Eq(x, y).Equals(eq_w));
  EXPECT_TRUE(Bsi::Ne(x, y).Equals(ne_w));
  EXPECT_TRUE(Bsi::Le(x, y).Equals(le_w));
  EXPECT_TRUE(x.RangeBetween(10, 40).Equals(rb_w));
  SetMultiOpKernel(saved);
}

TEST(BsiRangeEdge, PaperFilterExample) {
  // §4.1.2: select expose info of units first exposed between the 2nd and
  // 5th day: bucket * (offset >= 2) * (offset <= 5).
  Bsi offset = Bsi::FromValues({0, 1, 2, 3, 4, 5, 6, 7});  // pos 0 absent
  RoaringBitmap mask = offset.RangeBetween(2, 5);
  EXPECT_EQ(ToSet(mask), (std::set<uint32_t>{2, 3, 4, 5}));
  Bsi filtered = Bsi::MultiplyByBinary(offset, mask);
  EXPECT_EQ(filtered.Get(2), 2u);
  EXPECT_EQ(filtered.Get(5), 5u);
  EXPECT_FALSE(filtered.Exists(6));
}

}  // namespace
}  // namespace expbsi
