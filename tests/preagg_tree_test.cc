#include "storage/preagg_tree.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "bsi/bsi_aggregate.h"
#include "common/rng.h"
#include "tests/test_util.h"

namespace expbsi {
namespace {

using testing_util::RandomValueMap;
using testing_util::ToPairVector;

std::vector<Bsi> MakeDailyLeaves(uint64_t seed, int days) {
  Rng rng(seed);
  std::vector<Bsi> leaves;
  leaves.reserve(days);
  for (int d = 0; d < days; ++d) {
    leaves.push_back(
        Bsi::FromPairs(ToPairVector(RandomValueMap(rng, 500, 5000, 100))));
  }
  return leaves;
}

PreAggTree::MergeFn SumMerge() {
  return [](const Bsi& a, const Bsi& b) { return SumBsi(a, b); };
}

TEST(PreAggTreeTest, SingleLeaf) {
  std::vector<Bsi> leaves = MakeDailyLeaves(1, 1);
  const Bsi expect = leaves[0];
  PreAggTree tree(std::move(leaves), SumMerge());
  EXPECT_TRUE(tree.Query(0, 0).Equals(expect));
}

TEST(PreAggTreeTest, QueryEqualsLinearFoldAllRanges) {
  const int days = 7;  // the Fig. 6 example size
  PreAggTree tree(MakeDailyLeaves(2, days), SumMerge());
  for (int lo = 0; lo < days; ++lo) {
    for (int hi = lo; hi < days; ++hi) {
      EXPECT_TRUE(tree.Query(lo, hi).Equals(tree.QueryLinear(lo, hi)))
          << "range [" << lo << ", " << hi << "]";
    }
  }
}

TEST(PreAggTreeTest, Figure6NodeCount) {
  // Fig. 6: sumBSI of days 1..7 (indices 0..6) merges 3 nodes (1234, 56, 7)
  // instead of 7.
  PreAggTree tree(MakeDailyLeaves(3, 7), SumMerge());
  int nodes = 0;
  tree.Query(0, 6, &nodes);
  EXPECT_EQ(nodes, 3);
  tree.Query(0, 3, &nodes);  // exactly node "1234"
  EXPECT_EQ(nodes, 1);
  tree.Query(0, 7 - 1, &nodes);
  EXPECT_EQ(nodes, 3);
}

TEST(PreAggTreeTest, NodeCountIsLogarithmic) {
  const int days = 30;  // a month, as in the pre-experiment lookback
  PreAggTree tree(MakeDailyLeaves(4, days), SumMerge());
  for (int lo = 0; lo < days; lo += 3) {
    for (int hi = lo; hi < days; hi += 5) {
      int nodes = 0;
      tree.Query(lo, hi, &nodes);
      // A segment tree touches at most 2*ceil(log2(extent)) covered nodes.
      EXPECT_LE(nodes, 2 * static_cast<int>(std::ceil(std::log2(32))));
    }
  }
}

TEST(PreAggTreeTest, NonPowerOfTwoLeafCount) {
  const int days = 29;  // Table 4's month
  PreAggTree tree(MakeDailyLeaves(5, days), SumMerge());
  EXPECT_TRUE(tree.Query(0, days - 1).Equals(tree.QueryLinear(0, days - 1)));
  EXPECT_TRUE(tree.Query(13, 27).Equals(tree.QueryLinear(13, 27)));
}

TEST(PreAggTreeTest, WorksWithMaxMerge) {
  std::vector<Bsi> leaves = MakeDailyLeaves(6, 8);
  std::vector<Bsi> copy = leaves;
  PreAggTree tree(std::move(leaves),
                  [](const Bsi& a, const Bsi& b) { return MaxBsi(a, b); });
  Bsi expect = copy[2];
  for (int d = 3; d <= 6; ++d) expect = MaxBsi(expect, copy[d]);
  EXPECT_TRUE(tree.Query(2, 6).Equals(expect));
}

TEST(PreAggTreeTest, EmptyLeavesAreIdentity) {
  std::vector<Bsi> leaves(5);
  leaves[2] = Bsi::FromValues({1, 2, 3});
  PreAggTree tree(std::move(leaves), SumMerge());
  EXPECT_TRUE(tree.Query(0, 4).Equals(Bsi::FromValues({1, 2, 3})));
  EXPECT_TRUE(tree.Query(0, 1).IsEmpty());
}

}  // namespace
}  // namespace expbsi
