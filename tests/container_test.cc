#include "roaring/container.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace expbsi {
namespace {

Container FromValues(const std::set<uint16_t>& values) {
  std::vector<uint16_t> sorted(values.begin(), values.end());
  return Container::FromSorted(sorted.data(), static_cast<int>(sorted.size()));
}

std::set<uint16_t> ToSet(const Container& c) {
  std::set<uint16_t> out;
  c.ForEach([&out](uint16_t v) { out.insert(v); });
  return out;
}

TEST(ContainerTest, EmptyContainer) {
  Container c;
  EXPECT_TRUE(c.IsEmpty());
  EXPECT_EQ(c.Cardinality(), 0);
  EXPECT_FALSE(c.Contains(0));
  EXPECT_FALSE(c.Contains(65535));
  EXPECT_EQ(c.type(), ContainerType::kArray);
}

TEST(ContainerTest, AddContainsRemove) {
  Container c;
  c.Add(5);
  c.Add(100);
  c.Add(5);  // duplicate
  EXPECT_EQ(c.Cardinality(), 2);
  EXPECT_TRUE(c.Contains(5));
  EXPECT_TRUE(c.Contains(100));
  EXPECT_FALSE(c.Contains(6));
  c.Remove(5);
  EXPECT_FALSE(c.Contains(5));
  EXPECT_EQ(c.Cardinality(), 1);
  c.Remove(5);  // absent removal is a no-op
  EXPECT_EQ(c.Cardinality(), 1);
}

TEST(ContainerTest, ArrayToBitmapPromotion) {
  Container c;
  for (int i = 0; i < Container::kArrayMaxCardinality + 1; ++i) {
    c.Add(static_cast<uint16_t>(i));
  }
  EXPECT_EQ(c.type(), ContainerType::kBitmap);
  EXPECT_EQ(c.Cardinality(), Container::kArrayMaxCardinality + 1);
  for (int i = 0; i <= Container::kArrayMaxCardinality; ++i) {
    EXPECT_TRUE(c.Contains(static_cast<uint16_t>(i)));
  }
}

TEST(ContainerTest, BitmapToArrayDemotionOnRemove) {
  Container c;
  for (int i = 0; i < Container::kArrayMaxCardinality + 1; ++i) {
    c.Add(static_cast<uint16_t>(i));
  }
  ASSERT_EQ(c.type(), ContainerType::kBitmap);
  c.Remove(0);
  EXPECT_EQ(c.type(), ContainerType::kArray);
  EXPECT_EQ(c.Cardinality(), Container::kArrayMaxCardinality);
}

TEST(ContainerTest, AddRangeOnEmptyMakesRun) {
  Container c;
  c.AddRange(10, 1000);
  EXPECT_EQ(c.type(), ContainerType::kRun);
  EXPECT_EQ(c.Cardinality(), 990);
  EXPECT_TRUE(c.Contains(10));
  EXPECT_TRUE(c.Contains(999));
  EXPECT_FALSE(c.Contains(9));
  EXPECT_FALSE(c.Contains(1000));
}

TEST(ContainerTest, AddRangeFullDomain) {
  Container c;
  c.AddRange(0, 65536);
  EXPECT_EQ(c.Cardinality(), 65536);
  EXPECT_TRUE(c.Contains(0));
  EXPECT_TRUE(c.Contains(65535));
}

TEST(ContainerTest, RunOptimizeChoosesRunWhenDense) {
  Container c;
  for (int i = 100; i < 60000; ++i) c.Add(static_cast<uint16_t>(i));
  ASSERT_EQ(c.type(), ContainerType::kBitmap);
  c.RunOptimize();
  EXPECT_EQ(c.type(), ContainerType::kRun);
  EXPECT_EQ(c.Cardinality(), 59900);
  EXPECT_TRUE(c.Contains(100));
  EXPECT_TRUE(c.Contains(59999));
  EXPECT_FALSE(c.Contains(99));
}

TEST(ContainerTest, RunOptimizeKeepsArrayWhenSparse) {
  Container c;
  for (int i = 0; i < 100; ++i) c.Add(static_cast<uint16_t>(i * 601));
  c.RunOptimize();
  EXPECT_EQ(c.type(), ContainerType::kArray);
}

TEST(ContainerTest, RunAddAfterOptimizeConvertsBack) {
  Container c;
  c.AddRange(0, 100);
  ASSERT_EQ(c.type(), ContainerType::kRun);
  c.Add(500);
  EXPECT_TRUE(c.Contains(500));
  EXPECT_TRUE(c.Contains(50));
  EXPECT_EQ(c.Cardinality(), 101);
}

TEST(ContainerTest, RankSelectMinimumMaximum) {
  Container c;
  for (uint16_t v : {5, 10, 20, 300}) c.Add(v);
  EXPECT_EQ(c.Rank(4), 0);
  EXPECT_EQ(c.Rank(5), 1);
  EXPECT_EQ(c.Rank(15), 2);
  EXPECT_EQ(c.Rank(65535), 4);
  EXPECT_EQ(c.Select(0), 5);
  EXPECT_EQ(c.Select(3), 300);
  EXPECT_EQ(c.Minimum(), 5);
  EXPECT_EQ(c.Maximum(), 300);
}

TEST(ContainerTest, EqualsAcrossRepresentations) {
  Container run;
  run.AddRange(0, 5000);
  Container bitmap;
  for (int i = 0; i < 5000; ++i) bitmap.Add(static_cast<uint16_t>(i));
  ASSERT_NE(run.type(), bitmap.type());
  EXPECT_TRUE(run.Equals(bitmap));
  EXPECT_TRUE(bitmap.Equals(run));
  bitmap.Remove(1234);
  EXPECT_FALSE(run.Equals(bitmap));
}

TEST(ContainerTest, SerializeRoundTripAllTypes) {
  std::vector<Container> cases;
  {
    Container array;
    for (uint16_t v : {1, 5, 9, 60000}) array.Add(v);
    cases.push_back(array);
  }
  {
    Container bitmap;
    for (int i = 0; i < 5000; ++i) bitmap.Add(static_cast<uint16_t>(i * 13));
    cases.push_back(bitmap);
  }
  {
    Container run;
    run.AddRange(100, 50000);
    cases.push_back(run);
  }
  for (const Container& original : cases) {
    std::string bytes;
    original.Serialize(&bytes);
    const uint8_t* cursor = reinterpret_cast<const uint8_t*>(bytes.data());
    const uint8_t* end = cursor + bytes.size();
    Result<Container> parsed = Container::Deserialize(&cursor, end);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_TRUE(parsed.value().Equals(original));
    EXPECT_EQ(cursor, end);
  }
}

TEST(ContainerTest, DeserializeRejectsCorruption) {
  Container c;
  c.Add(42);
  std::string bytes;
  c.Serialize(&bytes);
  // Truncated payload.
  std::string truncated = bytes.substr(0, bytes.size() - 1);
  const uint8_t* cursor = reinterpret_cast<const uint8_t*>(truncated.data());
  EXPECT_FALSE(
      Container::Deserialize(&cursor, cursor + truncated.size()).ok());
  // Bad type byte.
  std::string bad_type = bytes;
  bad_type[0] = 7;
  cursor = reinterpret_cast<const uint8_t*>(bad_type.data());
  EXPECT_FALSE(Container::Deserialize(&cursor, cursor + bad_type.size()).ok());
}

// ---------------------------------------------------------------------------
// Property tests: every (op, representation pair) against std::set algebra.

enum class Repr { kArray, kBitmap, kRun };

struct OpCase {
  uint64_t seed;
  Repr repr_a;
  Repr repr_b;
};

class ContainerOpTest : public ::testing::TestWithParam<OpCase> {
 protected:
  // Generates a set shaped so FromValues lands on the requested
  // representation, then coerces explicitly where needed.
  static std::pair<Container, std::set<uint16_t>> Make(Rng& rng, Repr repr) {
    std::set<uint16_t> values;
    switch (repr) {
      case Repr::kArray:
        for (int i = 0; i < 600; ++i) {
          values.insert(static_cast<uint16_t>(rng.NextBounded(65536)));
        }
        break;
      case Repr::kBitmap:
        for (int i = 0; i < 9000; ++i) {
          values.insert(static_cast<uint16_t>(rng.NextBounded(30000)));
        }
        break;
      case Repr::kRun: {
        // A few dense runs.
        for (int r = 0; r < 5; ++r) {
          const uint32_t start =
              static_cast<uint32_t>(rng.NextBounded(60000));
          const uint32_t len = 200 + static_cast<uint32_t>(
                                         rng.NextBounded(2000));
          for (uint32_t v = start; v < std::min(start + len, 65536u); ++v) {
            values.insert(static_cast<uint16_t>(v));
          }
        }
        break;
      }
    }
    Container c = FromValues(values);
    if (repr == Repr::kRun) c.RunOptimize();
    return {std::move(c), std::move(values)};
  }
};

TEST_P(ContainerOpTest, MatchesSetAlgebra) {
  const OpCase& param = GetParam();
  Rng rng(param.seed);
  auto [a, set_a] = Make(rng, param.repr_a);
  auto [b, set_b] = Make(rng, param.repr_b);

  std::set<uint16_t> expect_and, expect_or, expect_xor, expect_andnot;
  std::set_intersection(set_a.begin(), set_a.end(), set_b.begin(),
                        set_b.end(),
                        std::inserter(expect_and, expect_and.begin()));
  std::set_union(set_a.begin(), set_a.end(), set_b.begin(), set_b.end(),
                 std::inserter(expect_or, expect_or.begin()));
  std::set_symmetric_difference(
      set_a.begin(), set_a.end(), set_b.begin(), set_b.end(),
      std::inserter(expect_xor, expect_xor.begin()));
  std::set_difference(set_a.begin(), set_a.end(), set_b.begin(), set_b.end(),
                      std::inserter(expect_andnot, expect_andnot.begin()));

  EXPECT_EQ(ToSet(Container::And(a, b)), expect_and);
  EXPECT_EQ(ToSet(Container::Or(a, b)), expect_or);
  EXPECT_EQ(ToSet(Container::Xor(a, b)), expect_xor);
  EXPECT_EQ(ToSet(Container::AndNot(a, b)), expect_andnot);
  EXPECT_EQ(Container::AndCardinality(a, b),
            static_cast<int>(expect_and.size()));
  EXPECT_EQ(Container::Intersects(a, b), !expect_and.empty());

  // Cardinality bookkeeping after ops.
  EXPECT_EQ(Container::And(a, b).Cardinality(),
            static_cast<int>(expect_and.size()));
  EXPECT_EQ(Container::Or(a, b).Cardinality(),
            static_cast<int>(expect_or.size()));
  EXPECT_EQ(Container::Xor(a, b).Cardinality(),
            static_cast<int>(expect_xor.size()));
  EXPECT_EQ(Container::AndNot(a, b).Cardinality(),
            static_cast<int>(expect_andnot.size()));
}

std::vector<OpCase> AllReprPairs() {
  std::vector<OpCase> cases;
  uint64_t seed = 1000;
  for (Repr a : {Repr::kArray, Repr::kBitmap, Repr::kRun}) {
    for (Repr b : {Repr::kArray, Repr::kBitmap, Repr::kRun}) {
      for (int rep = 0; rep < 3; ++rep) {
        cases.push_back(OpCase{seed++, a, b});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllRepresentationPairs, ContainerOpTest,
                         ::testing::ValuesIn(AllReprPairs()));

// Rank/Select consistency on random data across representations.
class ContainerRankSelectTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ContainerRankSelectTest, RankSelectAgree) {
  Rng rng(GetParam());
  std::set<uint16_t> values;
  const int n = 1 + static_cast<int>(rng.NextBounded(8000));
  for (int i = 0; i < n; ++i) {
    values.insert(static_cast<uint16_t>(rng.NextBounded(65536)));
  }
  Container c = FromValues(values);
  if (GetParam() % 2 == 0) c.RunOptimize();
  std::vector<uint16_t> sorted(values.begin(), values.end());
  for (int i = 0; i < static_cast<int>(sorted.size()); i += 37) {
    EXPECT_EQ(c.Select(i), sorted[i]);
    EXPECT_EQ(c.Rank(sorted[i]), i + 1);
  }
  EXPECT_EQ(c.Minimum(), sorted.front());
  EXPECT_EQ(c.Maximum(), sorted.back());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainerRankSelectTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace expbsi
