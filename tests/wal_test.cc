// Streaming-ingestion tests (DESIGN.md §8): WAL segment naming and framing,
// append/replay round-trip bit-identity, torn-tail and bitflip recovery
// taxonomy, repair-on-open, checkpoint trimming, the wal.append / wal.fsync /
// wal.roll fault-site semantics, Bsi::MergeAppend, PositionEncoder
// serialization, the deterministic event-stream ordering contract, the
// DeltaBuilder's incremental == batch guarantee, and the IngestStore's
// snapshot+WAL point-in-time recovery.
//
// The randomized ingest-vs-oracle sweeps live in wal_differential_test.cc and
// the kill-at-every-record chaos sweeps in chaos_test.cc; this file is the
// deterministic, named-scenario layer.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bsi/bsi.h"
#include "cluster/adhoc_cluster.h"
#include "cluster/precompute_pipeline.h"
#include "common/fault_injector.h"
#include "common/file_io.h"
#include "common/status.h"
#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"
#include "expdata/position_encoder.h"
#include "reference/ref_data.h"
#include "reference/ref_engine.h"
#include "storage/bsi_store.h"
#include "storage/snapshot.h"
#include "wal/delta_builder.h"
#include "wal/event_stream.h"
#include "wal/ingest_store.h"
#include "wal/wal.h"

namespace expbsi {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "expbsi_" + name;
  EXPECT_TRUE(fileio::CreateDirIfMissing(dir).ok());
  const Result<std::vector<std::string>> entries = fileio::ListDir(dir);
  EXPECT_TRUE(entries.ok());
  for (const std::string& entry : entries.value()) {
    EXPECT_TRUE(fileio::RemoveFileIfExists(dir + "/" + entry).ok());
  }
  return dir;
}

WalEvent MakeEvent(WalEventKind kind, uint64_t id, UnitId unit, Date date,
                   uint64_t value, UnitId randomization = 0) {
  WalEvent event;
  event.kind = kind;
  event.id = id;
  event.analysis_unit_id = unit;
  event.randomization_unit_id = randomization;
  event.date = date;
  event.value = value;
  return event;
}

// Deterministic varied-field record payloads (tag differentiates records).
std::vector<WalEvent> MakeEvents(int count, uint64_t tag) {
  std::vector<WalEvent> events;
  for (int i = 0; i < count; ++i) {
    events.push_back(MakeEvent(
        static_cast<WalEventKind>(i % 3), /*id=*/500 + tag,
        /*unit=*/tag * 1000 + i, /*date=*/static_cast<Date>(10 + i),
        /*value=*/i == 0 ? ~0ull : tag * 7 + i, /*randomization=*/tag));
  }
  return events;
}

std::string OnlySegmentPath(const std::string& dir) {
  const Result<std::vector<std::string>> entries = fileio::ListDir(dir);
  EXPECT_TRUE(entries.ok());
  std::vector<std::string> segments;
  for (const std::string& name : entries.value()) {
    uint64_t first = 0;
    if (ParseWalSegmentFileName(name, &first)) segments.push_back(name);
  }
  EXPECT_EQ(segments.size(), 1u);
  return dir + "/" + segments[0];
}

int CountSegments(const std::string& dir) {
  const Result<std::vector<std::string>> entries = fileio::ListDir(dir);
  EXPECT_TRUE(entries.ok());
  int n = 0;
  for (const std::string& name : entries.value()) {
    uint64_t first = 0;
    if (ParseWalSegmentFileName(name, &first)) ++n;
  }
  return n;
}

// Writes three records with 1, 2 and 3 events into one segment and returns
// its raw bytes plus the appended records. Byte layout (record size is
// kWalRecordHeaderBytes + count * kWalEventBytes + 4 = 24 + 37 * count):
//   [0, 20)    segment header
//   [20, 81)   record 1 (1 event, 61 bytes)
//   [81, 179)  record 2 (2 events, 98 bytes)
//   [179, 314) record 3 (3 events, 135 bytes)
std::string WriteThreeRecordSegment(const std::string& dir,
                                    std::vector<WalRecord>* appended) {
  WalOptions options;
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, options);
  EXPECT_TRUE(writer.ok());
  appended->clear();
  for (int count = 1; count <= 3; ++count) {
    WalRecord record;
    record.events = MakeEvents(count, /*tag=*/count);
    Result<uint64_t> seq = writer.value()->Append(record.events);
    EXPECT_TRUE(seq.ok());
    record.sequence = seq.value();
    appended->push_back(std::move(record));
  }
  writer.value().reset();
  const std::string path = OnlySegmentPath(dir);
  Result<std::string> bytes = fileio::ReadFileToString(path, 1u << 20);
  EXPECT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value().size(), 314u);
  return bytes.value();
}

void ExpectRecordsEq(const std::vector<WalRecord>& got,
                     const std::vector<WalRecord>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].sequence, want[i].sequence) << "record " << i;
    EXPECT_EQ(got[i].events, want[i].events) << "record " << i;
  }
}

void ExpectBucketValuesEq(const BucketValues& got, const BucketValues& want) {
  EXPECT_EQ(got.sums, want.sums);
  EXPECT_EQ(got.counts, want.counts);
}

// Small dataset with two strategies, two metrics and a dimension -- enough
// to exercise every event kind through the delta path.
Dataset MakeSmallDataset(uint64_t seed, int num_segments, int num_buckets,
                         bool bucket_equals_segment) {
  DatasetConfig config;
  config.num_users = 60;
  config.num_segments = num_segments;
  config.num_buckets = num_buckets;
  config.bucket_equals_segment = bucket_equals_segment;
  config.start_date = 10;
  config.num_days = 3;
  config.seed = seed;
  ExperimentConfig experiment;
  experiment.strategy_ids = {901, 902};
  experiment.arm_effects = {1.0, 1.15};
  experiment.traffic_fraction = 0.9;
  MetricConfig metric_a;
  metric_a.metric_id = 601;
  metric_a.value_range = 50;
  MetricConfig metric_b;
  metric_b.metric_id = 602;
  metric_b.value_range = 8;
  metric_b.daily_participation = 0.5;
  DimensionConfig dim;
  dim.dimension_id = 11;
  dim.cardinality = 4;
  return GenerateDataset(config, {experiment}, {metric_a, metric_b}, {dim});
}

ExperimentBsiData MakeEmptyShaped(int num_segments, int num_buckets,
                                  bool bucket_equals_segment) {
  ExperimentBsiData data;
  data.num_segments = num_segments;
  data.num_buckets = num_buckets;
  data.bucket_equals_segment = bucket_equals_segment;
  data.segments.resize(num_segments);
  return data;
}

// Replays the dataset's event stream through a DeltaBuilder in batches of
// `batch_events` and merges after every batch.
ExperimentBsiData IngestThroughDeltas(const Dataset& dataset,
                                      size_t batch_events) {
  const std::vector<WalEvent> events = MakeWalEventStream(dataset);
  DeltaBuilder builder(dataset.config.num_segments, dataset.config.num_buckets,
                       dataset.config.bucket_equals_segment);
  ExperimentBsiData data =
      MakeEmptyShaped(dataset.config.num_segments, dataset.config.num_buckets,
                      dataset.config.bucket_equals_segment);
  for (const std::vector<WalEvent>& batch :
       BatchWalEvents(events, batch_events)) {
    for (const WalEvent& event : batch) builder.Add(event);
    builder.MergeInto(&data);
  }
  return data;
}

// ---------------------------------------------------------------------------
// Segment file names
// ---------------------------------------------------------------------------

TEST(WalSegmentNameTest, RoundTrip) {
  EXPECT_EQ(WalSegmentFileName(0x1234), "wal-0000000000001234.log");
  for (uint64_t seq : {0ull, 1ull, 255ull, 0xdeadbeefull, ~0ull}) {
    uint64_t parsed = 0;
    EXPECT_TRUE(ParseWalSegmentFileName(WalSegmentFileName(seq), &parsed));
    EXPECT_EQ(parsed, seq);
  }
}

TEST(WalSegmentNameTest, RejectsNonSegmentNames) {
  uint64_t parsed = 0;
  EXPECT_FALSE(ParseWalSegmentFileName("", &parsed));
  EXPECT_FALSE(ParseWalSegmentFileName("wal-123.log", &parsed));  // short hex
  EXPECT_FALSE(ParseWalSegmentFileName("wal-000000000000123z.log", &parsed));
  EXPECT_FALSE(ParseWalSegmentFileName("wal-0000000000001234.tmp", &parsed));
  EXPECT_FALSE(ParseWalSegmentFileName("snap-0000000000001234.log", &parsed));
  EXPECT_FALSE(
      ParseWalSegmentFileName("wal-00000000000012345.log", &parsed));
}

// ---------------------------------------------------------------------------
// Append / replay round trip
// ---------------------------------------------------------------------------

TEST(WalTest, AppendReplayRoundTrip) {
  const std::string dir = FreshDir("wal_roundtrip");
  WalOptions options;
  WalRecoveryReport open_report;
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(dir, options, &open_report);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_TRUE(open_report.clean());
  EXPECT_EQ(writer.value()->next_sequence(), 1u);

  std::vector<WalRecord> appended;
  for (int count : {1, 0, 3}) {  // an empty-events record is legal
    WalRecord record;
    record.events = MakeEvents(count, static_cast<uint64_t>(count));
    Result<uint64_t> seq = writer.value()->Append(record.events);
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    record.sequence = seq.value();
    appended.push_back(std::move(record));
  }
  EXPECT_EQ(appended[0].sequence, 1u);
  EXPECT_EQ(appended[2].sequence, 3u);
  EXPECT_TRUE(writer.value()->Sync().ok());
  writer.value().reset();

  WalRecoveryReport report;
  Result<std::vector<WalRecord>> replayed = ReplayWal(dir, &report);
  ASSERT_TRUE(replayed.ok());
  ExpectRecordsEq(replayed.value(), appended);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.segments_scanned, 1u);
  EXPECT_EQ(report.records_replayed, 3u);
  EXPECT_EQ(report.events_replayed, 4u);
  EXPECT_EQ(report.last_sequence, 3u);
  EXPECT_GT(report.bytes_replayed, kWalSegmentHeaderBytes);
}

TEST(WalTest, ReopenContinuesSequence) {
  const std::string dir = FreshDir("wal_reopen");
  WalOptions options;
  std::vector<WalRecord> appended;
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok());
    for (uint64_t tag : {1u, 2u}) {
      WalRecord record;
      record.events = MakeEvents(2, tag);
      Result<uint64_t> seq = writer.value()->Append(record.events);
      ASSERT_TRUE(seq.ok());
      record.sequence = seq.value();
      appended.push_back(std::move(record));
    }
  }
  WalRecoveryReport report;
  std::vector<WalRecord> replayed;
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(dir, options, &report, &replayed);
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE(report.clean());
  ExpectRecordsEq(replayed, appended);
  EXPECT_EQ(writer.value()->next_sequence(), 3u);
  EXPECT_EQ(writer.value()->active_first_sequence(), 3u);

  WalRecord third;
  third.events = MakeEvents(1, 3);
  Result<uint64_t> seq = writer.value()->Append(third.events);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq.value(), 3u);
  third.sequence = 3;
  appended.push_back(std::move(third));
  writer.value().reset();

  Result<std::vector<WalRecord>> final_replay = ReplayWal(dir, &report);
  ASSERT_TRUE(final_replay.ok());
  EXPECT_TRUE(report.clean());
  ExpectRecordsEq(final_replay.value(), appended);
}

TEST(WalTest, RollsSegmentsAtSizeThreshold) {
  const std::string dir = FreshDir("wal_roll");
  WalOptions options;
  options.segment_bytes = 160;  // header (20) + two 61-byte records > 160
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  std::vector<WalRecord> appended;
  for (uint64_t tag = 1; tag <= 5; ++tag) {
    WalRecord record;
    record.events = MakeEvents(1, tag);
    Result<uint64_t> seq = writer.value()->Append(record.events);
    ASSERT_TRUE(seq.ok());
    record.sequence = seq.value();
    appended.push_back(std::move(record));
  }
  EXPECT_GT(writer.value()->active_first_sequence(), 1u);
  writer.value().reset();
  EXPECT_GE(CountSegments(dir), 2);

  WalRecoveryReport report;
  Result<std::vector<WalRecord>> replayed = ReplayWal(dir, &report);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(report.clean());
  EXPECT_GE(report.segments_scanned, 2u);
  ExpectRecordsEq(replayed.value(), appended);
}

TEST(WalTest, EmptyTrailingSegmentPinsSequenceFloor) {
  const std::string dir = FreshDir("wal_floor");
  WalOptions options;
  options.segment_bytes = 160;
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok());
    for (uint64_t tag = 1; tag <= 5; ++tag) {
      ASSERT_TRUE(writer.value()->Append(MakeEvents(1, tag)).ok());
    }
  }
  {
    // Reopen starts an (empty) active segment at sequence 6, then the trim
    // removes every covered earlier segment. The record-less survivor must
    // still pin the floor: its name promises sequences >= 6.
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ(writer.value()->active_first_sequence(), 6u);
    Result<uint32_t> removed = writer.value()->TruncateThrough(5);
    ASSERT_TRUE(removed.ok());
    EXPECT_GT(removed.value(), 0u);
  }
  EXPECT_EQ(CountSegments(dir), 1);
  WalRecoveryReport report;
  std::vector<WalRecord> replayed;
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(dir, options, &report, &replayed);
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(replayed.empty());
  EXPECT_EQ(report.last_sequence, 5u);
  EXPECT_EQ(writer.value()->next_sequence(), 6u);
}

// ---------------------------------------------------------------------------
// Torn tails and bit rot
// ---------------------------------------------------------------------------

TEST(WalTest, TruncationSweepRecoversExactPrefix) {
  const std::string dir = FreshDir("wal_trunc_src");
  std::vector<WalRecord> appended;
  const std::string clean = WriteThreeRecordSegment(dir, &appended);
  // Record boundaries (offsets where a cut is a clean shorter log).
  const std::vector<size_t> boundaries = {20, 81, 179, 314};

  const std::string scratch = FreshDir("wal_trunc");
  const std::string path = scratch + "/" + WalSegmentFileName(1);
  for (size_t cut = 0; cut <= clean.size(); ++cut) {
    ASSERT_TRUE(
        fileio::WriteFileAtomic(path, clean.substr(0, cut)).ok());
    WalRecoveryReport report;
    Result<std::vector<WalRecord>> replayed = ReplayWal(scratch, &report);
    ASSERT_TRUE(replayed.ok()) << "cut " << cut;
    size_t expect_records = 0;
    for (size_t b : boundaries) {
      if (b != 20 && cut >= b) ++expect_records;
    }
    EXPECT_EQ(replayed.value().size(), expect_records) << "cut " << cut;
    for (size_t i = 0; i < replayed.value().size(); ++i) {
      EXPECT_EQ(replayed.value()[i].events, appended[i].events)
          << "cut " << cut;
    }
    const bool at_boundary =
        std::find(boundaries.begin(), boundaries.end(), cut) !=
        boundaries.end();
    if (at_boundary) {
      EXPECT_TRUE(report.clean()) << "cut " << cut;
    } else {
      EXPECT_TRUE(report.tail_torn) << "cut " << cut;
      EXPECT_FALSE(report.errors.empty()) << "cut " << cut;
    }
    if (cut < kWalSegmentHeaderBytes) {
      ASSERT_EQ(report.errors.size(), 1u);
      EXPECT_NE(report.errors[0].find("truncated segment header"),
                std::string::npos)
          << "cut " << cut;
    }
  }
}

TEST(WalTest, BitflipSweepNeverReplaysACorruptRecord) {
  const std::string dir = FreshDir("wal_flip_src");
  std::vector<WalRecord> appended;
  const std::string clean = WriteThreeRecordSegment(dir, &appended);

  const std::string scratch = FreshDir("wal_flip");
  const std::string path = scratch + "/" + WalSegmentFileName(1);
  for (size_t offset = 0; offset < clean.size(); ++offset) {
    std::string bytes = clean;
    bytes[offset] = static_cast<char>(
        static_cast<uint8_t>(bytes[offset]) ^ (1u << (offset % 8)));
    ASSERT_TRUE(fileio::WriteFileAtomic(path, bytes).ok());
    WalRecoveryReport report;
    Result<std::vector<WalRecord>> replayed = ReplayWal(scratch, &report);
    ASSERT_TRUE(replayed.ok()) << "offset " << offset;
    // CRC32C catches every single-bit flip: the flipped record (segment
    // header, record header or payload) never replays, and everything
    // before it replays bit-identically.
    size_t expect_records = 0;
    if (offset >= 81) ++expect_records;
    if (offset >= 179) ++expect_records;
    ASSERT_EQ(replayed.value().size(), expect_records) << "offset " << offset;
    for (size_t i = 0; i < replayed.value().size(); ++i) {
      EXPECT_EQ(replayed.value()[i].events, appended[i].events)
          << "offset " << offset;
    }
    EXPECT_TRUE(report.tail_torn) << "offset " << offset;
    EXPECT_FALSE(report.errors.empty()) << "offset " << offset;
  }
}

TEST(WalTest, OpenRepairsTornTailAndContinues) {
  const std::string dir = FreshDir("wal_repair");
  std::vector<WalRecord> appended;
  const std::string clean = WriteThreeRecordSegment(dir, &appended);
  // Tear mid-record-3.
  const std::string path = OnlySegmentPath(dir);
  ASSERT_TRUE(fileio::WriteFileAtomic(path, clean.substr(0, 200)).ok());

  WalOptions options;
  WalRecoveryReport report;
  std::vector<WalRecord> replayed;
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(dir, options, &report, &replayed);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_TRUE(report.tail_torn);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(writer.value()->next_sequence(), 3u);

  WalRecord fresh;
  fresh.events = MakeEvents(2, /*tag=*/9);
  Result<uint64_t> seq = writer.value()->Append(fresh.events);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq.value(), 3u);
  fresh.sequence = 3;
  writer.value().reset();

  // After the repair the log is clean end to end: the two intact records,
  // then the replacement for the torn one.
  WalRecoveryReport final_report;
  Result<std::vector<WalRecord>> final_replay =
      ReplayWal(dir, &final_report);
  ASSERT_TRUE(final_replay.ok());
  EXPECT_TRUE(final_report.clean());
  std::vector<WalRecord> want = {appended[0], appended[1], fresh};
  ExpectRecordsEq(final_replay.value(), want);
}

TEST(WalTest, MidLogTearDropsLaterSegmentsExplicitly) {
  const std::string dir = FreshDir("wal_midtear");
  WalOptions options;
  options.segment_bytes = 160;
  std::vector<WalRecord> appended;
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok());
    for (uint64_t tag = 1; tag <= 6; ++tag) {
      WalRecord record;
      record.events = MakeEvents(1, tag);
      Result<uint64_t> seq = writer.value()->Append(record.events);
      ASSERT_TRUE(seq.ok());
      record.sequence = seq.value();
      appended.push_back(std::move(record));
    }
  }
  ASSERT_GE(CountSegments(dir), 3);

  // Flip a payload byte of the FIRST segment's second record (each segment
  // holds two 61-byte records; the second spans [81, 142)).
  const std::string first_path = dir + "/" + WalSegmentFileName(1);
  Result<std::string> bytes = fileio::ReadFileToString(first_path, 1u << 20);
  ASSERT_TRUE(bytes.ok());
  std::string corrupt = bytes.value();
  ASSERT_GT(corrupt.size(), 120u);
  corrupt[120] = static_cast<char>(static_cast<uint8_t>(corrupt[120]) ^ 0x10);
  ASSERT_TRUE(fileio::WriteFileAtomic(first_path, corrupt).ok());

  WalRecoveryReport report;
  Result<std::vector<WalRecord>> replayed = ReplayWal(dir, &report);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed.value().size(), 1u);
  EXPECT_EQ(replayed.value()[0].events, appended[0].events);
  EXPECT_TRUE(report.tail_torn);
  EXPECT_GE(report.segments_dropped, 2u);
  bool found_dropped = false;
  for (const std::string& error : report.errors) {
    if (error.find("dropped (follows the torn segment)") !=
        std::string::npos) {
      found_dropped = true;
    }
  }
  EXPECT_TRUE(found_dropped);

  // Open repairs down to the intact prefix; the dropped sequences are
  // reissued and the log is clean again.
  std::vector<WalRecord> reopened_records;
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(dir, options, &report, &reopened_records);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_EQ(reopened_records.size(), 1u);
  EXPECT_EQ(writer.value()->next_sequence(), 2u);
  ASSERT_TRUE(writer.value()->Append(MakeEvents(1, 99)).ok());
  writer.value().reset();
  Result<std::vector<WalRecord>> final_replay = ReplayWal(dir, &report);
  ASSERT_TRUE(final_replay.ok());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(final_replay.value().size(), 2u);
}

TEST(WalTest, TruncateThroughKeepsUncoveredAndActiveSegments) {
  const std::string dir = FreshDir("wal_trim");
  WalOptions options;
  options.segment_bytes = 160;  // two 61-byte records per segment
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  for (uint64_t tag = 1; tag <= 6; ++tag) {
    ASSERT_TRUE(writer.value()->Append(MakeEvents(1, tag)).ok());
  }
  const int before = CountSegments(dir);
  ASSERT_GE(before, 3);

  // Sequence 3 is mid-segment-2 (records 3..4): only segment 1 (records
  // 1..2) is fully covered.
  Result<uint32_t> removed = writer.value()->TruncateThrough(3);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 1u);

  // Everything is covered, but the active segment must survive.
  removed = writer.value()->TruncateThrough(1000);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(CountSegments(dir), 1);
  writer.value().reset();

  WalRecoveryReport report;
  Result<std::vector<WalRecord>> replayed = ReplayWal(dir, &report);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(report.clean());
  ASSERT_FALSE(replayed.value().empty());
  EXPECT_EQ(replayed.value().back().sequence, 6u);
  EXPECT_EQ(report.last_sequence, 6u);
}

// ---------------------------------------------------------------------------
// Fault-site semantics (wal.append / wal.fsync / wal.roll)
// ---------------------------------------------------------------------------

TEST(WalFaultTest, AppendFailIsACleanRejectThatKeepsTheSequence) {
  const std::string dir = FreshDir("wal_fault_append_fail");
  FaultInjector injector(/*seed=*/1);
  injector.ScheduleFault(fault_sites::kWalAppend, 1, FaultKind::kFail);
  ScopedFaultInjection scoped(&injector);

  WalOptions options;
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(MakeEvents(1, 1)).ok());
  Result<uint64_t> rejected = writer.value()->Append(MakeEvents(1, 2));
  EXPECT_FALSE(rejected.ok());
  EXPECT_FALSE(writer.value()->dead());
  EXPECT_EQ(writer.value()->next_sequence(), 2u);
  // The retry gets the sequence the rejected append never consumed.
  Result<uint64_t> retried = writer.value()->Append(MakeEvents(1, 3));
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried.value(), 2u);
  writer.value().reset();

  WalRecoveryReport report;
  Result<std::vector<WalRecord>> replayed = ReplayWal(dir, &report);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(replayed.value().size(), 2u);
}

TEST(WalFaultTest, AppendCrashLeavesAReplayableExactPrefix) {
  const std::string dir = FreshDir("wal_fault_append_crash");
  std::vector<WalRecord> appended;
  {
    FaultInjector injector(/*seed=*/7);
    injector.ScheduleFault(fault_sites::kWalAppend, 1, FaultKind::kCrash);
    ScopedFaultInjection scoped(&injector);
    WalOptions options;
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok());
    WalRecord first;
    first.events = MakeEvents(2, 1);
    first.sequence = 1;
    ASSERT_TRUE(writer.value()->Append(first.events).ok());
    appended.push_back(first);
    WalRecord second;
    second.events = MakeEvents(2, 2);
    second.sequence = 2;
    EXPECT_FALSE(writer.value()->Append(second.events).ok());
    EXPECT_TRUE(writer.value()->dead());
    appended.push_back(second);
    // A dead writer rejects everything from here on.
    EXPECT_FALSE(writer.value()->Append(MakeEvents(1, 3)).ok());
    EXPECT_FALSE(writer.value()->Sync().ok());
  }
  WalRecoveryReport report;
  Result<std::vector<WalRecord>> replayed = ReplayWal(dir, &report);
  ASSERT_TRUE(replayed.ok());
  // The torn prefix of record 2 either fails its CRC (replay = [1]) or --
  // when the deterministic torn length happens to cover the whole record --
  // replays intact. Never anything else: an exact prefix of what was
  // appended, bit for bit.
  ASSERT_GE(replayed.value().size(), 1u);
  ASSERT_LE(replayed.value().size(), 2u);
  for (size_t i = 0; i < replayed.value().size(); ++i) {
    EXPECT_EQ(replayed.value()[i].sequence, appended[i].sequence);
    EXPECT_EQ(replayed.value()[i].events, appended[i].events);
  }
}

TEST(WalFaultTest, FsyncCrashStillDurableForTheFlushedRecord) {
  const std::string dir = FreshDir("wal_fault_fsync");
  std::vector<WalRecord> appended;
  {
    FaultInjector injector(/*seed=*/11);
    injector.ScheduleFault(fault_sites::kWalFsync, 1, FaultKind::kCrash);
    ScopedFaultInjection scoped(&injector);
    WalOptions options;  // sync_each_append: one barrier per record
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok());
    WalRecord first;
    first.events = MakeEvents(1, 1);
    first.sequence = 1;
    ASSERT_TRUE(writer.value()->Append(first.events).ok());
    appended.push_back(first);
    WalRecord second;
    second.events = MakeEvents(3, 2);
    second.sequence = 2;
    EXPECT_FALSE(writer.value()->Append(second.events).ok());
    EXPECT_TRUE(writer.value()->dead());
    appended.push_back(second);
  }
  // The record's bytes were flushed before the barrier died, so replay
  // recovers THROUGH it -- the fsync-kill invariant.
  WalRecoveryReport report;
  Result<std::vector<WalRecord>> replayed = ReplayWal(dir, &report);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(report.clean());
  ExpectRecordsEq(replayed.value(), appended);
}

// ---------------------------------------------------------------------------
// Group commit (WalOptions::group_commit): concurrent appends share fsync
// barriers, but the acked-prefix durability contract is byte-for-byte the
// one the single-append path gives -- Append returns only once its record
// is on disk, and a record whose barrier died was flushed first, so it
// still replays.
// ---------------------------------------------------------------------------

TEST(WalGroupCommitTest, ConcurrentAppendsAreDurableAndBatchFsyncs) {
  const std::string dir = FreshDir("wal_group_batch");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;

  // A real 2ms stall at every barrier: while one leader is inside its
  // fsync, the other threads write their records and pile up behind it, so
  // the next barrier covers the whole batch. This is what makes the
  // fsync-count assertion below deterministic rather than a scheduling
  // accident.
  FaultInjector injector(/*seed=*/17);
  injector.SetDelayProbability(fault_sites::kWalFsync, 1.0, 0.002);
  ScopedFaultInjection scoped(&injector);

  WalOptions options;
  options.group_commit = true;  // sync_each_append stays true: acked=durable
  std::map<uint64_t, std::vector<WalEvent>> acked;
  std::mutex acked_mu;
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok());
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const std::vector<WalEvent> events =
              MakeEvents(1 + (i % 3), static_cast<uint64_t>(t) * 1000 + i);
          const Result<uint64_t> seq = writer.value()->Append(events);
          if (!seq.ok()) {
            failures.fetch_add(1);
            return;
          }
          std::lock_guard<std::mutex> lock(acked_mu);
          acked[seq.value()] = events;
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    ASSERT_EQ(failures.load(), 0);
    ASSERT_EQ(acked.size(), static_cast<size_t>(kThreads * kPerThread));
    // Sequences are dense 1..N: group commit serializes assignment.
    EXPECT_EQ(acked.begin()->first, 1u);
    EXPECT_EQ(acked.rbegin()->first,
              static_cast<uint64_t>(kThreads * kPerThread));
    // The point of the feature: far fewer physical barriers than acked
    // appends (each 2ms barrier above accumulates the other threads).
    EXPECT_LT(writer.value()->fsyncs_performed(),
              static_cast<uint64_t>(kThreads * kPerThread) / 2)
        << "group commit did not batch: one fsync per append";
    EXPECT_GE(writer.value()->fsyncs_performed(), 1u);
  }

  // Every acked record replays bit-identically at its acked sequence.
  WalRecoveryReport report;
  const Result<std::vector<WalRecord>> replayed = ReplayWal(dir, &report);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(replayed.value().size(), acked.size());
  for (const WalRecord& record : replayed.value()) {
    const auto it = acked.find(record.sequence);
    ASSERT_NE(it, acked.end());
    EXPECT_EQ(record.events, it->second)
        << "sequence " << record.sequence << " diverged";
  }
}

TEST(WalGroupCommitTest, AckedPrefixSurvivesGroupBarrierKill) {
  const std::string dir = FreshDir("wal_group_barrier_kill");
  std::vector<WalRecord> appended;
  {
    FaultInjector injector(/*seed=*/13);
    injector.ScheduleFault(fault_sites::kWalFsync, 3, FaultKind::kFail);
    ScopedFaultInjection scoped(&injector);
    WalOptions options;
    options.group_commit = true;
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok());
    for (uint64_t tag = 1; tag <= 3; ++tag) {
      WalRecord record;
      record.events = MakeEvents(static_cast<int>(tag), tag);
      const Result<uint64_t> seq = writer.value()->Append(record.events);
      ASSERT_TRUE(seq.ok());
      record.sequence = seq.value();
      appended.push_back(std::move(record));
    }
    // The fourth barrier dies AFTER the flush: the append fails and the
    // writer is dead, but the record's bytes are on disk.
    WalRecord fourth;
    fourth.events = MakeEvents(2, 4);
    fourth.sequence = 4;
    EXPECT_FALSE(writer.value()->Append(fourth.events).ok());
    EXPECT_TRUE(writer.value()->dead());
    appended.push_back(std::move(fourth));
    EXPECT_FALSE(writer.value()->Append(MakeEvents(1, 5)).ok())
        << "a dead group-commit writer accepted an append";
  }
  WalRecoveryReport report;
  const Result<std::vector<WalRecord>> replayed = ReplayWal(dir, &report);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(report.clean());
  ExpectRecordsEq(replayed.value(), appended);
}

TEST(WalGroupCommitTest, ConcurrentAckedRecordsAlwaysReplayAfterBarrierLoss) {
  const std::string dir = FreshDir("wal_group_concurrent_kill");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;

  FaultInjector injector(/*seed=*/29);
  injector.SetFailProbability(fault_sites::kWalFsync, 0.25);
  ScopedFaultInjection scoped(&injector);

  WalOptions options;
  options.group_commit = true;
  std::map<uint64_t, std::vector<WalEvent>> acked;
  std::mutex acked_mu;
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok());
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const std::vector<WalEvent> events =
              MakeEvents(1 + (i % 2), static_cast<uint64_t>(t) * 1000 + i);
          const Result<uint64_t> seq = writer.value()->Append(events);
          if (!seq.ok()) return;  // barrier died; everything acked so far holds
          std::lock_guard<std::mutex> lock(acked_mu);
          acked[seq.value()] = events;
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_TRUE(writer.value()->dead())
        << "a 25% barrier failure rate never fired across "
        << kThreads * kPerThread << " appends";
  }

  // Replay is an exact prefix that contains EVERY acked record: an ack is a
  // durability promise no later barrier failure can revoke.
  WalRecoveryReport report;
  const Result<std::vector<WalRecord>> replayed = ReplayWal(dir, &report);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(report.clean());
  std::map<uint64_t, const WalRecord*> by_sequence;
  for (const WalRecord& record : replayed.value()) {
    by_sequence[record.sequence] = &record;
  }
  for (const auto& [sequence, events] : acked) {
    const auto it = by_sequence.find(sequence);
    ASSERT_NE(it, by_sequence.end())
        << "acked record " << sequence << " vanished after a barrier loss";
    EXPECT_EQ(it->second->events, events)
        << "acked record " << sequence << " replayed with different bytes";
  }
}

TEST(WalFaultTest, RollFailLeavesWriterAliveAndRetries) {
  const std::string dir = FreshDir("wal_fault_roll_fail");
  FaultInjector injector(/*seed=*/3);
  // Roll op 0 is the segment Open starts; op 1 is the first size-triggered
  // roll.
  injector.ScheduleFault(fault_sites::kWalRoll, 1, FaultKind::kFail);
  ScopedFaultInjection scoped(&injector);

  WalOptions options;
  options.segment_bytes = 100;  // every 61-byte record forces a roll
  Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(MakeEvents(1, 1)).ok());
  Result<uint64_t> rejected = writer.value()->Append(MakeEvents(1, 2));
  EXPECT_FALSE(rejected.ok());
  EXPECT_FALSE(writer.value()->dead());
  EXPECT_EQ(writer.value()->next_sequence(), 2u);
  // The next append retries the roll (op 2, clean) and succeeds with the
  // sequence the failed attempt never consumed.
  Result<uint64_t> retried = writer.value()->Append(MakeEvents(1, 2));
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried.value(), 2u);
  writer.value().reset();

  WalRecoveryReport report;
  Result<std::vector<WalRecord>> replayed = ReplayWal(dir, &report);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(replayed.value().size(), 2u);
}

TEST(WalFaultTest, RollCrashRecoversToTheIntactPrefix) {
  const std::string dir = FreshDir("wal_fault_roll_crash");
  std::vector<WalEvent> first_events = MakeEvents(1, 1);
  {
    FaultInjector injector(/*seed=*/5);
    injector.ScheduleFault(fault_sites::kWalRoll, 1, FaultKind::kCrash);
    ScopedFaultInjection scoped(&injector);
    WalOptions options;
    options.segment_bytes = 100;
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(first_events).ok());
    EXPECT_FALSE(writer.value()->Append(MakeEvents(1, 2)).ok());
    EXPECT_TRUE(writer.value()->dead());
  }
  // Whatever the torn second-segment header looks like, record 1 replays and
  // nothing else does; Open repairs and reissues sequence 2.
  WalRecoveryReport report;
  Result<std::vector<WalRecord>> replayed = ReplayWal(dir, &report);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed.value().size(), 1u);
  EXPECT_EQ(replayed.value()[0].events, first_events);

  WalOptions options;
  options.segment_bytes = 100;
  std::vector<WalRecord> reopened_records;
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(dir, options, &report, &reopened_records);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_EQ(reopened_records.size(), 1u);
  EXPECT_EQ(writer.value()->next_sequence(), 2u);
  ASSERT_TRUE(writer.value()->Append(MakeEvents(1, 2)).ok());
  writer.value().reset();
  Result<std::vector<WalRecord>> final_replay = ReplayWal(dir, &report);
  ASSERT_TRUE(final_replay.ok());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(final_replay.value().size(), 2u);
}

// ---------------------------------------------------------------------------
// Bsi::MergeAppend
// ---------------------------------------------------------------------------

TEST(BsiMergeAppendTest, DisjointPositionsMatchTheAdder) {
  const Bsi base = Bsi::FromPairs({{0, 5}, {2, 1023}, {7, 1}});
  const Bsi delta = Bsi::FromPairs({{1, 7}, {3, 4096}, {100000, 2}});
  Bsi merged = base;
  merged.MergeAppend(delta);
  EXPECT_TRUE(merged.Equals(Bsi::Add(base, delta)));
  EXPECT_EQ(merged.Get(2), 1023u);
  EXPECT_EQ(merged.Get(3), 4096u);
  EXPECT_EQ(merged.Cardinality(), 6u);
}

TEST(BsiMergeAppendTest, OverlappingPositionsAdd) {
  const Bsi base = Bsi::FromPairs({{0, 5}, {2, 7}, {9, 1}});
  const Bsi delta = Bsi::FromPairs({{2, 9}, {3, 2}});
  Bsi merged = base;
  merged.MergeAppend(delta);
  EXPECT_TRUE(merged.Equals(Bsi::Add(base, delta)));
  EXPECT_EQ(merged.Get(2), 16u);
  EXPECT_EQ(merged.Get(0), 5u);
  EXPECT_EQ(merged.Get(3), 2u);
}

TEST(BsiMergeAppendTest, EmptyOperands) {
  const Bsi base = Bsi::FromPairs({{4, 11}});
  Bsi merged = base;
  merged.MergeAppend(Bsi());
  EXPECT_TRUE(merged.Equals(base));
  Bsi empty;
  empty.MergeAppend(base);
  EXPECT_TRUE(empty.Equals(base));
}

TEST(BsiMergeAppendTest, ManyDisjointChunksMatchOneBuild) {
  // Ingest 1000 values in disjoint 100-position chunks; the result must be
  // identical to building the whole column at once.
  std::vector<std::pair<uint32_t, uint64_t>> all;
  Bsi merged;
  for (uint32_t chunk = 0; chunk < 10; ++chunk) {
    std::vector<std::pair<uint32_t, uint64_t>> pairs;
    for (uint32_t i = 0; i < 100; ++i) {
      const uint32_t pos = chunk * 100 + i;
      const uint64_t value = (pos * 2654435761u) % 5000 + 1;
      pairs.push_back({pos, value});
      all.push_back({pos, value});
    }
    merged.MergeAppend(Bsi::FromPairs(std::move(pairs)));
  }
  EXPECT_TRUE(merged.Equals(Bsi::FromPairs(std::move(all))));
}

// ---------------------------------------------------------------------------
// PositionEncoder serialization
// ---------------------------------------------------------------------------

TEST(PositionEncoderSerializeTest, RoundTripPreservesAssignment) {
  PositionEncoder encoder;
  for (UnitId id : {42u, 7u, 99u, 7u, 1000000u}) encoder.Encode(id);
  ASSERT_EQ(encoder.size(), 4u);
  std::string bytes;
  encoder.Serialize(&bytes);
  Result<PositionEncoder> restored = PositionEncoder::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().size(), encoder.size());
  for (uint32_t pos = 0; pos < encoder.size(); ++pos) {
    EXPECT_EQ(restored.value().Decode(pos), encoder.Decode(pos));
  }
  EXPECT_EQ(restored.value().Lookup(42).value(), 0u);
  EXPECT_FALSE(restored.value().Lookup(43).has_value());
  // New units continue from the next free position.
  EXPECT_EQ(restored.value().Encode(555), 4u);
}

TEST(PositionEncoderSerializeTest, RejectsCorruptBytes) {
  PositionEncoder encoder;
  encoder.Encode(1);
  encoder.Encode(2);
  std::string bytes;
  encoder.Serialize(&bytes);

  EXPECT_FALSE(PositionEncoder::Deserialize("").ok());
  EXPECT_FALSE(
      PositionEncoder::Deserialize(bytes.substr(0, bytes.size() - 3)).ok());
  EXPECT_FALSE(PositionEncoder::Deserialize(bytes + "x").ok());
  // count = 2 but only one id's worth of payload.
  EXPECT_FALSE(PositionEncoder::Deserialize(bytes.substr(0, 12)).ok());
  // Duplicate unit id.
  std::string dup;
  dup.push_back(2);
  dup.append(3, '\0');
  for (int k = 0; k < 2; ++k) {
    dup.push_back(5);
    dup.append(7, '\0');
  }
  EXPECT_FALSE(PositionEncoder::Deserialize(dup).ok());
}

// ---------------------------------------------------------------------------
// Event stream determinism (ISSUE 6 satellite 4)
// ---------------------------------------------------------------------------

TEST(EventStreamTest, StreamIsDeterministicAcrossRunsAndRowOrder) {
  const Dataset a = MakeSmallDataset(/*seed=*/77, 2, 4, false);
  const Dataset b = MakeSmallDataset(/*seed=*/77, 2, 4, false);
  const std::vector<WalEvent> stream_a = MakeWalEventStream(a);
  const std::vector<WalEvent> stream_b = MakeWalEventStream(b);
  ASSERT_FALSE(stream_a.empty());
  EXPECT_EQ(stream_a, stream_b);

  // Rotating the rows inside a segment (a different collector arrival
  // order) must not change the stream: the total order is over event keys,
  // not row layout.
  Dataset rotated = a;
  for (SegmentData& segment : rotated.segments) {
    if (segment.metrics.size() > 2) {
      std::rotate(segment.metrics.begin(), segment.metrics.begin() + 2,
                  segment.metrics.end());
    }
    if (segment.expose.size() > 1) {
      std::rotate(segment.expose.begin(), segment.expose.begin() + 1,
                  segment.expose.end());
    }
  }
  EXPECT_EQ(MakeWalEventStream(rotated), stream_a);
}

TEST(EventStreamTest, StreamIsStrictlyOrderedByFullKey) {
  const Dataset dataset = MakeSmallDataset(/*seed=*/5, 2, 4, false);
  const std::vector<WalEvent> stream = MakeWalEventStream(dataset);
  ASSERT_GT(stream.size(), 1u);
  auto key = [](const WalEvent& e) {
    return std::make_tuple(e.date, static_cast<uint8_t>(e.kind), e.id,
                           e.analysis_unit_id);
  };
  for (size_t i = 1; i < stream.size(); ++i) {
    EXPECT_LT(key(stream[i - 1]), key(stream[i])) << "at " << i;
  }
}

TEST(EventStreamTest, BatchingPartitionsTheStreamInOrder) {
  const Dataset dataset = MakeSmallDataset(/*seed=*/6, 1, 0, true);
  const std::vector<WalEvent> stream = MakeWalEventStream(dataset);
  for (size_t batch_events : {size_t{1}, size_t{7}, stream.size() + 10}) {
    const std::vector<std::vector<WalEvent>> batches =
        BatchWalEvents(stream, batch_events);
    std::vector<WalEvent> flattened;
    for (const std::vector<WalEvent>& batch : batches) {
      EXPECT_LE(batch.size(), batch_events);
      EXPECT_FALSE(batch.empty());
      flattened.insert(flattened.end(), batch.begin(), batch.end());
    }
    EXPECT_EQ(flattened, stream);
  }
  EXPECT_EQ(BatchWalEvents(stream, 1).size(), stream.size());
  EXPECT_TRUE(BatchWalEvents({}, 5).empty());
}

// ---------------------------------------------------------------------------
// DeltaBuilder: incremental == batch == scalar oracle
// ---------------------------------------------------------------------------

TEST(DeltaBuilderTest, IncrementalMatchesBatchAndReference) {
  const Dataset dataset = MakeSmallDataset(/*seed=*/101, 2, 4, false);
  const ExperimentBsiData batch = BuildExperimentBsiData(dataset, false);
  const RefExperimentData ref = BuildRefExperimentData(dataset);
  const Date lo = dataset.config.start_date;
  const Date hi = lo + dataset.config.num_days - 1;

  for (size_t batch_events : {size_t{1}, size_t{13}, size_t{100000}}) {
    const ExperimentBsiData incremental =
        IngestThroughDeltas(dataset, batch_events);
    for (uint64_t strategy : {901u, 902u}) {
      for (uint64_t metric : {601u, 602u}) {
        const BucketValues got =
            ComputeStrategyMetricBsi(incremental, strategy, metric, lo, hi);
        ExpectBucketValuesEq(
            got, ComputeStrategyMetricBsi(batch, strategy, metric, lo, hi));
        ExpectBucketValuesEq(
            got, RefComputeStrategyMetric(ref, strategy, metric, lo, hi));
        // Subrange: exercises the per-day exposure filters too.
        ExpectBucketValuesEq(
            ComputeStrategyMetricBsi(incremental, strategy, metric, lo + 1,
                                     hi),
            RefComputeStrategyMetric(ref, strategy, metric, lo + 1, hi));
      }
    }
  }
}

TEST(DeltaBuilderTest, LateExposeRebasesTheDateOffset) {
  DeltaBuilder builder(1, 0, true);
  ExperimentBsiData data = MakeEmptyShaped(1, 0, true);
  const uint64_t strategy = 77;

  builder.Add(MakeEvent(WalEventKind::kExpose, strategy, /*unit=*/1,
                        /*date=*/5, 0, /*randomization=*/1));
  builder.MergeInto(&data);
  {
    const ExposeBsi* expose = data.segments[0].FindExpose(strategy);
    ASSERT_NE(expose, nullptr);
    EXPECT_EQ(expose->min_expose_date, 5u);
    const uint32_t pos1 = data.segments[0].encoder.Lookup(1).value();
    EXPECT_EQ(expose->offset.Get(pos1), 1u);
  }

  // A late event with an EARLIER date rebases the whole offset BSI.
  builder.Add(MakeEvent(WalEventKind::kExpose, strategy, /*unit=*/2,
                        /*date=*/3, 0, /*randomization=*/2));
  builder.MergeInto(&data);
  {
    const ExposeBsi* expose = data.segments[0].FindExpose(strategy);
    ASSERT_NE(expose, nullptr);
    EXPECT_EQ(expose->min_expose_date, 3u);
    const uint32_t pos1 = data.segments[0].encoder.Lookup(1).value();
    const uint32_t pos2 = data.segments[0].encoder.Lookup(2).value();
    EXPECT_EQ(expose->offset.Get(pos1), 3u);  // date 5 = 3 + (3 - 1)
    EXPECT_EQ(expose->offset.Get(pos2), 1u);  // date 3
  }

  // Re-exposure with an earlier date for an already-present unit: earliest
  // first-expose date wins, updated in place.
  builder.Add(MakeEvent(WalEventKind::kExpose, strategy, /*unit=*/1,
                        /*date=*/4, 0, /*randomization=*/1));
  builder.MergeInto(&data);
  {
    const ExposeBsi* expose = data.segments[0].FindExpose(strategy);
    ASSERT_NE(expose, nullptr);
    EXPECT_EQ(expose->min_expose_date, 3u);
    const uint32_t pos1 = data.segments[0].encoder.Lookup(1).value();
    EXPECT_EQ(expose->offset.Get(pos1), 2u);  // date 4
  }

  // A LATER re-exposure never overwrites the earliest date.
  builder.Add(MakeEvent(WalEventKind::kExpose, strategy, /*unit=*/2,
                        /*date=*/6, 0, /*randomization=*/2));
  builder.MergeInto(&data);
  {
    const ExposeBsi* expose = data.segments[0].FindExpose(strategy);
    const uint32_t pos2 = data.segments[0].encoder.Lookup(2).value();
    EXPECT_EQ(expose->offset.Get(pos2), 1u);  // still date 3
  }
}

TEST(DeltaBuilderTest, MetricsAddAndDimensionsOverwrite) {
  DeltaBuilder builder(1, 0, true);
  ExperimentBsiData data = MakeEmptyShaped(1, 0, true);

  builder.Add(MakeEvent(WalEventKind::kMetric, 601, /*unit=*/10, /*date=*/2,
                        /*value=*/5));
  builder.Add(MakeEvent(WalEventKind::kMetric, 601, /*unit=*/10, /*date=*/2,
                        /*value=*/3));  // same batch: sums in the delta
  builder.Add(MakeEvent(WalEventKind::kDimension, 11, /*unit=*/10,
                        /*date=*/2, /*value=*/4));
  builder.MergeInto(&data);

  builder.Add(MakeEvent(WalEventKind::kMetric, 601, /*unit=*/10, /*date=*/2,
                        /*value=*/2));  // later batch: adds to live
  builder.Add(MakeEvent(WalEventKind::kDimension, 11, /*unit=*/10,
                        /*date=*/2, /*value=*/1));  // overwrites live
  builder.MergeInto(&data);

  const uint32_t pos = data.segments[0].encoder.Lookup(10).value();
  const MetricBsi* metric = data.segments[0].FindMetric(601, 2);
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->value.Get(pos), 10u);  // 5 + 3 + 2
  const DimensionBsi* dim = data.segments[0].FindDimension(11, 2);
  ASSERT_NE(dim, nullptr);
  EXPECT_EQ(dim->value.Get(pos), 1u);

  // Dimension value 0 removes the position (zero = absent).
  builder.Add(MakeEvent(WalEventKind::kDimension, 11, /*unit=*/10,
                        /*date=*/2, /*value=*/0));
  builder.MergeInto(&data);
  EXPECT_FALSE(data.segments[0].FindDimension(11, 2)->value.Exists(pos));
}

// ---------------------------------------------------------------------------
// IngestStore: snapshot + WAL point-in-time recovery
// ---------------------------------------------------------------------------

IngestOptions SmallIngestOptions(const Dataset& dataset) {
  IngestOptions options;
  options.num_segments = dataset.config.num_segments;
  options.num_buckets = dataset.config.num_buckets;
  options.bucket_equals_segment = dataset.config.bucket_equals_segment;
  return options;
}

void IngestAll(IngestStore* store, const std::vector<WalEvent>& events,
               size_t batch_events) {
  for (const std::vector<WalEvent>& batch :
       BatchWalEvents(events, batch_events)) {
    ASSERT_TRUE(store->Ingest(batch).ok());
  }
}

void ExpectMatchesReference(const ExperimentBsiData& data,
                            const RefExperimentData& ref, Date lo, Date hi) {
  for (uint64_t strategy : {901u, 902u}) {
    for (uint64_t metric : {601u, 602u}) {
      ExpectBucketValuesEq(
          ComputeStrategyMetricBsi(data, strategy, metric, lo, hi),
          RefComputeStrategyMetric(ref, strategy, metric, lo, hi));
    }
  }
}

TEST(IngestStoreTest, ColdStartIngestCheckpointReopenCycle) {
  const Dataset dataset = MakeSmallDataset(/*seed=*/300, 2, 4, false);
  const RefExperimentData ref = BuildRefExperimentData(dataset);
  const Date lo = dataset.config.start_date;
  const Date hi = lo + dataset.config.num_days - 1;
  const std::string wal_dir = FreshDir("ingest_cycle_wal");
  const std::string snap_dir = FreshDir("ingest_cycle_snap");
  const IngestOptions options = SmallIngestOptions(dataset);

  uint64_t last_sequence = 0;
  {
    IngestRecoveryReport report;
    Result<std::unique_ptr<IngestStore>> store =
        IngestStore::Open(wal_dir, snap_dir, options, &report);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE(report.cold_start);
    EXPECT_EQ(report.checkpoint_sequence, 0u);
    IngestAll(store.value().get(), MakeWalEventStream(dataset), 50);
    ExpectMatchesReference(store.value()->data(), ref, lo, hi);
    last_sequence = store.value()->last_sequence();
    ASSERT_GT(last_sequence, 0u);

    Result<IngestCheckpointStats> checkpoint = store.value()->Checkpoint();
    ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
    EXPECT_EQ(checkpoint.value().sequence, last_sequence);
    EXPECT_GE(checkpoint.value().snapshot.version, 1u);
    EXPECT_EQ(store.value()->checkpoint_sequence(), last_sequence);
  }
  // Reopen: snapshot carries everything; no WAL records to re-apply.
  IngestRecoveryReport report;
  Result<std::unique_ptr<IngestStore>> store =
      IngestStore::Open(wal_dir, snap_dir, options, &report);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_FALSE(report.cold_start);
  EXPECT_EQ(report.checkpoint_sequence, last_sequence);
  EXPECT_EQ(report.records_applied, 0u);
  EXPECT_EQ(store.value()->last_sequence(), last_sequence);
  ExpectMatchesReference(store.value()->data(), ref, lo, hi);
}

TEST(IngestStoreTest, ReplaysTheWalTailPastTheCheckpoint) {
  const Dataset dataset = MakeSmallDataset(/*seed=*/301, 2, 4, false);
  const RefExperimentData ref = BuildRefExperimentData(dataset);
  const Date lo = dataset.config.start_date;
  const Date hi = lo + dataset.config.num_days - 1;
  const std::string wal_dir = FreshDir("ingest_tail_wal");
  const std::string snap_dir = FreshDir("ingest_tail_snap");
  const IngestOptions options = SmallIngestOptions(dataset);

  const std::vector<WalEvent> events = MakeWalEventStream(dataset);
  const std::vector<std::vector<WalEvent>> batches =
      BatchWalEvents(events, 40);
  const size_t half = batches.size() / 2;
  ASSERT_GT(half, 0u);
  uint64_t checkpoint_sequence = 0;
  {
    Result<std::unique_ptr<IngestStore>> store =
        IngestStore::Open(wal_dir, snap_dir, options);
    ASSERT_TRUE(store.ok());
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(store.value()->Ingest(batches[i]).ok());
    }
    ASSERT_TRUE(store.value()->Checkpoint().ok());
    checkpoint_sequence = store.value()->checkpoint_sequence();
    for (size_t i = half; i < batches.size(); ++i) {
      ASSERT_TRUE(store.value()->Ingest(batches[i]).ok());
    }
    // No checkpoint for the second half: it lives only in the WAL.
  }
  IngestRecoveryReport report;
  Result<std::unique_ptr<IngestStore>> store =
      IngestStore::Open(wal_dir, snap_dir, options, &report);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_FALSE(report.cold_start);
  EXPECT_EQ(report.checkpoint_sequence, checkpoint_sequence);
  EXPECT_EQ(report.records_applied, batches.size() - half);
  ExpectMatchesReference(store.value()->data(), ref, lo, hi);
}

TEST(IngestStoreTest, OverlappingWalRecordsAreSkippedBySequence) {
  // With the default (huge) segment size every record stays in the active
  // segment, which a checkpoint trim never removes -- so on reopen the WAL
  // still holds records the snapshot already covers. They must be skipped
  // by sequence, not applied twice.
  const Dataset dataset = MakeSmallDataset(/*seed=*/302, 1, 0, true);
  const RefExperimentData ref = BuildRefExperimentData(dataset);
  const Date lo = dataset.config.start_date;
  const Date hi = lo + dataset.config.num_days - 1;
  const std::string wal_dir = FreshDir("ingest_skip_wal");
  const std::string snap_dir = FreshDir("ingest_skip_snap");
  const IngestOptions options = SmallIngestOptions(dataset);
  {
    Result<std::unique_ptr<IngestStore>> store =
        IngestStore::Open(wal_dir, snap_dir, options);
    ASSERT_TRUE(store.ok());
    IngestAll(store.value().get(), MakeWalEventStream(dataset), 30);
    ASSERT_TRUE(store.value()->Checkpoint().ok());
  }
  ASSERT_GE(CountSegments(wal_dir), 1);
  IngestRecoveryReport report;
  Result<std::unique_ptr<IngestStore>> store =
      IngestStore::Open(wal_dir, snap_dir, options, &report);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_GT(report.wal.records_replayed, 0u);  // the log still has them
  EXPECT_EQ(report.records_applied, 0u);       // but none re-apply
  EXPECT_EQ(report.events_applied, 0u);
  ExpectMatchesReference(store.value()->data(), ref, lo, hi);
}

TEST(IngestStoreTest, CheckpointTrimsCoveredWalSegments) {
  const Dataset dataset = MakeSmallDataset(/*seed=*/303, 1, 0, true);
  const std::string wal_dir = FreshDir("ingest_trim_wal");
  const std::string snap_dir = FreshDir("ingest_trim_snap");
  IngestOptions options = SmallIngestOptions(dataset);
  options.wal.segment_bytes = 4096;  // force several segment files
  Result<std::unique_ptr<IngestStore>> store =
      IngestStore::Open(wal_dir, snap_dir, options);
  ASSERT_TRUE(store.ok());
  IngestAll(store.value().get(), MakeWalEventStream(dataset), 20);
  const int before = CountSegments(wal_dir);
  ASSERT_GE(before, 2);
  Result<IngestCheckpointStats> checkpoint = store.value()->Checkpoint();
  ASSERT_TRUE(checkpoint.ok());
  EXPECT_GT(checkpoint.value().wal_segments_removed, 0u);
  EXPECT_LT(CountSegments(wal_dir), before);
}

TEST(IngestStoreTest, RefusesAPartiallyRecoveredSnapshot) {
  const Dataset dataset = MakeSmallDataset(/*seed=*/304, 2, 4, false);
  const std::string wal_dir = FreshDir("ingest_partial_wal");
  const std::string snap_dir = FreshDir("ingest_partial_snap");
  const IngestOptions options = SmallIngestOptions(dataset);
  uint64_t version = 0;
  {
    Result<std::unique_ptr<IngestStore>> store =
        IngestStore::Open(wal_dir, snap_dir, options);
    ASSERT_TRUE(store.ok());
    IngestAll(store.value().get(), MakeWalEventStream(dataset), 50);
    Result<IngestCheckpointStats> checkpoint = store.value()->Checkpoint();
    ASSERT_TRUE(checkpoint.ok());
    version = checkpoint.value().snapshot.version;
  }
  ASSERT_TRUE(fileio::RemoveFileIfExists(
                  snap_dir + "/" + SnapshotSegmentFileName(1, version))
                  .ok());
  Result<std::unique_ptr<IngestStore>> reopened =
      IngestStore::Open(wal_dir, snap_dir, options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().ToString().find("refusing to ingest"),
            std::string::npos)
      << reopened.status().ToString();
}

TEST(IngestStoreTest, RefusesASnapshotWithoutIngestMeta) {
  const std::string wal_dir = FreshDir("ingest_nometa_wal");
  const std::string snap_dir = FreshDir("ingest_nometa_snap");
  // A perfectly valid warehouse snapshot -- but not an ingest one: no meta
  // blob tags it with a WAL sequence.
  BsiStore store;
  BsiStoreKey key;
  key.segment = 0;
  key.kind = BsiKind::kExpose;
  key.id = 901;
  store.Put(key, "not-a-real-blob");
  ASSERT_TRUE(SnapshotWriter::Write(store, snap_dir).ok());

  IngestOptions options;
  Result<std::unique_ptr<IngestStore>> opened =
      IngestStore::Open(wal_dir, snap_dir, options);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().ToString().find("no meta blob"),
            std::string::npos)
      << opened.status().ToString();
}

TEST(IngestStoreTest, RefusesAShapeMismatchedSnapshot) {
  const Dataset dataset = MakeSmallDataset(/*seed=*/305, 2, 4, false);
  const std::string wal_dir = FreshDir("ingest_shape_wal");
  const std::string snap_dir = FreshDir("ingest_shape_snap");
  const IngestOptions options = SmallIngestOptions(dataset);
  {
    Result<std::unique_ptr<IngestStore>> store =
        IngestStore::Open(wal_dir, snap_dir, options);
    ASSERT_TRUE(store.ok());
    IngestAll(store.value().get(), MakeWalEventStream(dataset), 50);
    ASSERT_TRUE(store.value()->Checkpoint().ok());
  }
  IngestOptions wrong = options;
  wrong.num_segments = 3;
  Result<std::unique_ptr<IngestStore>> reopened =
      IngestStore::Open(wal_dir, snap_dir, wrong);
  ASSERT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().ToString().find("shape"), std::string::npos)
      << reopened.status().ToString();
}

TEST(IngestStoreTest, RefusesAWalBehindTheCheckpoint) {
  const Dataset dataset = MakeSmallDataset(/*seed=*/306, 1, 0, true);
  const std::string wal_dir = FreshDir("ingest_behind_wal");
  const std::string snap_dir = FreshDir("ingest_behind_snap");
  const IngestOptions options = SmallIngestOptions(dataset);
  {
    Result<std::unique_ptr<IngestStore>> store =
        IngestStore::Open(wal_dir, snap_dir, options);
    ASSERT_TRUE(store.ok());
    IngestAll(store.value().get(), MakeWalEventStream(dataset), 50);
    ASSERT_TRUE(store.value()->Checkpoint().ok());
  }
  // Lose the whole WAL: a fresh log would restart at sequence 1, behind the
  // snapshot's checkpoint -- the store must refuse, not silently reissue.
  const Result<std::vector<std::string>> entries = fileio::ListDir(wal_dir);
  ASSERT_TRUE(entries.ok());
  for (const std::string& name : entries.value()) {
    ASSERT_TRUE(fileio::RemoveFileIfExists(wal_dir + "/" + name).ok());
  }
  Result<std::unique_ptr<IngestStore>> reopened =
      IngestStore::Open(wal_dir, snap_dir, options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().ToString().find("behind the snapshot"),
            std::string::npos)
      << reopened.status().ToString();
}

// ---------------------------------------------------------------------------
// Pipeline + cluster wiring
// ---------------------------------------------------------------------------

TEST(IngestPipelineTest, RunBsiCheckpointsThroughTheWal) {
  const Dataset dataset = MakeSmallDataset(/*seed=*/400, 2, 0, true);
  const RefExperimentData ref = BuildRefExperimentData(dataset);
  const Date lo = dataset.config.start_date;
  const Date hi = lo + dataset.config.num_days - 1;
  const std::string wal_dir = FreshDir("pipe_ingest_wal");
  const std::string snap_dir = FreshDir("pipe_ingest_snap");
  const IngestOptions options = SmallIngestOptions(dataset);
  Result<std::unique_ptr<IngestStore>> store =
      IngestStore::Open(wal_dir, snap_dir, options);
  ASSERT_TRUE(store.ok());
  IngestAll(store.value().get(), MakeWalEventStream(dataset), 64);

  PrecomputeConfig config;
  config.ingest = store.value().get();
  PrecomputePipeline pipeline(nullptr, &store.value()->data(), config);
  std::vector<StrategyMetricPair> pairs = {
      {901, 601}, {901, 602}, {902, 601}, {902, 602}};
  const PrecomputeStats stats = pipeline.RunBsi(pairs, lo, hi);
  EXPECT_TRUE(stats.failed_pairs.empty());
  EXPECT_TRUE(stats.snapshot_written) << stats.snapshot_error;
  EXPECT_EQ(stats.wal_checkpoint_sequence, store.value()->last_sequence());
  for (const StrategyMetricPair& pair : pairs) {
    const BucketValues* got = pipeline.GetResult(pair);
    ASSERT_NE(got, nullptr);
    ExpectBucketValuesEq(
        *got, RefComputeStrategyMetric(ref, pair.first, pair.second, lo, hi));
  }

  // The pipeline's checkpoint made the store recoverable without replay.
  store.value().reset();
  IngestRecoveryReport report;
  Result<std::unique_ptr<IngestStore>> reopened =
      IngestStore::Open(wal_dir, snap_dir, options, &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(report.cold_start);
  EXPECT_EQ(report.records_applied, 0u);
  ExpectMatchesReference(reopened.value()->data(), ref, lo, hi);
}

TEST(IngestClusterTest, AdhocClusterServesTheIngestStoresLiveData) {
  const Dataset dataset = MakeSmallDataset(/*seed=*/401, 2, 0, true);
  const RefExperimentData ref = BuildRefExperimentData(dataset);
  const Date lo = dataset.config.start_date;
  const Date hi = lo + dataset.config.num_days - 1;
  const std::string wal_dir = FreshDir("cluster_ingest_wal");
  const std::string snap_dir = FreshDir("cluster_ingest_snap");
  const IngestOptions options = SmallIngestOptions(dataset);
  Result<std::unique_ptr<IngestStore>> store =
      IngestStore::Open(wal_dir, snap_dir, options);
  ASSERT_TRUE(store.ok());
  IngestAll(store.value().get(), MakeWalEventStream(dataset), 64);

  AdhocClusterConfig config;
  config.num_nodes = 2;
  config.ingest = store.value().get();
  AdhocCluster cluster(&dataset, nullptr, config);
  // The cluster must not write snapshots of its own into the store's
  // directory (those would lack the ingest meta blob).
  EXPECT_TRUE(cluster.snapshot_write_status().ok());
  Result<AdhocCluster::QueryStats> stats =
      cluster.QueryBsi({901, 902}, {601, 602}, lo, hi);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (uint64_t strategy : {901u, 902u}) {
    for (uint64_t metric : {601u, 602u}) {
      const auto it = stats.value().results.find({strategy, metric});
      ASSERT_NE(it, stats.value().results.end());
      ExpectBucketValuesEq(
          it->second, RefComputeStrategyMetric(ref, strategy, metric, lo, hi));
    }
  }
  // And the snapshot dir stayed untouched by the cluster: reopening the
  // store must not trip on a meta-less snapshot.
  store.value().reset();
  Result<std::unique_ptr<IngestStore>> reopened =
      IngestStore::Open(wal_dir, snap_dir, options);
  EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
}

}  // namespace
}  // namespace expbsi
