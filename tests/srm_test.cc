// Sample-ratio-mismatch monitor (docs/OBSERVABILITY.md "SRM monitor"): the
// chi-square survival function it is built on, the decision behavior on
// fair vs skewed splits, the registry side effects, and the guarantee that
// every scorecard entry carries its SRM verdict (never silently dropped).

#include "obs/srm.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"
#include "obs/metrics.h"
#include "stats/ttest.h"

namespace expbsi {
namespace {

TEST(SrmTest, ChiSquareSurvivalMatchesKnownQuantiles) {
  // Standard chi-square critical values at df=1.
  EXPECT_NEAR(ChiSquareSurvival(3.841, 1.0), 0.05, 2e-3);
  EXPECT_NEAR(ChiSquareSurvival(6.635, 1.0), 0.01, 5e-4);
  EXPECT_NEAR(ChiSquareSurvival(10.828, 1.0), 0.001, 1e-4);
  EXPECT_NEAR(ChiSquareSurvival(0.455, 1.0), 0.5, 2e-3);
  EXPECT_DOUBLE_EQ(ChiSquareSurvival(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(ChiSquareSurvival(-1.0, 1.0), 1.0);
  // And a df=2 spot check (survival of exp(-x/2)).
  EXPECT_NEAR(ChiSquareSurvival(5.991, 2.0), 0.05, 2e-3);
}

TEST(SrmTest, SkewedSplitFlagsMismatch) {
  // The acceptance case: 55/45 over 100k units. chi2 = 2 * 5000^2 / 50000
  // = 1000, astronomically beyond the 1e-3 threshold.
  const SrmResult r = obs::SrmCheckCounts(55000, 45000);
  EXPECT_TRUE(r.checked);
  EXPECT_TRUE(r.mismatch);
  EXPECT_NEAR(r.chi_square, 1000.0, 1e-9);
  EXPECT_LT(r.p_value, 1e-100);
  EXPECT_EQ(r.treatment_units, 55000u);
  EXPECT_EQ(r.control_units, 45000u);
}

TEST(SrmTest, FairSplitStaysSilent) {
  const SrmResult even = obs::SrmCheckCounts(50000, 50000);
  EXPECT_TRUE(even.checked);
  EXPECT_FALSE(even.mismatch);
  EXPECT_DOUBLE_EQ(even.p_value, 1.0);

  // Ordinary sampling noise on a fair 50/50: chi2 = 2 * 100^2 / 50000 =
  // 0.4, p ~ 0.53 -- far from the threshold, so no alarm fatigue.
  const SrmResult noisy = obs::SrmCheckCounts(50100, 49900);
  EXPECT_TRUE(noisy.checked);
  EXPECT_FALSE(noisy.mismatch);
  EXPECT_GT(noisy.p_value, 0.5);
}

TEST(SrmTest, ZeroUnitsIsUncheckedNotMismatch) {
  const SrmResult r = obs::SrmCheckCounts(0, 0);
  EXPECT_FALSE(r.checked);
  EXPECT_FALSE(r.mismatch);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(SrmTest, UnevenDesignShareIsRespected) {
  // A 90/10 design split: 90k/10k is exactly on-design, 50k/50k is wildly
  // off it.
  const SrmResult on_design = obs::SrmCheckCounts(90000, 10000, 0.9);
  EXPECT_TRUE(on_design.checked);
  EXPECT_FALSE(on_design.mismatch);
  const SrmResult off_design = obs::SrmCheckCounts(50000, 50000, 0.9);
  EXPECT_TRUE(off_design.checked);
  EXPECT_TRUE(off_design.mismatch);
}

#if !defined(EXPBSI_NO_METRICS)
TEST(SrmTest, RegistryRecordsChecksAndMismatches) {
  obs::Counter& checks = obs::GetCounter("srm.checks");
  obs::Counter& mismatches = obs::GetCounter("srm.mismatches");
  obs::Gauge& last_p = obs::GetGauge("srm.last_p_value");
  const uint64_t checks_before = checks.Value();
  const uint64_t mismatches_before = mismatches.Value();

  const SrmResult fair = obs::SrmCheckCounts(50000, 50000);
  const SrmResult skewed = obs::SrmCheckCounts(55000, 45000);
  EXPECT_EQ(checks.Value(), checks_before + 2);
  EXPECT_EQ(mismatches.Value(), mismatches_before + 1);
  EXPECT_DOUBLE_EQ(last_p.Value(), skewed.p_value);
  (void)fair;
}
#endif  // !EXPBSI_NO_METRICS

// A hash-based randomizer is fair by construction, so a real scorecard over
// a generated dataset must carry a checked, non-mismatching SRM verdict on
// every entry.
TEST(SrmTest, ScorecardOverFairAssignmentStaysSilent) {
  DatasetConfig config;
  config.num_users = 20000;
  config.num_segments = 4;
  config.num_days = 5;
  config.start_date = 30;
  config.seed = 91;
  ExperimentConfig exp;
  exp.strategy_ids = {21, 22};
  exp.arm_effects = {1.0, 1.05};
  MetricConfig metric;
  metric.metric_id = 7;
  metric.daily_participation = 0.5;
  const Dataset dataset = GenerateDataset(config, {exp}, {metric}, {});
  const ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);

  const std::vector<ScorecardEntry> entries =
      ComputeScorecard(bsi, /*control_id=*/21, {22}, {7}, 30, 34);
  ASSERT_EQ(entries.size(), 1u);
  const SrmResult& srm = entries[0].srm;
  EXPECT_TRUE(srm.checked);
  EXPECT_FALSE(srm.mismatch) << "fair hash split flagged, p=" << srm.p_value;
  EXPECT_GT(srm.treatment_units, 0u);
  EXPECT_GT(srm.control_units, 0u);
  EXPECT_GT(srm.p_value, obs::kSrmPValueThreshold);
}

// A knowingly skewed assignment must be flagged on the entry itself, so no
// consumer can read the t-test without seeing the data-quality verdict.
TEST(SrmTest, SkewedAssignmentFlaggedInScorecardEntry) {
  auto make_buckets = [](double per_bucket_count) {
    BucketValues bv;
    bv.sums.assign(10, 100.0);
    bv.counts.assign(10, per_bucket_count);
    return bv;
  };
  // 55k vs 45k units across 10 buckets.
  const BucketValues treatment = make_buckets(5500.0);
  const BucketValues control = make_buckets(4500.0);
  const ScorecardEntry entry =
      CompareStrategies(/*metric_id=*/7, /*treatment_id=*/22, treatment,
                        /*control_id=*/21, control);
  EXPECT_TRUE(entry.srm.checked);
  EXPECT_TRUE(entry.srm.mismatch);
  EXPECT_LT(entry.srm.p_value, obs::kSrmPValueThreshold);
  EXPECT_EQ(entry.srm.treatment_units, 55000u);
  EXPECT_EQ(entry.srm.control_units, 45000u);
}

}  // namespace
}  // namespace expbsi
