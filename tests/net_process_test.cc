// Cross-process differential test (DESIGN.md §9): spawn REAL expbsi_node
// processes (the binary built from src/net/node_main.cc), run a full
// scorecard sweep through the scatter/gather coordinator against them, and
// require the results bit-identical to (1) the in-process AdhocCluster on
// the same data and (2) the direct engine. This is the end-to-end proof
// that the wire codec, the transport and the node execution path preserve
// every bit across a genuine process boundary -- no shared memory, no
// shared allocator, nothing but the protocol.
//
// Node lifecycle: each child gets the warehouse as a BsiStore file
// (SaveToFile/LoadFromFile), prints "PORT <p>" on stdout once listening,
// and serves until its stdin (a pipe held by this process) reaches EOF --
// so children can never outlive the test, even if it dies mid-run.

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/adhoc_cluster.h"
#include "cluster/placement.h"
#include "common/file_io.h"
#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"
#include "net/coordinator.h"
#include "net/socket.h"
#include "net/transport.h"
#include "obs/fleet.h"
#include "wire/messages.h"

namespace expbsi {
namespace {

#ifndef EXPBSI_NODE_BINARY
#error "EXPBSI_NODE_BINARY must point at the expbsi_node executable"
#endif

constexpr int kNumNodes = 3;
constexpr Date kLo = 30;
constexpr Date kHi = 35;

// One spawned expbsi_node. The child's stdin is `stdin_fd` (closing it
// shuts the node down); its stdout was read just long enough to learn the
// port and is then left to the child.
struct NodeProcess {
  pid_t pid = -1;
  int stdin_fd = -1;
  uint16_t port = 0;
};

// Forks and execs one node; returns pid -1 on any setup failure.
// `extra_args` are appended verbatim (topology / repair flags).
NodeProcess SpawnNode(const std::string& store_path, int node_id,
                      const std::vector<std::string>& extra_args = {}) {
  NodeProcess node;
  int to_child[2];   // parent writes (never does) -> child stdin
  int from_child[2]; // child stdout -> parent reads the PORT line
  if (::pipe(to_child) != 0) return node;
  if (::pipe(from_child) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    return node;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
      ::close(fd);
    }
    return node;
  }
  if (pid == 0) {
    // Child: wire the pipes to stdin/stdout and exec the node binary.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
      ::close(fd);
    }
    std::vector<std::string> args = {EXPBSI_NODE_BINARY,
                                     "--store=" + store_path,
                                     "--node-id=" + std::to_string(node_id)};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    std::vector<char*> argv;
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(EXPBSI_NODE_BINARY, argv.data());
    std::perror("execv(expbsi_node)");
    ::_exit(127);
  }
  // Parent.
  ::close(to_child[0]);
  ::close(from_child[1]);
  node.pid = pid;
  node.stdin_fd = to_child[1];

  // Read the "PORT <p>\n" line. The child loads the store first, so allow
  // it a generous amount of time; reads block until it writes or dies.
  std::string line;
  char ch;
  while (line.size() < 64) {
    const ssize_t n = ::read(from_child[0], &ch, 1);
    if (n <= 0) break;
    if (ch == '\n') break;
    line.push_back(ch);
  }
  ::close(from_child[0]);
  unsigned port = 0;
  if (std::sscanf(line.c_str(), "PORT %u", &port) == 1 && port > 0 &&
      port <= 65535) {
    node.port = static_cast<uint16_t>(port);
  }
  return node;
}

void StopNode(NodeProcess* node) {
  if (node->stdin_fd >= 0) {
    ::close(node->stdin_fd);  // EOF on the child's stdin -> clean shutdown
    node->stdin_fd = -1;
  }
  if (node->pid > 0) {
    int status = 0;
    // Bounded wait: poll for exit, escalate to SIGKILL if the child wedges.
    for (int i = 0; i < 200; ++i) {
      const pid_t r = ::waitpid(node->pid, &status, WNOHANG);
      if (r == node->pid) {
        node->pid = -1;
        return;
      }
      ::usleep(25 * 1000);
    }
    ::kill(node->pid, SIGKILL);
    ::waitpid(node->pid, &status, 0);
    node->pid = -1;
  }
}

TEST(NetProcessTest, CoordinatorOverRealProcessesIsBitIdentical) {
  // Dataset distinct from the other suites', so a passing run here is not
  // an artifact of shared fixtures.
  DatasetConfig config;
  config.num_users = 5000;
  config.num_segments = 7;  // not a multiple of the node count
  config.num_days = 6;
  config.start_date = kLo;
  config.seed = 83;

  ExperimentConfig exp;
  exp.strategy_ids = {801, 802, 803};
  exp.arm_effects = {1.0, 1.08, 0.95};
  exp.traffic_salt = 7;

  MetricConfig m1;
  m1.metric_id = 901;
  m1.value_range = 50;
  m1.daily_participation = 0.6;
  MetricConfig m2;
  m2.metric_id = 902;
  m2.value_range = 1;
  m2.daily_participation = 0.8;

  const Dataset dataset = GenerateDataset(config, {exp}, {m1, m2}, {});
  const ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);
  const BsiStore cold = BuildColdStore(bsi);

  const std::string store_path =
      ::testing::TempDir() + "expbsi_net_process_store.bin";
  ASSERT_TRUE(cold.SaveToFile(store_path).ok());

  std::vector<NodeProcess> nodes(kNumNodes);
  net::CoordinatorOptions options;
  for (int i = 0; i < kNumNodes; ++i) {
    nodes[i] = SpawnNode(store_path, i);
    ASSERT_GT(nodes[i].pid, 0) << "failed to spawn node " << i;
    ASSERT_GT(nodes[i].port, 0)
        << "node " << i << " never reported its port";
    options.node_ports.push_back(nodes[i].port);
  }
  options.num_segments = config.num_segments;

  const std::vector<uint64_t> strategies = {801, 802, 803};
  const std::vector<uint64_t> metrics = {901, 902};

  AdhocClusterConfig cluster_config;
  cluster_config.num_nodes = kNumNodes;
  AdhocCluster cluster(&dataset, &bsi, cluster_config);

  net::Coordinator coordinator(options);

  // Full sweep: the whole range plus every suffix subrange (the per-day
  // exposure filters make subranges a distinct code path).
  for (Date lo = kLo; lo <= kHi; ++lo) {
    SCOPED_TRACE("date range " + std::to_string(lo) + ".." +
                 std::to_string(kHi));
    const Result<AdhocCluster::QueryStats> remote =
        coordinator.QueryBsi(strategies, metrics, lo, kHi);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    EXPECT_FALSE(remote.value().degraded.degraded());

    const Result<AdhocCluster::QueryStats> local =
        cluster.QueryBsi(strategies, metrics, lo, kHi);
    ASSERT_TRUE(local.ok()) << local.status().ToString();

    ASSERT_EQ(remote.value().results.size(), local.value().results.size());
    for (const auto& [pair, values] : remote.value().results) {
      const BucketValues& in_process = local.value().results.at(pair);
      EXPECT_EQ(values.sums, in_process.sums)
          << "pair " << pair.first << "/" << pair.second
          << " diverged from the in-process cluster";
      EXPECT_EQ(values.counts, in_process.counts)
          << "pair " << pair.first << "/" << pair.second;
      const BucketValues direct =
          ComputeStrategyMetricBsi(bsi, pair.first, pair.second, lo, kHi);
      EXPECT_EQ(values.sums, direct.sums)
          << "pair " << pair.first << "/" << pair.second
          << " diverged from the direct engine";
      EXPECT_EQ(values.counts, direct.counts)
          << "pair " << pair.first << "/" << pair.second;
    }
  }

  // A second full-range query exercises the node-side hot tier (first
  // round pulled everything cold); still bit-identical.
  const Result<AdhocCluster::QueryStats> warm =
      coordinator.QueryBsi(strategies, metrics, kLo, kHi);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_GT(warm.value().hot_hits, 0u);
  for (const auto& [pair, values] : warm.value().results) {
    const BucketValues direct =
        ComputeStrategyMetricBsi(bsi, pair.first, pair.second, kLo, kHi);
    EXPECT_EQ(values.sums, direct.sums);
    EXPECT_EQ(values.counts, direct.counts);
  }

  for (NodeProcess& node : nodes) StopNode(&node);
  ::unlink(store_path.c_str());
}

// Killing a real node process mid-sweep degrades gracefully: the
// coordinator requeues its segments onto the surviving processes and the
// answer stays complete and bit-identical.
TEST(NetProcessTest, KilledProcessIsRoutedAround) {
  DatasetConfig config;
  config.num_users = 2000;
  config.num_segments = 6;
  config.num_days = 4;
  config.start_date = kLo;
  config.seed = 89;

  ExperimentConfig exp;
  exp.strategy_ids = {801, 802};
  exp.arm_effects = {1.0, 1.1};
  exp.traffic_salt = 9;

  MetricConfig m1;
  m1.metric_id = 901;
  m1.value_range = 20;
  m1.daily_participation = 0.5;

  const Dataset dataset = GenerateDataset(config, {exp}, {m1}, {});
  const ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);
  const BsiStore cold = BuildColdStore(bsi);
  const std::string store_path =
      ::testing::TempDir() + "expbsi_net_process_kill_store.bin";
  ASSERT_TRUE(cold.SaveToFile(store_path).ok());

  std::vector<NodeProcess> nodes(kNumNodes);
  net::CoordinatorOptions options;
  for (int i = 0; i < kNumNodes; ++i) {
    nodes[i] = SpawnNode(store_path, i);
    ASSERT_GT(nodes[i].pid, 0);
    ASSERT_GT(nodes[i].port, 0);
    options.node_ports.push_back(nodes[i].port);
  }
  options.num_segments = config.num_segments;
  options.allow_degraded = true;

  const std::vector<uint64_t> strategies = {801, 802};
  const std::vector<uint64_t> metrics = {901};
  const Date hi = static_cast<Date>(kLo + config.num_days - 1);

  net::Coordinator coordinator(options);
  const Result<AdhocCluster::QueryStats> before =
      coordinator.QueryBsi(strategies, metrics, kLo, hi);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_FALSE(before.value().degraded.degraded());

  // Kill node 1 outright -- a genuine dead process, connection refused.
  ::kill(nodes[1].pid, SIGKILL);
  int status = 0;
  ::waitpid(nodes[1].pid, &status, 0);
  nodes[1].pid = -1;

  const Result<AdhocCluster::QueryStats> after =
      coordinator.QueryBsi(strategies, metrics, kLo, hi);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after.value().degraded.lost_segments.empty())
      << "segments of the killed process were not requeued";
  EXPECT_EQ(after.value().degraded.nodes_lost, 1);
  for (const auto& [pair, values] : after.value().results) {
    EXPECT_EQ(values.sums, before.value().results.at(pair).sums);
    EXPECT_EQ(values.counts, before.value().results.at(pair).counts);
  }

  for (NodeProcess& node : nodes) StopNode(&node);
  ::unlink(store_path.c_str());
}

// SIGTERM is a graceful drain (satellite of DESIGN.md §11): the node stops
// accepting, finishes in-flight work and exits 0 -- a supervisor's rolling
// restart is distinguishable from a crash. Afterwards the port refuses
// connections.
TEST(NetProcessTest, SigtermDrainsAndExitsZero) {
  // An empty warehouse is enough: this test is about lifecycle, not data.
  const std::string store_path =
      ::testing::TempDir() + "expbsi_net_process_drain_store.bin";
  ASSERT_TRUE(BsiStore().SaveToFile(store_path).ok());

  NodeProcess node = SpawnNode(store_path, 0);
  ASSERT_GT(node.pid, 0);
  ASSERT_GT(node.port, 0);

  // The node is actually serving before the drain.
  const net::Deadline deadline = net::Deadline::After(5.0);
  {
    Result<net::Socket> sock = net::Connect(node.port, deadline);
    ASSERT_TRUE(sock.ok()) << sock.status().ToString();
    wire::Envelope ping;
    ping.type = wire::MsgType::kPing;
    ping.request_id = 1;
    ASSERT_TRUE(
        net::SendEnvelope(sock.value(), ping, deadline, nullptr).ok());
    Result<wire::Envelope> pong = net::RecvEnvelope(sock.value(), deadline, 1);
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    EXPECT_EQ(pong.value().type, wire::MsgType::kPong);
  }

  ASSERT_EQ(::kill(node.pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(node.pid, &status, 0), node.pid);
  node.pid = -1;
  ASSERT_TRUE(WIFEXITED(status)) << "node did not exit cleanly on SIGTERM";
  EXPECT_EQ(WEXITSTATUS(status), 0);

  Result<net::Socket> refused =
      net::Connect(node.port, net::Deadline::After(1.0));
  EXPECT_FALSE(refused.ok()) << "drained node still accepts connections";

  StopNode(&node);
  ::unlink(store_path.c_str());
}

// Replica repair across real process boundaries: a node started on an EMPTY
// warehouse file with --repair-peers heals its whole replica set from peer
// processes before serving, fingerprints verified -- and then both a direct
// SegmentFetch and a strict fault-free coordinator sweep are bit-identical
// to the local warehouse.
TEST(NetProcessTest, ReplicaRepairHealsEmptyNodeAcrossProcesses) {
  DatasetConfig config;
  config.num_users = 2000;
  config.num_segments = 6;
  config.num_days = 4;
  config.start_date = kLo;
  config.seed = 97;

  ExperimentConfig exp;
  exp.strategy_ids = {801, 802};
  exp.arm_effects = {1.0, 1.07};
  exp.traffic_salt = 11;

  MetricConfig m1;
  m1.metric_id = 901;
  m1.value_range = 30;
  m1.daily_participation = 0.6;

  const Dataset dataset = GenerateDataset(config, {exp}, {m1}, {});
  const ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);
  const BsiStore cold = BuildColdStore(bsi);
  const std::string full_path =
      ::testing::TempDir() + "expbsi_net_process_repair_full.bin";
  const std::string empty_path =
      ::testing::TempDir() + "expbsi_net_process_repair_empty.bin";
  ASSERT_TRUE(cold.SaveToFile(full_path).ok());
  ASSERT_TRUE(BsiStore().SaveToFile(empty_path).ok());

  const std::vector<std::string> topology = {
      "--num-nodes=" + std::to_string(kNumNodes),
      "--num-segments=" + std::to_string(config.num_segments),
      "--replicas=2"};

  // Peers 0 and 1 prune the full warehouse down to their replica sets.
  std::vector<NodeProcess> nodes(kNumNodes);
  net::CoordinatorOptions options;
  for (int i = 0; i < 2; ++i) {
    nodes[i] = SpawnNode(full_path, i, topology);
    ASSERT_GT(nodes[i].pid, 0);
    ASSERT_GT(nodes[i].port, 0);
    options.node_ports.push_back(nodes[i].port);
  }
  // Node 2 starts from NOTHING and must repair every owned segment from
  // the peers before it prints PORT.
  std::vector<std::string> repair_args = topology;
  repair_args.push_back("--repair-peers=" + std::to_string(nodes[0].port) +
                        "," + std::to_string(nodes[1].port));
  nodes[2] = SpawnNode(empty_path, 2, repair_args);
  ASSERT_GT(nodes[2].pid, 0);
  ASSERT_GT(nodes[2].port, 0) << "node 2 died before finishing repair";
  options.node_ports.push_back(nodes[2].port);

  // Direct proof the empty node now holds verified copies: fetch one of its
  // owned segments straight from it and compare every blob, fingerprint
  // included, against the local warehouse.
  const Placement placement(kNumNodes, config.num_segments, 2);
  const std::vector<uint32_t> owned = placement.SegmentsOf(2);
  ASSERT_FALSE(owned.empty());
  {
    const net::Deadline deadline = net::Deadline::After(5.0);
    Result<net::Socket> sock = net::Connect(nodes[2].port, deadline);
    ASSERT_TRUE(sock.ok()) << sock.status().ToString();
    wire::Envelope env;
    env.type = wire::MsgType::kSegmentFetch;
    env.request_id = 31;
    wire::WireSegmentFetch fetch;
    fetch.segment = owned[0];
    wire::EncodeSegmentFetch(fetch, &env.payload);
    ASSERT_TRUE(net::SendEnvelope(sock.value(), env, deadline, nullptr).ok());
    Result<wire::Envelope> reply =
        net::RecvEnvelope(sock.value(), deadline, 31);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply.value().type, wire::MsgType::kSegmentPush)
        << "repair left segment " << owned[0] << " unhealed";
    Result<wire::WireSegmentPush> push =
        wire::DecodeSegmentPush(reply.value().payload);
    ASSERT_TRUE(push.ok()) << push.status().ToString();
    size_t expected_blobs = 0;
    cold.ForEachEntry([&](const BsiStoreKey& key, const std::string& bytes,
                          uint64_t fingerprint) {
      if (key.segment != owned[0]) return;
      ++expected_blobs;
      for (const wire::WireRepairBlob& blob : push.value().blobs) {
        if (blob.kind == static_cast<uint8_t>(key.kind) &&
            blob.id == key.id && blob.date == key.date) {
          EXPECT_EQ(blob.bytes, bytes);
          EXPECT_EQ(blob.fingerprint, fingerprint);
          return;
        }
      }
      ADD_FAILURE() << "healed node is missing a blob of segment "
                    << owned[0];
    });
    EXPECT_EQ(push.value().blobs.size(), expected_blobs);
  }

  // End to end: a STRICT fault-free sweep over the replicated fleet is
  // bit-identical to the direct engine -- node 2 serves its primaries.
  options.num_segments = config.num_segments;
  options.replication_factor = 2;
  const Date hi = static_cast<Date>(kLo + config.num_days - 1);
  net::Coordinator coordinator(options);
  const Result<AdhocCluster::QueryStats> stats =
      coordinator.QueryBsi({801, 802}, {901}, kLo, hi);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats.value().degraded.degraded());
  for (const auto& [pair, values] : stats.value().results) {
    const BucketValues direct =
        ComputeStrategyMetricBsi(bsi, pair.first, pair.second, kLo, hi);
    EXPECT_EQ(values.sums, direct.sums);
    EXPECT_EQ(values.counts, direct.counts);
  }

  for (NodeProcess& node : nodes) StopNode(&node);
  ::unlink(full_path.c_str());
  ::unlink(empty_path.c_str());
}

// The fleet observability plane across REAL process boundaries: one of
// three expbsi_node processes runs with injected tier.fetch corruption
// (--inject, this process never shares its FaultInjector), the merged fleet
// scrape attributes the faults to exactly that node's label, and the
// degraded query's postmortem bundle carries the corrupt node's own
// flight-recorder slice -- evidence pulled over kStatsFetch from a process
// this test cannot inspect any other way.
TEST(NetProcessTest, InjectedFaultSurfacesInFleetScrapeAndPostmortem) {
  DatasetConfig config;
  config.num_users = 2000;
  config.num_segments = 6;
  config.num_days = 3;
  config.start_date = kLo;
  config.seed = 101;

  ExperimentConfig exp;
  exp.strategy_ids = {801, 802};
  exp.arm_effects = {1.0, 1.05};
  exp.traffic_salt = 13;

  MetricConfig m1;
  m1.metric_id = 901;
  m1.value_range = 40;
  m1.daily_participation = 0.6;

  const Dataset dataset = GenerateDataset(config, {exp}, {m1}, {});
  const ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);
  const BsiStore cold = BuildColdStore(bsi);
  const std::string store_path =
      ::testing::TempDir() + "expbsi_net_process_obs_store.bin";
  ASSERT_TRUE(cold.SaveToFile(store_path).ok());

  // R=1 so the corrupt node's segments have nowhere to fail over: the query
  // must come back degraded, which is the postmortem trigger under test.
  // The victim is whichever node actually owns segments under R=1.
  const Placement placement(kNumNodes, config.num_segments, 1);
  int victim = -1;
  for (int i = 0; i < kNumNodes; ++i) {
    if (!placement.SegmentsOf(i).empty()) {
      victim = i;
      break;
    }
  }
  ASSERT_GE(victim, 0);

  std::vector<NodeProcess> nodes(kNumNodes);
  net::CoordinatorOptions options;
  for (int i = 0; i < kNumNodes; ++i) {
    std::vector<std::string> extra;
    if (i == victim) extra.push_back("--inject=tier.fetch,corrupt,1.0");
    nodes[i] = SpawnNode(store_path, i, extra);
    ASSERT_GT(nodes[i].pid, 0);
    ASSERT_GT(nodes[i].port, 0);
    options.node_ports.push_back(nodes[i].port);
  }
  options.num_segments = config.num_segments;
  options.replication_factor = 1;
  options.allow_degraded = true;
  options.postmortem_dir = ::testing::TempDir() + "expbsi_pm_process";

  net::Coordinator coordinator(options);
  const Date hi = static_cast<Date>(kLo + config.num_days - 1);
  const Result<AdhocCluster::QueryStats> stats =
      coordinator.QueryBsi({801, 802}, {901}, kLo, hi);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Every segment the corrupt node owns was lost; every other answered.
  const std::vector<uint32_t> owned = placement.SegmentsOf(victim);
  EXPECT_EQ(stats.value().degraded.lost_segments,
            std::vector<int>(owned.begin(), owned.end()));

  // The postmortem bundle names the faults the victim injected -- its
  // flight slice crossed the process boundary via kStatsFetch.
  ASSERT_FALSE(stats.value().postmortem_path.empty());
  Result<std::string> contents = fileio::ReadFileToString(
      stats.value().postmortem_path, 16u << 20);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  const std::string& bundle = contents.value();
  EXPECT_NE(bundle.find("\"reason\": \"degraded\""), std::string::npos);
  const std::string victim_label =
      "127.0.0.1:" + std::to_string(nodes[victim].port);
  EXPECT_NE(
      bundle.find("\"node\": \"" + victim_label + "\", \"fetched\": true"),
      std::string::npos);
#if !defined(EXPBSI_NO_METRICS)
  EXPECT_NE(bundle.find("\"kind\": \"fault_injected\""), std::string::npos);
  EXPECT_NE(bundle.find("\"site\": \"tier.fetch\""), std::string::npos);
#endif

  // The merged fleet scrape shows all three nodes up and pins the fault
  // counters on the victim's label alone.
  obs::FleetScraperOptions scrape_options;
  scrape_options.node_ports = options.node_ports;
  obs::FleetScraper scraper(scrape_options);
  const obs::FleetView view = scraper.Scrape();
  const std::string prom = obs::FleetScraper::RenderPrometheus(view);
  for (int i = 0; i < kNumNodes; ++i) {
    EXPECT_NE(prom.find("expbsi_node_up{node=\"127.0.0.1:" +
                        std::to_string(nodes[i].port) + "\"} 1"),
              std::string::npos);
  }
#if !defined(EXPBSI_NO_METRICS)
  EXPECT_NE(prom.find("expbsi_fault_injected{node=\"" + victim_label + "\"}"),
            std::string::npos);
  for (int i = 0; i < kNumNodes; ++i) {
    if (i == victim) continue;
    EXPECT_EQ(prom.find("expbsi_fault_injected{node=\"127.0.0.1:" +
                        std::to_string(nodes[i].port) + "\"}"),
              std::string::npos)
        << "fault counter attributed to a clean node";
  }
#endif

  for (NodeProcess& node : nodes) StopNode(&node);
  ::unlink(store_path.c_str());
}

// Kill one replica of an R=2 fleet: results stay complete and bit-identical
// (failover), and once the dead node crosses the markdown threshold the
// postmortem bundle's flight events name both the markdown and the
// failovers that routed around it.
TEST(NetProcessTest, KilledReplicaPostmortemNamesMarkdownAndFailover) {
  DatasetConfig config;
  config.num_users = 2000;
  config.num_segments = 6;
  config.num_days = 3;
  config.start_date = kLo;
  config.seed = 103;

  ExperimentConfig exp;
  exp.strategy_ids = {801, 802};
  exp.arm_effects = {1.0, 1.12};
  exp.traffic_salt = 17;

  MetricConfig m1;
  m1.metric_id = 901;
  m1.value_range = 25;
  m1.daily_participation = 0.5;

  const Dataset dataset = GenerateDataset(config, {exp}, {m1}, {});
  const ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);
  const BsiStore cold = BuildColdStore(bsi);
  const std::string store_path =
      ::testing::TempDir() + "expbsi_net_process_markdown_store.bin";
  ASSERT_TRUE(cold.SaveToFile(store_path).ok());

  std::vector<NodeProcess> nodes(kNumNodes);
  net::CoordinatorOptions options;
  for (int i = 0; i < kNumNodes; ++i) {
    nodes[i] = SpawnNode(store_path, i);
    ASSERT_GT(nodes[i].pid, 0);
    ASSERT_GT(nodes[i].port, 0);
    options.node_ports.push_back(nodes[i].port);
  }
  options.num_segments = config.num_segments;
  options.replication_factor = 2;
  options.allow_degraded = true;
  options.postmortem_dir = ::testing::TempDir() + "expbsi_pm_markdown";

  const Date hi = static_cast<Date>(kLo + config.num_days - 1);
  net::Coordinator coordinator(options);
  const Result<AdhocCluster::QueryStats> baseline =
      coordinator.QueryBsi({801, 802}, {901}, kLo, hi);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_FALSE(baseline.value().degraded.degraded());
  EXPECT_TRUE(baseline.value().postmortem_path.empty());

  ::kill(nodes[1].pid, SIGKILL);
  int status = 0;
  ::waitpid(nodes[1].pid, &status, 0);
  nodes[1].pid = -1;

  // Re-query until the dead node crosses the markdown threshold (two
  // consecutive failures); every answer along the way must stay complete
  // and bit-identical to the healthy baseline.
  std::string markdown_bundle_path;
  for (int attempt = 0; attempt < 4; ++attempt) {
    const Result<AdhocCluster::QueryStats> stats =
        coordinator.QueryBsi({801, 802}, {901}, kLo, hi);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_TRUE(stats.value().degraded.lost_segments.empty());
    for (const auto& [pair, values] : stats.value().results) {
      EXPECT_EQ(values.sums, baseline.value().results.at(pair).sums);
      EXPECT_EQ(values.counts, baseline.value().results.at(pair).counts);
    }
    if (coordinator.health().IsMarkedDown(1)) {
      markdown_bundle_path = stats.value().postmortem_path;
      break;
    }
  }
  ASSERT_TRUE(coordinator.health().IsMarkedDown(1))
      << "dead node never crossed the markdown threshold";
  ASSERT_FALSE(markdown_bundle_path.empty())
      << "markdown query produced no postmortem bundle";

  Result<std::string> contents =
      fileio::ReadFileToString(markdown_bundle_path, 16u << 20);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  const std::string& bundle = contents.value();
  EXPECT_NE(bundle.find("\"reason\": \"node_markdown\""), std::string::npos);
  EXPECT_NE(bundle.find("\"node\": 1, \"down\": true"), std::string::npos);
#if !defined(EXPBSI_NO_METRICS)
  EXPECT_NE(bundle.find("\"kind\": \"node_markdown\""), std::string::npos);
  EXPECT_NE(bundle.find("\"kind\": \"failover\""), std::string::npos);
#endif

  for (NodeProcess& node : nodes) StopNode(&node);
  ::unlink(store_path.c_str());
}

}  // namespace
}  // namespace expbsi
