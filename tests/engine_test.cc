#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "engine/deepdive.h"
#include "engine/experiment_data.h"
#include "engine/normal_engine.h"
#include "engine/preexperiment.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"

namespace expbsi {
namespace {

// Shared fixture: one generated dataset with a real treatment effect, in
// both normal and BSI representations. Generation is the expensive part, so
// build it once per suite.
class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.num_users = 20000;
    config.num_segments = 32;
    config.num_days = 12;
    config.start_date = 100;
    config.seed = 7;

    ExperimentConfig exp;
    exp.strategy_ids = {501, 502, 503};  // control + 2 treatments
    exp.arm_effects = {1.0, 1.12, 0.95};
    exp.traffic_salt = 11;
    exp.expose_day_p = 0.5;

    MetricConfig m1;
    m1.metric_id = 8371;
    m1.value_range = 300;
    m1.daily_participation = 0.4;
    MetricConfig m2;
    m2.metric_id = 8372;
    m2.value_range = 1;  // binary metric
    m2.daily_participation = 0.6;

    DimensionConfig client_type;
    client_type.dimension_id = 1;
    client_type.cardinality = 3;
    DimensionConfig client_version;
    client_version.dimension_id = 2;
    client_version.cardinality = 200;

    dataset_ = new Dataset(GenerateDataset(config, {exp}, {m1, m2},
                                           {client_type, client_version}));
    bsi_ = new ExperimentBsiData(BuildExperimentBsiData(*dataset_, true));
  }

  static void TearDownTestSuite() {
    delete bsi_;
    delete dataset_;
    bsi_ = nullptr;
    dataset_ = nullptr;
  }

  // Experiment runs on days [104, 111]; days [100, 103] are pre-period.
  static constexpr Date kPreLo = 100;
  static constexpr Date kStart = 104;
  static constexpr Date kEnd = 111;

  static Dataset* dataset_;
  static ExperimentBsiData* bsi_;
};

Dataset* EngineTest::dataset_ = nullptr;
ExperimentBsiData* EngineTest::bsi_ = nullptr;

// Brute-force reference: per-bucket sums/counts straight from the rows.
BucketValues BruteForce(const Dataset& ds, uint64_t strategy_id,
                        uint64_t metric_id, Date lo, Date hi) {
  BucketValues out;
  out.sums.assign(ds.config.num_segments, 0.0);
  out.counts.assign(ds.config.num_segments, 0.0);
  std::map<UnitId, Date> exposed;
  for (int seg = 0; seg < ds.config.num_segments; ++seg) {
    exposed.clear();
    for (const ExposeRow& row : ds.segments[seg].expose) {
      if (row.strategy_id == strategy_id) {
        exposed[row.analysis_unit_id] = row.first_expose_date;
      }
    }
    for (const auto& [unit, date] : exposed) {
      if (date <= hi) out.counts[seg] += 1.0;
    }
    for (const MetricRow& row : ds.segments[seg].metrics) {
      if (row.metric_id != metric_id || row.date < lo || row.date > hi) {
        continue;
      }
      auto it = exposed.find(row.analysis_unit_id);
      if (it != exposed.end() && it->second <= row.date) {
        out.sums[seg] += static_cast<double>(row.value);
      }
    }
  }
  return out;
}

TEST_F(EngineTest, BsiPathMatchesBruteForce) {
  for (uint64_t strategy : {501u, 502u, 503u}) {
    for (uint64_t metric : {8371u, 8372u}) {
      const BucketValues expect =
          BruteForce(*dataset_, strategy, metric, kStart, kEnd);
      const BucketValues got =
          ComputeStrategyMetricBsi(*bsi_, strategy, metric, kStart, kEnd);
      EXPECT_EQ(got.sums, expect.sums) << strategy << "/" << metric;
      EXPECT_EQ(got.counts, expect.counts) << strategy << "/" << metric;
    }
  }
}

TEST_F(EngineTest, NormalBaselineMatchesBsiExactly) {
  for (uint64_t strategy : {501u, 502u}) {
    const BucketValues bsi_result =
        ComputeStrategyMetricBsi(*bsi_, strategy, 8371, kStart, kEnd);
    const BucketValues normal_result =
        ComputeStrategyMetricNormal(*dataset_, strategy, 8371, kStart, kEnd);
    EXPECT_EQ(bsi_result.sums, normal_result.sums);
    EXPECT_EQ(bsi_result.counts, normal_result.counts);
  }
}

TEST_F(EngineTest, ExposeBitmapBaselineMatchesBsiExactly) {
  const ExposeBitmapCache cache =
      ExposeBitmapCache::Build(*dataset_, 502, kStart, kEnd);
  const BucketValues bitmap_result = ComputeStrategyMetricExposeBitmap(
      *dataset_, cache, 8371, kStart, kEnd);
  const BucketValues bsi_result =
      ComputeStrategyMetricBsi(*bsi_, 502, 8371, kStart, kEnd);
  EXPECT_EQ(bitmap_result.sums, bsi_result.sums);
  EXPECT_EQ(bitmap_result.counts, bsi_result.counts);
}

TEST_F(EngineTest, MaskCachePathMatchesDirect) {
  for (uint64_t strategy : {501u, 502u}) {
    const ExposeMaskCache cache =
        ExposeMaskCache::Build(*bsi_, strategy, kStart, kEnd);
    for (uint64_t metric : {8371u, 8372u}) {
      const BucketValues direct =
          ComputeStrategyMetricBsi(*bsi_, strategy, metric, kStart, kEnd);
      const BucketValues cached =
          ComputeStrategyMetricBsiCached(*bsi_, cache, metric, kStart, kEnd);
      EXPECT_EQ(direct.sums, cached.sums);
      EXPECT_EQ(direct.counts, cached.counts);
    }
    // Sub-ranges of the cached window also agree.
    const BucketValues direct =
        ComputeStrategyMetricBsi(*bsi_, strategy, 8371, kStart + 2, kEnd - 1);
    const BucketValues cached = ComputeStrategyMetricBsiCached(
        *bsi_, cache, 8371, kStart + 2, kEnd - 1);
    EXPECT_EQ(direct.sums, cached.sums);
    EXPECT_EQ(direct.counts, cached.counts);
  }
}

TEST_F(EngineTest, IndexedNormalBaselineMatchesUnindexed) {
  const NormalDataIndex index = NormalDataIndex::Build(*dataset_);
  for (uint64_t strategy : {501u, 503u}) {
    const BucketValues plain =
        ComputeStrategyMetricNormal(*dataset_, strategy, 8371, kStart, kEnd);
    const BucketValues indexed = ComputeStrategyMetricNormalIndexed(
        *dataset_, index, strategy, 8371, kStart, kEnd);
    EXPECT_EQ(plain.sums, indexed.sums);
    EXPECT_EQ(plain.counts, indexed.counts);
  }
  // Missing strategy / metric behave as empty.
  const BucketValues missing = ComputeStrategyMetricNormalIndexed(
      *dataset_, index, 999999, 8371, kStart, kEnd);
  EXPECT_EQ(missing.total_sum(), 0.0);
  EXPECT_EQ(missing.total_count(), 0.0);
}

TEST_F(EngineTest, SingleDayWindow) {
  const BucketValues expect = BruteForce(*dataset_, 501, 8371, kStart, kStart);
  const BucketValues got =
      ComputeStrategyMetricBsi(*bsi_, 501, 8371, kStart, kStart);
  EXPECT_EQ(got.sums, expect.sums);
  EXPECT_EQ(got.counts, expect.counts);
}

TEST_F(EngineTest, ScorecardDetectsPositiveAndNegativeEffects) {
  const std::vector<ScorecardEntry> entries = ComputeScorecard(
      *bsi_, /*control=*/501, {502, 503}, {8371}, kStart, kEnd);
  ASSERT_EQ(entries.size(), 2u);
  const ScorecardEntry& up = entries[0];    // +12% effect
  const ScorecardEntry& down = entries[1];  // -5% effect
  EXPECT_GT(up.ttest.mean_diff, 0.0);
  EXPECT_LT(up.ttest.p_value, 0.05);
  EXPECT_LT(down.ttest.mean_diff, 0.0);
  // Directions and rough magnitudes match the configured effects (the
  // realized effect differs from the raw multiplier because values are
  // clamped to [1, range] and only post-exposure activity is shifted).
  EXPECT_GT(up.ttest.relative_diff, 0.02);
  EXPECT_LT(up.ttest.relative_diff, 0.4);
  EXPECT_LT(down.ttest.relative_diff, -0.01);
  EXPECT_GT(down.ttest.relative_diff, -0.4);
}

TEST_F(EngineTest, AaComparisonIsInsignificant) {
  // Comparing a strategy to itself: zero diff, p = 1.
  const BucketValues b =
      ComputeStrategyMetricBsi(*bsi_, 501, 8371, kStart, kEnd);
  const ScorecardEntry aa = CompareStrategies(8371, 501, b, 501, b);
  EXPECT_EQ(aa.ttest.mean_diff, 0.0);
  EXPECT_NEAR(aa.ttest.p_value, 1.0, 1e-9);
}

TEST_F(EngineTest, UniqueVisitorsMatchesBruteForce) {
  // Brute force: distinct units with >= 1 metric row on an exposed day.
  std::map<int, std::map<UnitId, Date>> exposed_by_seg;
  for (int seg = 0; seg < dataset_->config.num_segments; ++seg) {
    for (const ExposeRow& row : dataset_->segments[seg].expose) {
      if (row.strategy_id == 502) {
        exposed_by_seg[seg][row.analysis_unit_id] = row.first_expose_date;
      }
    }
  }
  std::vector<double> expect(dataset_->config.num_segments, 0.0);
  for (int seg = 0; seg < dataset_->config.num_segments; ++seg) {
    std::map<UnitId, bool> visited;
    for (const MetricRow& row : dataset_->segments[seg].metrics) {
      if (row.metric_id != 8371 || row.date < kStart || row.date > kEnd) {
        continue;
      }
      auto it = exposed_by_seg[seg].find(row.analysis_unit_id);
      if (it != exposed_by_seg[seg].end() && it->second <= row.date) {
        visited[row.analysis_unit_id] = true;
      }
    }
    expect[seg] = static_cast<double>(visited.size());
  }
  const BucketValues uv =
      ComputeStrategyUniqueVisitorsBsi(*bsi_, 502, 8371, kStart, kEnd);
  EXPECT_EQ(uv.sums, expect);
}

TEST_F(EngineTest, MetricCovarianceMatrix) {
  const std::vector<uint64_t> metric_ids = {8371, 8372};
  const std::vector<std::vector<double>> cov =
      ComputeMetricCovarianceMatrix(*bsi_, 502, metric_ids, kStart, kEnd);
  ASSERT_EQ(cov.size(), 2u);
  // Symmetric, with the diagonal equal to each metric's var_of_mean.
  EXPECT_DOUBLE_EQ(cov[0][1], cov[1][0]);
  for (size_t i = 0; i < 2; ++i) {
    const MetricEstimate est = EstimateRatio(ComputeStrategyMetricBsi(
        *bsi_, 502, metric_ids[i], kStart, kEnd));
    EXPECT_NEAR(cov[i][i], est.var_of_mean, est.var_of_mean * 1e-9);
    EXPECT_GT(cov[i][i], 0.0);
  }
  // Cauchy-Schwarz: |cov| <= sqrt(var_i * var_j).
  EXPECT_LE(cov[0][1] * cov[0][1], cov[0][0] * cov[1][1] * (1 + 1e-9));
  // Both metrics ride the same engagement skew, so they correlate
  // positively.
  EXPECT_GT(cov[0][1], 0.0);
}

// --- Pre-experiment / CUPED -------------------------------------------------

TEST_F(EngineTest, PreExperimentTreeMatchesLinear) {
  const PreAggIndex index =
      BuildPreAggIndex(*bsi_, 8371, kPreLo, kStart - 1);
  for (uint64_t strategy : {501u, 502u}) {
    const BucketValues linear = ComputePreExperimentBsi(
        *bsi_, strategy, 8371, kStart, /*lookback_days=*/4, kEnd);
    const BucketValues tree = ComputePreExperimentWithTree(
        *bsi_, index, strategy, kStart, 4, kEnd);
    EXPECT_EQ(linear.sums, tree.sums);
    EXPECT_EQ(linear.counts, tree.counts);
  }
}

TEST_F(EngineTest, PreExperimentMatchesBruteForce) {
  // Brute force: sum pre-period values of units exposed by kEnd.
  std::vector<double> expect(dataset_->config.num_segments, 0.0);
  for (int seg = 0; seg < dataset_->config.num_segments; ++seg) {
    std::map<UnitId, Date> exposed;
    for (const ExposeRow& row : dataset_->segments[seg].expose) {
      if (row.strategy_id == 502) {
        exposed[row.analysis_unit_id] = row.first_expose_date;
      }
    }
    for (const MetricRow& row : dataset_->segments[seg].metrics) {
      if (row.metric_id != 8371 || row.date < kPreLo ||
          row.date >= kStart) {
        continue;
      }
      auto it = exposed.find(row.analysis_unit_id);
      if (it != exposed.end() && it->second <= kEnd) {
        expect[seg] += static_cast<double>(row.value);
      }
    }
  }
  const BucketValues pre =
      ComputePreExperimentBsi(*bsi_, 502, 8371, kStart, 4, kEnd);
  EXPECT_EQ(pre.sums, expect);
}

TEST_F(EngineTest, CupedReducesVarianceOnCorrelatedMetric) {
  // The generator gives each user a stable base value, so pre- and
  // experiment-period means correlate strongly across buckets.
  const BucketValues y_t =
      ComputeStrategyMetricBsi(*bsi_, 502, 8371, kStart, kEnd);
  const BucketValues y_c =
      ComputeStrategyMetricBsi(*bsi_, 501, 8371, kStart, kEnd);
  const BucketValues x_t =
      ComputePreExperimentBsi(*bsi_, 502, 8371, kStart, 4, kEnd);
  const BucketValues x_c =
      ComputePreExperimentBsi(*bsi_, 501, 8371, kStart, 4, kEnd);
  const CupedScorecardEntry entry =
      CompareWithCuped(8371, 502, y_t, x_t, 501, y_c, x_c);
  EXPECT_GT(entry.theta, 0.0);
  EXPECT_GT(entry.treatment_variance_reduction, 0.2);
  EXPECT_GT(entry.control_variance_reduction, 0.2);
  // The effect stays detectable after adjustment and the CI tightens.
  EXPECT_LE(entry.adjusted_ttest.std_error, entry.raw.ttest.std_error);
  EXPECT_LT(entry.adjusted_ttest.p_value, 0.05);
}

// --- Deep dive ---------------------------------------------------------------

TEST_F(EngineTest, DimensionFilterMatchesBruteForce) {
  // client-type = 1 AND client-version > 134, the paper's example (§4.4).
  const std::vector<DimensionPredicate> preds = {
      {1, DimensionPredicate::Op::kEq, 1},
      {2, DimensionPredicate::Op::kGt, 134},
  };
  const Date dim_date = kStart;
  // Brute force filtered sums.
  std::vector<double> expect_sums(dataset_->config.num_segments, 0.0);
  for (int seg = 0; seg < dataset_->config.num_segments; ++seg) {
    std::map<UnitId, Date> exposed;
    for (const ExposeRow& row : dataset_->segments[seg].expose) {
      if (row.strategy_id == 502) {
        exposed[row.analysis_unit_id] = row.first_expose_date;
      }
    }
    std::map<UnitId, bool> passes;
    std::map<UnitId, uint64_t> ct, cv;
    for (const DimensionRow& row : dataset_->segments[seg].dimensions) {
      if (row.date != dim_date) continue;
      if (row.dimension_id == 1) ct[row.analysis_unit_id] = row.value;
      if (row.dimension_id == 2) cv[row.analysis_unit_id] = row.value;
    }
    for (const auto& [unit, v] : ct) {
      passes[unit] = (v == 1) && cv.count(unit) > 0 && cv[unit] > 134;
    }
    for (const MetricRow& row : dataset_->segments[seg].metrics) {
      if (row.metric_id != 8371 || row.date < kStart || row.date > kEnd) {
        continue;
      }
      auto pit = passes.find(row.analysis_unit_id);
      if (pit == passes.end() || !pit->second) continue;
      auto eit = exposed.find(row.analysis_unit_id);
      if (eit != exposed.end() && eit->second <= row.date) {
        expect_sums[seg] += static_cast<double>(row.value);
      }
    }
  }
  const BucketValues got = ComputeStrategyMetricBsiFiltered(
      *bsi_, 502, 8371, kStart, kEnd, preds, dim_date);
  EXPECT_EQ(got.sums, expect_sums);
}

TEST_F(EngineTest, DimensionBreakdownCoversValues) {
  const std::vector<DimensionBreakdownEntry> breakdown =
      ComputeDimensionBreakdown(*bsi_, 501, 502, 8371, kStart, kEnd,
                                /*dimension_id=*/1, {1, 2, 3}, kStart);
  ASSERT_EQ(breakdown.size(), 3u);
  double total_treat = 0;
  for (const DimensionBreakdownEntry& e : breakdown) {
    EXPECT_GT(e.entry.treatment.total_count, 0.0);
    total_treat += e.entry.treatment.total_sum;
  }
  // The three client types partition (almost all of) the filtered traffic.
  const BucketValues all =
      ComputeStrategyMetricBsi(*bsi_, 502, 8371, kStart, kEnd);
  EXPECT_GT(total_treat, 0.5 * all.total_sum());
  EXPECT_LE(total_treat, all.total_sum());
}

TEST_F(EngineTest, DailyBreakdownSumsToWindow) {
  const std::vector<ScorecardEntry> daily =
      ComputeDailyBreakdown(*bsi_, 501, 502, 8371, kStart, kEnd);
  ASSERT_EQ(daily.size(), static_cast<size_t>(kEnd - kStart + 1));
  double daily_total = 0;
  for (const ScorecardEntry& e : daily) daily_total += e.treatment.total_sum;
  const BucketValues window =
      ComputeStrategyMetricBsi(*bsi_, 502, 8371, kStart, kEnd);
  EXPECT_DOUBLE_EQ(daily_total, window.total_sum());
}

TEST_F(EngineTest, FilteredWithNoMatchingDimensionDataIsEmpty) {
  const std::vector<DimensionPredicate> preds = {
      {99, DimensionPredicate::Op::kEq, 1}};  // unknown dimension
  const BucketValues got = ComputeStrategyMetricBsiFiltered(
      *bsi_, 502, 8371, kStart, kEnd, preds, kStart);
  EXPECT_EQ(got.total_sum(), 0.0);
  EXPECT_EQ(got.total_count(), 0.0);
}

// --- Encoding ablation behaves identically ----------------------------------

TEST_F(EngineTest, ArrivalOrderEncodingGivesSameResults) {
  const ExperimentBsiData arrival = BuildExperimentBsiData(*dataset_, false);
  const BucketValues a =
      ComputeStrategyMetricBsi(arrival, 502, 8371, kStart, kEnd);
  const BucketValues b =
      ComputeStrategyMetricBsi(*bsi_, 502, 8371, kStart, kEnd);
  EXPECT_EQ(a.sums, b.sums);
  EXPECT_EQ(a.counts, b.counts);
}

}  // namespace
}  // namespace expbsi

namespace expbsi {
namespace {

TEST_F(EngineTest, RatioMetricMatchesBruteForce) {
  // click-rate-like ratio: metric 8372 (binary) over metric 8371 sums.
  const BucketValues ratio = ComputeStrategyRatioMetricBsi(
      *bsi_, 502, 8372, 8371, kStart, kEnd);
  const BucketValues num =
      ComputeStrategyMetricBsi(*bsi_, 502, 8372, kStart, kEnd);
  const BucketValues den =
      ComputeStrategyMetricBsi(*bsi_, 502, 8371, kStart, kEnd);
  EXPECT_EQ(ratio.sums, num.sums);
  EXPECT_EQ(ratio.counts, den.sums);
  const MetricEstimate est = EstimateRatio(ratio);
  EXPECT_NEAR(est.mean, num.total_sum() / den.total_sum(), 1e-12);
  EXPECT_GT(est.var_of_mean, 0.0);
}

}  // namespace
}  // namespace expbsi
