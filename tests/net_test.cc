// Unit coverage for the serving layer (DESIGN.md §9): envelope and message
// codec round trips, ping/pong over a real loopback socket, fault-free
// coordinator scatter/gather bit-identity against the in-process
// AdhocCluster and the direct engine, backpressure and admission control,
// and trace-span grafting across the process boundary. The adversarial
// paths (drops, truncations, duplicated replies, node kills, deadline
// expiry) live in net_chaos_test.cc; the real-process differential sweep
// in net_process_test.cc.

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/adhoc_cluster.h"
#include "cluster/placement.h"
#include "common/crc32c.h"
#include "net/node_health.h"
#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"
#include "net/coordinator.h"
#include "net/node_server.h"
#include "net/socket.h"
#include "net/transport.h"
#include "obs/trace.h"
#include "wire/byte_io.h"
#include "wire/envelope.h"
#include "wire/messages.h"

namespace expbsi {
namespace {

// ---------------------------------------------------------------------------
// Wire codec round trips
// ---------------------------------------------------------------------------

TEST(WireEnvelopeTest, RoundTripsBitIdentically) {
  wire::Envelope env;
  env.type = wire::MsgType::kQueryRequest;
  env.flags = 0x1234;
  env.request_id = 0xdeadbeef12345678ull;
  env.payload = std::string("hello\0world", 11);
  std::string frame;
  wire::EncodeEnvelope(env, &frame);
  Result<wire::Envelope> decoded = wire::DecodeEnvelope(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value() == env);
  std::string reencoded;
  wire::EncodeEnvelope(decoded.value(), &reencoded);
  EXPECT_EQ(frame, reencoded);
}

TEST(WireEnvelopeTest, RejectsTamperedFrames) {
  wire::Envelope env;
  env.type = wire::MsgType::kPing;
  env.request_id = 42;
  std::string frame;
  wire::EncodeEnvelope(env, &frame);

  // Bad magic.
  std::string bad = frame;
  bad[0] ^= 0x1;
  EXPECT_FALSE(wire::DecodeEnvelope(bad).ok());
  // Flipped payload-length byte: header CRC catches it before the length
  // is believed.
  bad = frame;
  bad[16] ^= 0x40;
  EXPECT_FALSE(wire::DecodeEnvelope(bad).ok());
  // Truncation and trailing garbage.
  EXPECT_FALSE(wire::DecodeEnvelope(
                   std::string_view(frame).substr(0, frame.size() - 1))
                   .ok());
  EXPECT_FALSE(wire::DecodeEnvelope(frame + "x").ok());
  // Short buffer never reads out of bounds.
  EXPECT_FALSE(wire::DecodeEnvelope("EB").ok());
}

TEST(WireEnvelopeTest, HeaderLengthCapIsEnforcedBeforeAllocation) {
  wire::Envelope env;
  env.type = wire::MsgType::kQueryResponse;
  std::string frame;
  wire::EncodeEnvelope(env, &frame);
  // Rewrite payload_len to a huge value and fix up the header CRC so only
  // the cap check can reject it.
  const uint32_t huge = wire::kMaxEnvelopePayloadBytes + 1;
  for (int i = 0; i < 4; ++i) {
    frame[16 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  const uint32_t crc = Crc32c(frame.data(), 20);
  for (int i = 0; i < 4; ++i) {
    frame[20 + i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  Result<size_t> size = wire::FrameSizeFromHeader(
      std::string_view(frame).substr(0, wire::kEnvelopeHeaderBytes));
  EXPECT_FALSE(size.ok());
}

TEST(WireMessagesTest, QueryRequestRoundTrips) {
  wire::WireQueryRequest req;
  req.strategy_ids = {801, 802, 0xffffffffffffffffull};
  req.metric_ids = {901};
  req.date_lo = 10;
  req.date_hi = 14;
  req.segments = {0, 3, 5};
  req.allow_degraded = true;
  req.want_trace = true;
  std::string payload;
  wire::EncodeQueryRequest(req, &payload);
  Result<wire::WireQueryRequest> decoded = wire::DecodeQueryRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value() == req);
  std::string reencoded;
  wire::EncodeQueryRequest(decoded.value(), &reencoded);
  EXPECT_EQ(payload, reencoded);
}

TEST(WireMessagesTest, QueryResponseRoundTrips) {
  wire::WireQueryResponse resp;
  wire::WireSegmentResult seg;
  seg.segment = 7;
  seg.sums = {1.5, -0.0, 1e300};
  seg.counts = {3.0, 4.0, 5.0};
  resp.segments.push_back(seg);
  wire::WireSegmentResult lost;
  lost.segment = 9;
  lost.lost = 1;
  resp.segments.push_back(lost);
  resp.retries = 2;
  resp.faults_survived = 1;
  resp.bytes_from_cold = 123456;
  resp.hot_hits = 42;
  resp.cpu_seconds = 0.125;
  wire::WireSpan span;
  span.id = 1;
  span.name = "node_query";
  span.duration_ns = 1000;
  span.attrs = {{"segments", 2}};
  resp.spans.push_back(span);
  std::string payload;
  wire::EncodeQueryResponse(resp, &payload);
  Result<wire::WireQueryResponse> decoded =
      wire::DecodeQueryResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value() == resp);
  std::string reencoded;
  wire::EncodeQueryResponse(decoded.value(), &reencoded);
  EXPECT_EQ(payload, reencoded);
}

TEST(WireMessagesTest, ErrorRoundTrips) {
  wire::WireError err{StatusCode::kCorruption, "segment 3 unreadable"};
  std::string payload;
  wire::EncodeError(err, &payload);
  Result<wire::WireError> decoded = wire::DecodeError(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().code, StatusCode::kCorruption);
  EXPECT_EQ(decoded.value().message, "segment 3 unreadable");
}

TEST(WireMessagesTest, RejectsOverdeclaredCounts) {
  // A 4-byte payload declaring 2^30 strategy ids must be rejected by the
  // count-vs-remaining-bytes check, never allocated.
  std::string payload;
  wire::PutU32(&payload, 1u << 30);
  EXPECT_FALSE(wire::DecodeQueryRequest(payload).ok());
  EXPECT_FALSE(wire::DecodeQueryResponse(payload).ok());
}

TEST(WireMessagesTest, SegmentFetchRoundTrips) {
  wire::WireSegmentFetch fetch;
  fetch.segment = 65535;
  std::string payload;
  wire::EncodeSegmentFetch(fetch, &payload);
  Result<wire::WireSegmentFetch> decoded = wire::DecodeSegmentFetch(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value() == fetch);
  std::string reencoded;
  wire::EncodeSegmentFetch(decoded.value(), &reencoded);
  EXPECT_EQ(payload, reencoded);
  // Trailing byte and out-of-range segment ids are rejected.
  EXPECT_FALSE(wire::DecodeSegmentFetch(payload + "x").ok());
  wire::WireSegmentFetch big;
  big.segment = 65536;
  std::string bad;
  wire::EncodeSegmentFetch(big, &bad);
  EXPECT_FALSE(wire::DecodeSegmentFetch(bad).ok());
}

TEST(WireMessagesTest, SegmentPushRoundTrips) {
  wire::WireSegmentPush push;
  push.segment = 3;
  wire::WireRepairBlob a;
  a.kind = 0;
  a.id = 801;
  a.date = 10;
  a.fingerprint = 0x1122334455667788ull;
  a.bytes = std::string("blob\0bytes", 10);
  wire::WireRepairBlob b = a;
  b.kind = 1;
  b.id = 901;
  b.bytes = "";
  push.blobs = {a, b};
  std::string payload;
  wire::EncodeSegmentPush(push, &payload);
  Result<wire::WireSegmentPush> decoded = wire::DecodeSegmentPush(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value() == push);
  std::string reencoded;
  wire::EncodeSegmentPush(decoded.value(), &reencoded);
  EXPECT_EQ(payload, reencoded);
}

TEST(WireMessagesTest, SegmentPushRejectsMalformedPayloads) {
  wire::WireSegmentPush push;
  push.segment = 3;
  wire::WireRepairBlob blob;
  blob.kind = 2;
  blob.id = 901;
  blob.date = 12;
  blob.fingerprint = 7;
  blob.bytes = "bsi";
  push.blobs = {blob};
  std::string clean;
  wire::EncodeSegmentPush(push, &clean);
  ASSERT_TRUE(wire::DecodeSegmentPush(clean).ok());

  // Trailing garbage.
  EXPECT_FALSE(wire::DecodeSegmentPush(clean + "x").ok());
  // Out-of-range BsiKind (> kState).
  wire::WireSegmentPush bad_kind = push;
  bad_kind.blobs[0].kind = 4;
  std::string payload;
  wire::EncodeSegmentPush(bad_kind, &payload);
  EXPECT_FALSE(wire::DecodeSegmentPush(payload).ok());
  // Non-ascending (kind, id, date) order: duplicates and swaps both break
  // canonical form.
  wire::WireSegmentPush dup = push;
  dup.blobs.push_back(push.blobs[0]);
  wire::EncodeSegmentPush(dup, &payload);
  EXPECT_FALSE(wire::DecodeSegmentPush(payload).ok());
  // Hostile blob count with no bytes behind it: rejected before allocation.
  std::string hostile;
  wire::PutU32(&hostile, 3);          // segment
  wire::PutU32(&hostile, 1u << 30);   // count
  EXPECT_FALSE(wire::DecodeSegmentPush(hostile).ok());
  // Overdeclared blob length.
  wire::WireSegmentPush long_blob = push;
  long_blob.blobs[0].bytes = "0123456789";
  wire::EncodeSegmentPush(long_blob, &payload);
  const size_t len_at = payload.size() - 10 - 4;
  payload[len_at] = static_cast<char>(0xff);  // 10 -> 0xff...
  EXPECT_FALSE(wire::DecodeSegmentPush(payload).ok());
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

TEST(PlacementTest, ReplicaSetsAreDistinctInRangeAndSized) {
  for (const auto& [nodes, segments, r] :
       std::vector<std::tuple<int, int, int>>{
           {1, 4, 1}, {3, 6, 2}, {4, 16, 3}, {5, 7, 2}, {8, 64, 5}}) {
    const Placement placement(nodes, segments, r);
    for (int seg = 0; seg < segments; ++seg) {
      const std::vector<int>& replicas = placement.ReplicasOf(seg);
      ASSERT_EQ(replicas.size(), static_cast<size_t>(std::min(r, nodes)));
      std::set<int> distinct(replicas.begin(), replicas.end());
      EXPECT_EQ(distinct.size(), replicas.size());
      for (int n : replicas) {
        EXPECT_GE(n, 0);
        EXPECT_LT(n, nodes);
        EXPECT_TRUE(placement.IsReplica(seg, n));
      }
      EXPECT_EQ(placement.PrimaryOf(seg), replicas[0]);
    }
  }
}

TEST(PlacementTest, PrimariesAreBalancedAndCoverEveryNode) {
  for (const auto& [nodes, segments] : std::vector<std::pair<int, int>>{
           {3, 6}, {4, 16}, {5, 7}, {8, 64}, {7, 7}}) {
    const Placement placement(nodes, segments, 2);
    std::vector<int> primaries(nodes, 0);
    for (int seg = 0; seg < segments; ++seg) {
      ++primaries[placement.PrimaryOf(seg)];
    }
    const auto [lo, hi] = std::minmax_element(primaries.begin(),
                                              primaries.end());
    EXPECT_GE(*lo, 1) << nodes << " nodes, " << segments
                      << " segments: a node owns no primary";
    EXPECT_LE(*hi - *lo, 1) << "primary imbalance";
  }
}

TEST(PlacementTest, DeterministicAndPrimariesIndependentOfR) {
  const Placement a(5, 32, 2);
  const Placement b(5, 32, 2);
  const Placement wide(5, 32, 4);
  for (int seg = 0; seg < 32; ++seg) {
    EXPECT_EQ(a.ReplicasOf(seg), b.ReplicasOf(seg));
    // Raising R only appends failover targets; the primary (and the
    // fault-free routing) never moves.
    EXPECT_EQ(a.PrimaryOf(seg), wide.PrimaryOf(seg));
    EXPECT_EQ(wide.ReplicasOf(seg)[1], a.ReplicasOf(seg)[1]);
  }
}

TEST(PlacementTest, SegmentsOfAgreesWithIsReplica) {
  const Placement placement(4, 10, 3);
  for (int n = 0; n < 4; ++n) {
    const std::vector<uint32_t> owned = placement.SegmentsOf(n);
    EXPECT_TRUE(std::is_sorted(owned.begin(), owned.end()));
    std::set<uint32_t> owned_set(owned.begin(), owned.end());
    for (int seg = 0; seg < 10; ++seg) {
      EXPECT_EQ(placement.IsReplica(seg, n),
                owned_set.count(static_cast<uint32_t>(seg)) == 1)
          << "node " << n << " segment " << seg;
    }
  }
}

// ---------------------------------------------------------------------------
// Node health registry
// ---------------------------------------------------------------------------

TEST(NodeHealthTest, MarkdownAfterConsecutiveFailuresAndSuccessResets) {
  NodeHealth health(2);
  EXPECT_TRUE(health.Usable(0));
  health.RecordFailure(0);
  EXPECT_FALSE(health.IsMarkedDown(0));  // threshold is 2
  health.RecordSuccess(0, 0.01);         // resets the streak
  EXPECT_EQ(health.consecutive_failures(0), 0);
  health.RecordFailure(0);
  health.RecordFailure(0);
  EXPECT_TRUE(health.IsMarkedDown(0));
  EXPECT_FALSE(health.Usable(0));
  EXPECT_TRUE(health.Usable(1));  // per-node state
}

TEST(NodeHealthTest, ProbeBackoffDoublesAndSuccessRevives) {
  NodeHealth health(1);
  health.RecordFailure(0);
  health.RecordFailure(0);
  ASSERT_TRUE(health.IsMarkedDown(0));
  // initial_backoff_rounds = 1: one round later the node is probe-due.
  health.BeginRound();
  EXPECT_TRUE(health.Usable(0));
  // The probe fails: backoff doubles to 2 rounds.
  health.RecordFailure(0);
  EXPECT_FALSE(health.Usable(0));
  health.BeginRound();
  EXPECT_FALSE(health.Usable(0));
  health.BeginRound();
  EXPECT_TRUE(health.Usable(0));
  // This probe succeeds: fully revived, not just probe-due.
  health.RecordSuccess(0, 0.01);
  EXPECT_FALSE(health.IsMarkedDown(0));
  EXPECT_TRUE(health.Usable(0));
  EXPECT_EQ(health.consecutive_failures(0), 0);
}

TEST(NodeHealthTest, HedgeDelayTracksTheLatencyQuantile) {
  // Small default so the default_delay * 0.1 floor cannot mask the
  // quantile under test.
  const double kDefault = 0.005;
  NodeHealth health(1);
  // Below min_latency_samples (8) the default applies.
  for (int i = 0; i < 7; ++i) health.RecordSuccess(0, 1.0);
  EXPECT_DOUBLE_EQ(health.HedgeDelaySeconds(0, kDefault), kDefault);
  // Ten samples 0.01..0.10: the 0.9 quantile indexes sorted[9 * 0.9] = 0.09.
  NodeHealth fresh(1);
  for (int i = 1; i <= 10; ++i) fresh.RecordSuccess(0, 0.01 * i);
  EXPECT_DOUBLE_EQ(fresh.HedgeDelaySeconds(0, kDefault), 0.09);
  // A uniformly fast node is floored at a tenth of the default, so hedges
  // cannot fire on every RPC.
  NodeHealth fast(1);
  for (int i = 0; i < 10; ++i) fast.RecordSuccess(0, 1e-6);
  EXPECT_DOUBLE_EQ(fast.HedgeDelaySeconds(0, kDefault), kDefault * 0.1);
}

// ---------------------------------------------------------------------------
// Trace import
// ---------------------------------------------------------------------------

TEST(TraceImportTest, ImportedSpansNestUnderParent) {
  obs::QueryTrace trace("coordinator");
  const uint32_t root = trace.BeginSpan("coordinator", 0);
  const uint32_t rpc = trace.BeginSpan("node_rpc", root);
  const uint32_t remote_root =
      trace.ImportSpan(rpc, "node_query", 10, 500, {{"segments", 3}});
  trace.ImportSpan(remote_root, "segment_execute", 5, 100, {});
  trace.EndSpan(rpc);
  trace.EndSpan(root);
  const std::vector<obs::QueryTrace::Span> spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[2].name, "node_query");
  EXPECT_EQ(spans[2].parent_id, rpc);
  EXPECT_FALSE(spans[2].open);
  EXPECT_EQ(spans[2].attrs.size(), 1u);
  EXPECT_EQ(spans[3].parent_id, remote_root);
  // Re-based: child start = parent's start + relative offset.
  EXPECT_EQ(spans[3].start_ns, spans[2].start_ns + 5);
  // The flame tree renders without tripping the parent-before-child check.
  EXPECT_NE(trace.ToText().find("segment_execute"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sockets + servers on loopback
// ---------------------------------------------------------------------------

class NetServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.num_users = 6000;
    config.num_segments = 8;
    config.num_days = 5;
    config.start_date = 10;
    config.seed = 47;

    ExperimentConfig exp;
    exp.strategy_ids = {801, 802};
    exp.arm_effects = {1.0, 1.1};
    exp.traffic_salt = 5;

    MetricConfig m1;
    m1.metric_id = 901;
    m1.value_range = 100;
    m1.daily_participation = 0.5;
    MetricConfig m2;
    m2.metric_id = 902;
    m2.value_range = 1;
    m2.daily_participation = 0.7;

    dataset_ = new Dataset(GenerateDataset(config, {exp}, {m1, m2}, {}));
    bsi_ = new ExperimentBsiData(BuildExperimentBsiData(*dataset_, true));
    cold_ = new BsiStore(BuildColdStore(*bsi_));
  }

  static void TearDownTestSuite() {
    delete cold_;
    delete bsi_;
    delete dataset_;
  }

  // Starts `n` node servers over the shared cold store and returns them
  // with a coordinator options block pointing at their ports.
  static std::vector<std::unique_ptr<net::NodeServer>> StartNodes(
      int n, net::CoordinatorOptions* options, int max_inflight = 4) {
    std::vector<std::unique_ptr<net::NodeServer>> nodes;
    options->node_ports.clear();
    for (int i = 0; i < n; ++i) {
      net::NodeServerOptions node_options;
      node_options.node_id = i;
      node_options.max_inflight = max_inflight;
      auto node = std::make_unique<net::NodeServer>(cold_, node_options);
      EXPECT_TRUE(node->Start().ok());
      options->node_ports.push_back(node->port());
      nodes.push_back(std::move(node));
    }
    options->num_segments = dataset_->config.num_segments;
    return nodes;
  }

  static Dataset* dataset_;
  static ExperimentBsiData* bsi_;
  static BsiStore* cold_;
};

Dataset* NetServingTest::dataset_ = nullptr;
ExperimentBsiData* NetServingTest::bsi_ = nullptr;
BsiStore* NetServingTest::cold_ = nullptr;

TEST_F(NetServingTest, PingPong) {
  net::NodeServerOptions options;
  net::NodeServer node(cold_, options);
  ASSERT_TRUE(node.Start().ok());
  const net::Deadline deadline = net::Deadline::After(5.0);
  Result<net::Socket> sock = net::Connect(node.port(), deadline);
  ASSERT_TRUE(sock.ok()) << sock.status().ToString();
  wire::Envelope ping;
  ping.type = wire::MsgType::kPing;
  ping.request_id = 77;
  ASSERT_TRUE(
      net::SendEnvelope(sock.value(), ping, deadline, nullptr).ok());
  Result<wire::Envelope> pong =
      net::RecvEnvelope(sock.value(), deadline, 77);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong.value().type, wire::MsgType::kPong);
  EXPECT_EQ(pong.value().request_id, 77u);
  node.Stop();
}

TEST_F(NetServingTest, CoordinatorMatchesInProcessClusterAndEngine) {
  net::CoordinatorOptions options;
  std::vector<std::unique_ptr<net::NodeServer>> nodes =
      StartNodes(3, &options);
  net::Coordinator coordinator(options);
  Result<AdhocCluster::QueryStats> remote =
      coordinator.QueryBsi({801, 802}, {901, 902}, 10, 14);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  AdhocClusterConfig cluster_config;
  cluster_config.num_nodes = 3;
  AdhocCluster cluster(dataset_, bsi_, cluster_config);
  Result<AdhocCluster::QueryStats> local =
      cluster.QueryBsi({801, 802}, {901, 902}, 10, 14);
  ASSERT_TRUE(local.ok());

  ASSERT_EQ(remote.value().results.size(), local.value().results.size());
  for (const auto& [pair, values] : remote.value().results) {
    // Bit-identical across the process boundary (doubles travel as IEEE
    // bit patterns) AND against the direct engine.
    const BucketValues& in_process = local.value().results.at(pair);
    EXPECT_EQ(values.sums, in_process.sums)
        << pair.first << "/" << pair.second;
    EXPECT_EQ(values.counts, in_process.counts);
    const BucketValues direct =
        ComputeStrategyMetricBsi(*bsi_, pair.first, pair.second, 10, 14);
    EXPECT_EQ(values.sums, direct.sums);
    EXPECT_EQ(values.counts, direct.counts);
  }
  EXPECT_TRUE(remote.value().degraded.lost_segments.empty());
  EXPECT_EQ(remote.value().degraded.segments_answered,
            dataset_->config.num_segments);
  EXPECT_GT(remote.value().bytes_from_cold, 0u);
  EXPECT_GT(remote.value().total_cpu_seconds, 0.0);
  for (auto& node : nodes) node->Stop();
}

TEST_F(NetServingTest, RemoteSpansAreGraftedIntoTheQueryTrace) {
  net::CoordinatorOptions options;
  std::vector<std::unique_ptr<net::NodeServer>> nodes =
      StartNodes(2, &options);
  net::Coordinator coordinator(options);
  Result<AdhocCluster::QueryStats> stats =
      coordinator.QueryBsi({801}, {901}, 10, 14);
  ASSERT_TRUE(stats.ok());
  ASSERT_NE(stats.value().trace, nullptr);
  int node_rpc = 0, node_query = 0, segment_execute = 0;
  for (const obs::QueryTrace::Span& span : stats.value().trace->spans()) {
    EXPECT_FALSE(span.open);
    if (span.name == "node_rpc") ++node_rpc;
    if (span.name == "node_query") ++node_query;
    if (span.name == "segment_execute") ++segment_execute;
  }
  EXPECT_EQ(node_rpc, 2);
  EXPECT_EQ(node_query, 2);  // one remote root grafted per node
  EXPECT_EQ(segment_execute, dataset_->config.num_segments);
  for (auto& node : nodes) node->Stop();
}

TEST_F(NetServingTest, BackpressureRejectsBeyondMaxInflight) {
  net::NodeServerOptions options;
  options.max_inflight = 0;  // reject everything
  net::NodeServer node(cold_, options);
  ASSERT_TRUE(node.Start().ok());
  const net::Deadline deadline = net::Deadline::After(5.0);
  Result<net::Socket> sock = net::Connect(node.port(), deadline);
  ASSERT_TRUE(sock.ok());
  wire::Envelope env;
  env.type = wire::MsgType::kQueryRequest;
  env.request_id = 5;
  wire::WireQueryRequest req;
  req.strategy_ids = {801};
  req.metric_ids = {901};
  req.date_lo = 10;
  req.date_hi = 14;
  req.segments = {0};
  wire::EncodeQueryRequest(req, &env.payload);
  ASSERT_TRUE(net::SendEnvelope(sock.value(), env, deadline, nullptr).ok());
  Result<wire::Envelope> reply =
      net::RecvEnvelope(sock.value(), deadline, 5);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.value().type, wire::MsgType::kError);
  Result<wire::WireError> err = wire::DecodeError(reply.value().payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err.value().code, StatusCode::kUnavailable);
  EXPECT_EQ(node.backpressure_rejections(), 1u);
  node.Stop();
}

TEST_F(NetServingTest, AdmissionControlRejectsExcessQueries) {
  net::CoordinatorOptions options;
  std::vector<std::unique_ptr<net::NodeServer>> nodes =
      StartNodes(1, &options);
  options.max_concurrent_queries = 0;
  net::Coordinator coordinator(options);
  Result<AdhocCluster::QueryStats> stats =
      coordinator.QueryBsi({801}, {901}, 10, 14);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(coordinator.admission_rejections(), 1u);
  for (auto& node : nodes) node->Stop();
}

TEST_F(NetServingTest, MalformedRequestGetsErrorNotCrash) {
  net::NodeServerOptions options;
  net::NodeServer node(cold_, options);
  ASSERT_TRUE(node.Start().ok());
  const net::Deadline deadline = net::Deadline::After(5.0);
  Result<net::Socket> sock = net::Connect(node.port(), deadline);
  ASSERT_TRUE(sock.ok());
  wire::Envelope env;
  env.type = wire::MsgType::kQueryRequest;
  env.request_id = 9;
  env.payload = "not a query request";
  ASSERT_TRUE(net::SendEnvelope(sock.value(), env, deadline, nullptr).ok());
  Result<wire::Envelope> reply =
      net::RecvEnvelope(sock.value(), deadline, 9);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().type, wire::MsgType::kError);
  // The node is still alive and serves the next request on the SAME
  // connection.
  wire::Envelope ping;
  ping.type = wire::MsgType::kPing;
  ping.request_id = 10;
  ASSERT_TRUE(
      net::SendEnvelope(sock.value(), ping, deadline, nullptr).ok());
  Result<wire::Envelope> pong =
      net::RecvEnvelope(sock.value(), deadline, 10);
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong.value().type, wire::MsgType::kPong);
  node.Stop();
}

TEST_F(NetServingTest, RecvSkipCapClosesFloodedExchange) {
  // A peer spraying frames with stale request ids must not pin the
  // receiver until its deadline: after kMaxSkippedFrames mismatches the
  // exchange is closed Unavailable.
  net::NodeServerOptions options;
  net::NodeServer node(cold_, options);
  ASSERT_TRUE(node.Start().ok());
  const net::Deadline deadline = net::Deadline::After(10.0);
  Result<net::Socket> sock = net::Connect(node.port(), deadline);
  ASSERT_TRUE(sock.ok());
  // Each ping comes back as a pong carrying the ping's id -- none of them
  // the id we will wait for.
  for (uint32_t i = 0; i <= net::kMaxSkippedFrames; ++i) {
    wire::Envelope ping;
    ping.type = wire::MsgType::kPing;
    ping.request_id = 100 + i;
    ASSERT_TRUE(
        net::SendEnvelope(sock.value(), ping, deadline, nullptr).ok());
  }
  Result<wire::Envelope> reply =
      net::RecvEnvelope(sock.value(), deadline, /*expected_request_id=*/9999);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  node.Stop();
}

TEST_F(NetServingTest, MisroutedSegmentIsRefusedNotServedAsZeros) {
  // Replicated serving: a node owning {1, 2} must refuse segment 0 loudly.
  // Against a pruned store a misroute would otherwise read as semantic
  // absence and return silent zeros -- the exact SRM hazard.
  net::NodeServerOptions options;
  options.owned_segments = {1, 2};
  net::NodeServer node(cold_, options);
  ASSERT_TRUE(node.Start().ok());
  const net::Deadline deadline = net::Deadline::After(5.0);
  Result<net::Socket> sock = net::Connect(node.port(), deadline);
  ASSERT_TRUE(sock.ok());
  wire::Envelope env;
  env.type = wire::MsgType::kQueryRequest;
  env.request_id = 11;
  wire::WireQueryRequest req;
  req.strategy_ids = {801};
  req.metric_ids = {901};
  req.date_lo = 10;
  req.date_hi = 14;
  req.segments = {0, 1};
  wire::EncodeQueryRequest(req, &env.payload);
  ASSERT_TRUE(net::SendEnvelope(sock.value(), env, deadline, nullptr).ok());
  Result<wire::Envelope> reply =
      net::RecvEnvelope(sock.value(), deadline, 11);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.value().type, wire::MsgType::kError);
  Result<wire::WireError> err = wire::DecodeError(reply.value().payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err.value().code, StatusCode::kInvalidArgument);
  EXPECT_NE(err.value().message.find("not owned"), std::string::npos);
  node.Stop();
}

TEST_F(NetServingTest, SegmentFetchReturnsFingerprintedBlobsOrNotFound) {
  net::NodeServerOptions options;
  net::NodeServer node(cold_, options);
  ASSERT_TRUE(node.Start().ok());
  const net::Deadline deadline = net::Deadline::After(5.0);
  Result<net::Socket> sock = net::Connect(node.port(), deadline);
  ASSERT_TRUE(sock.ok());

  wire::Envelope env;
  env.type = wire::MsgType::kSegmentFetch;
  env.request_id = 21;
  wire::WireSegmentFetch fetch;
  fetch.segment = 2;
  wire::EncodeSegmentFetch(fetch, &env.payload);
  ASSERT_TRUE(net::SendEnvelope(sock.value(), env, deadline, nullptr).ok());
  Result<wire::Envelope> reply =
      net::RecvEnvelope(sock.value(), deadline, 21);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply.value().type, wire::MsgType::kSegmentPush);
  Result<wire::WireSegmentPush> push =
      wire::DecodeSegmentPush(reply.value().payload);
  ASSERT_TRUE(push.ok()) << push.status().ToString();
  EXPECT_EQ(push.value().segment, 2u);
  ASSERT_FALSE(push.value().blobs.empty());
  // Every shipped blob matches the warehouse bytes and fingerprint.
  for (const wire::WireRepairBlob& blob : push.value().blobs) {
    BsiStoreKey key{static_cast<uint16_t>(push.value().segment),
                    static_cast<BsiKind>(blob.kind), blob.id, blob.date};
    Result<const std::string*> stored = cold_->Get(key);
    ASSERT_TRUE(stored.ok());
    EXPECT_EQ(*stored.value(), blob.bytes);
    Result<uint64_t> fp = cold_->Fingerprint(key);
    ASSERT_TRUE(fp.ok());
    EXPECT_EQ(fp.value(), blob.fingerprint);
  }

  // A segment the store has nothing for is NotFound, not an empty push.
  env.request_id = 22;
  fetch.segment = 4000;
  env.payload.clear();
  wire::EncodeSegmentFetch(fetch, &env.payload);
  ASSERT_TRUE(net::SendEnvelope(sock.value(), env, deadline, nullptr).ok());
  reply = net::RecvEnvelope(sock.value(), deadline, 22);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.value().type, wire::MsgType::kError);
  Result<wire::WireError> err = wire::DecodeError(reply.value().payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err.value().code, StatusCode::kNotFound);
  node.Stop();
}

}  // namespace
}  // namespace expbsi
