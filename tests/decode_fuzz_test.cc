// Corrupt-bytes fuzz harness for every byte-decoding path in the codebase
// (docs/TESTING.md "Decode fuzzing"): Container::Deserialize,
// RoaringBitmap::Deserialize, Bsi::Deserialize, the snapshot reader, the
// WAL segment replay path, and the serving protocol's wire codec
// (envelope framing plus every payload decoder, DESIGN.md §9).
// Each iteration serializes a clean object, applies one seeded mutation
// (truncation, 1-8 bitflips, a garbage window, pure garbage, or appended
// bytes) and replays the decoder. The contract:
//
//   (a) no crash, hang or sanitizer report (CI runs this under ASan);
//   (b) no allocation sized from untrusted metadata -- hostile counts are
//       rejected against the remaining bytes BEFORE any resize (the CI ASan
//       leg enforces this mechanically with max_allocation_size_mb);
//   (c) no silent wrong accept: anything a raw decoder accepts must be
//       self-consistent (it re-serializes and re-decodes to an equal
//       object), and the *checksummed* snapshot layer must never present a
//       mutated file's segment as recovered -- surviving segments are bit
//       identical, everything else is enumerated as lost.
//
// Reproduction knobs, same style as the chaos suite:
//   EXPBSI_FUZZ_SEED=<seed>   replay exactly one iteration per path
//   EXPBSI_FUZZ_ITERS=<n>     iterations per path (default 150; the CI
//                             persistence job runs 2500 per path = 10k)
//
// Known-nasty blobs live in tests/corpus/malformed_blobs.txt and are
// replayed before the random exploration.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bsi/bsi.h"
#include "common/file_io.h"
#include "common/rng.h"
#include "common/status.h"
#include "obs/flight_recorder.h"
#include "roaring/container.h"
#include "roaring/roaring_bitmap.h"
#include "storage/bsi_store.h"
#include "storage/snapshot.h"
#include "wal/wal.h"
#include "wire/byte_io.h"
#include "wire/envelope.h"
#include "wire/messages.h"

namespace expbsi {
namespace {

// ---------------------------------------------------------------------------
// Seed schedule and mutators
// ---------------------------------------------------------------------------

uint64_t Splitmix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

int FuzzIters() {
  if (const char* env = std::getenv("EXPBSI_FUZZ_ITERS")) {
    return static_cast<int>(std::strtol(env, nullptr, 0));
  }
  return 150;
}

std::vector<uint64_t> FuzzSeedSchedule(uint64_t base) {
  if (const char* env = std::getenv("EXPBSI_FUZZ_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(env, nullptr, 0))};
  }
  std::vector<uint64_t> seeds;
  uint64_t x = base;
  for (int i = 0, n = FuzzIters(); i < n; ++i) {
    x = Splitmix(x);
    seeds.push_back(x);
  }
  return seeds;
}

std::string Ctx(uint64_t seed, const std::string& what) {
  return what + " (reproduce: EXPBSI_FUZZ_SEED=" + std::to_string(seed) +
         " ./build/tests/expbsi_tests"
         " --gtest_filter='DecodeFuzzTest.*')";
}

enum class MutationKind {
  kTruncate,
  kBitflips,
  kGarbageWindow,
  kPureGarbage,
  kExtend,
};

// One seeded mutation of `clean`. kBitflips always changes the bytes; the
// others can degenerate into a no-op (e.g. truncating at full length), which
// callers detect by comparing against `clean`.
std::string Mutate(Rng& rng, const std::string& clean, MutationKind kind) {
  std::string out = clean;
  switch (kind) {
    case MutationKind::kTruncate:
      out = out.substr(0, rng.NextBounded(out.size() + 1));
      break;
    case MutationKind::kBitflips: {
      if (out.empty()) {
        out.push_back('\x01');
        break;
      }
      const int flips = 1 + static_cast<int>(rng.NextBounded(8));
      for (int i = 0; i < flips; ++i) {
        const size_t bit = rng.NextBounded(out.size() * 8);
        out[bit / 8] ^= static_cast<char>(1u << (bit % 8));
      }
      break;
    }
    case MutationKind::kGarbageWindow: {
      if (out.empty()) break;
      const size_t start = rng.NextBounded(out.size());
      const size_t len =
          std::min(out.size() - start, 1 + rng.NextBounded(32));
      for (size_t i = 0; i < len; ++i) {
        out[start + i] = static_cast<char>(rng.Next() & 0xff);
      }
      break;
    }
    case MutationKind::kPureGarbage: {
      out.resize(rng.NextBounded(600));
      for (char& c : out) c = static_cast<char>(rng.Next() & 0xff);
      break;
    }
    case MutationKind::kExtend: {
      const size_t extra = 1 + rng.NextBounded(64);
      for (size_t i = 0; i < extra; ++i) {
        out.push_back(static_cast<char>(rng.Next() & 0xff));
      }
      break;
    }
  }
  return out;
}

MutationKind RandomMutation(Rng& rng) {
  return static_cast<MutationKind>(rng.NextBounded(5));
}

// ---------------------------------------------------------------------------
// Clean-object builders
// ---------------------------------------------------------------------------

Container RandomContainer(Rng& rng) {
  std::vector<uint16_t> values;
  switch (rng.NextBounded(4)) {
    case 0: {  // sparse array
      std::set<uint16_t> s;
      const int n = static_cast<int>(rng.NextBounded(200));
      for (int i = 0; i < n; ++i) {
        s.insert(static_cast<uint16_t>(rng.NextBounded(65536)));
      }
      values.assign(s.begin(), s.end());
      break;
    }
    case 1: {  // dense -> bitmap
      std::set<uint16_t> s;
      for (int i = 0; i < 6000; ++i) {
        s.insert(static_cast<uint16_t>(rng.NextBounded(65536)));
      }
      values.assign(s.begin(), s.end());
      break;
    }
    case 2: {  // runs
      uint32_t v = rng.NextBounded(100);
      while (v < 65500 && values.size() < 5000) {
        const uint32_t len = 1 + rng.NextBounded(50);
        for (uint32_t i = 0; i < len && v + i < 65536; ++i) {
          values.push_back(static_cast<uint16_t>(v + i));
        }
        v += len + 1 + static_cast<uint32_t>(rng.NextBounded(200));
      }
      break;
    }
    default:  // empty / tiny
      if (rng.NextBernoulli(0.5)) {
        values.push_back(static_cast<uint16_t>(rng.NextBounded(65536)));
      }
      break;
  }
  Container c = Container::FromSorted(values.data(),
                                      static_cast<int>(values.size()));
  if (rng.NextBernoulli(0.5)) c.RunOptimize();
  return c;
}

RoaringBitmap RandomBitmap(Rng& rng) {
  RoaringBitmap bm;
  const int n = static_cast<int>(rng.NextBounded(3000));
  for (int i = 0; i < n; ++i) {
    bm.Add(static_cast<uint32_t>(rng.NextBounded(1u << 22)));
  }
  if (rng.NextBernoulli(0.4)) {
    const uint32_t start = rng.NextBounded(1u << 20);
    bm.AddRange(start, start + rng.NextBounded(20000));
  }
  if (rng.NextBernoulli(0.5)) bm.RunOptimize();
  return bm;
}

Bsi RandomBsi(Rng& rng) {
  std::vector<std::pair<uint32_t, uint64_t>> pairs;
  const int n = static_cast<int>(rng.NextBounded(2000));
  const uint64_t range = uint64_t{1} << (1 + rng.NextBounded(40));
  std::set<uint32_t> seen;
  for (int i = 0; i < n; ++i) {
    const uint32_t pos = static_cast<uint32_t>(rng.NextBounded(1u << 20));
    if (seen.insert(pos).second) {
      pairs.push_back({pos, rng.NextBounded(range)});
    }
  }
  return Bsi::FromPairs(std::move(pairs));
}

// ---------------------------------------------------------------------------
// Raw-decoder iterations: decode; on accept, require self-consistency.
// ---------------------------------------------------------------------------

void RunContainerIteration(uint64_t seed) {
  Rng rng(seed);
  const Container clean = RandomContainer(rng);
  std::string bytes;
  clean.Serialize(&bytes);
  const std::string mutated = Mutate(rng, bytes, RandomMutation(rng));
  const std::string ctx = Ctx(seed, "container");

  const uint8_t* cursor = reinterpret_cast<const uint8_t*>(mutated.data());
  const uint8_t* end = cursor + mutated.size();
  const Result<Container> parsed = Container::Deserialize(&cursor, end);
  if (!parsed.ok()) return;  // clean rejection
  ASSERT_LE(cursor, end) << ctx << " cursor ran past the buffer";
  // Accepted: must round-trip to an equal object.
  std::string again;
  parsed.value().Serialize(&again);
  const uint8_t* c2 = reinterpret_cast<const uint8_t*>(again.data());
  const Result<Container> reparsed =
      Container::Deserialize(&c2, c2 + again.size());
  ASSERT_TRUE(reparsed.ok()) << ctx << " accepted bytes do not round-trip: "
                             << reparsed.status().ToString();
  EXPECT_TRUE(parsed.value().Equals(reparsed.value())) << ctx;
  EXPECT_EQ(parsed.value().Cardinality(), reparsed.value().Cardinality())
      << ctx;
}

void RunRoaringIteration(uint64_t seed) {
  Rng rng(seed);
  const RoaringBitmap clean = RandomBitmap(rng);
  const std::string bytes = clean.SerializeToString();
  const std::string mutated = Mutate(rng, bytes, RandomMutation(rng));
  const std::string ctx = Ctx(seed, "roaring");

  const Result<RoaringBitmap> parsed = RoaringBitmap::Deserialize(mutated);
  if (!parsed.ok()) return;
  const Result<RoaringBitmap> reparsed =
      RoaringBitmap::Deserialize(parsed.value().SerializeToString());
  ASSERT_TRUE(reparsed.ok()) << ctx << " accepted bytes do not round-trip: "
                             << reparsed.status().ToString();
  EXPECT_TRUE(parsed.value().Equals(reparsed.value())) << ctx;
  EXPECT_EQ(parsed.value().Cardinality(),
            static_cast<uint64_t>(parsed.value().ToVector().size()))
      << ctx << " cardinality out of sync with contents";
}

void RunBsiIteration(uint64_t seed) {
  Rng rng(seed);
  const Bsi clean = RandomBsi(rng);
  const std::string bytes = clean.SerializeToString();
  const std::string mutated = Mutate(rng, bytes, RandomMutation(rng));
  const std::string ctx = Ctx(seed, "bsi");

  const Result<Bsi> parsed = Bsi::Deserialize(mutated);
  if (!parsed.ok()) return;
  const Result<Bsi> reparsed =
      Bsi::Deserialize(parsed.value().SerializeToString());
  ASSERT_TRUE(reparsed.ok()) << ctx << " accepted bytes do not round-trip: "
                             << reparsed.status().ToString();
  EXPECT_TRUE(parsed.value().Equals(reparsed.value())) << ctx;
  parsed.value().Sum();          // must not crash on whatever was accepted
  parsed.value().Cardinality();
}

TEST(DecodeFuzzTest, ContainerDecodeSurvivesMutations) {
  for (uint64_t seed : FuzzSeedSchedule(0xC0117A11ull)) {
    RunContainerIteration(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DecodeFuzzTest, RoaringDecodeSurvivesMutations) {
  for (uint64_t seed : FuzzSeedSchedule(0x20A21116ull)) {
    RunRoaringIteration(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DecodeFuzzTest, BsiDecodeSurvivesMutations) {
  for (uint64_t seed : FuzzSeedSchedule(0xB51F0221ull)) {
    RunBsiIteration(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Wire codec (DESIGN.md §9). The serving protocol's decoders face bytes
// from the network, so the contract is strictly stronger than the raw
// decoders' round-trip: every encoding is CANONICAL -- one byte string per
// message -- so anything a decoder accepts must re-encode BIT-IDENTICALLY
// to the accepted bytes. A mutation either produces a clean Corruption
// rejection or lands on the one encoding of some other valid message;
// there is no third state where a frame decodes to something that would
// serialize differently.
// ---------------------------------------------------------------------------

std::string RandomWireBytes(Rng& rng, size_t max_len) {
  std::string out(rng.NextBounded(max_len + 1), '\0');
  for (char& c : out) c = static_cast<char>(rng.Next() & 0xff);
  return out;
}

wire::Envelope RandomEnvelope(Rng& rng) {
  wire::Envelope env;
  env.type =
      static_cast<wire::MsgType>(rng.NextBounded(wire::kMaxMsgType + 1));
  env.flags = static_cast<uint16_t>(rng.Next() & 0xffff);
  env.request_id = rng.Next();
  env.payload = RandomWireBytes(rng, 400);
  return env;
}

wire::WireQueryRequest RandomWireRequest(Rng& rng) {
  wire::WireQueryRequest req;
  for (uint64_t i = rng.NextBounded(5); i > 0; --i) {
    req.strategy_ids.push_back(rng.Next());
  }
  for (uint64_t i = rng.NextBounded(4); i > 0; --i) {
    req.metric_ids.push_back(rng.Next());
  }
  req.date_lo = static_cast<Date>(rng.NextBounded(100));
  req.date_hi = static_cast<Date>(req.date_lo + rng.NextBounded(30));
  for (uint64_t i = rng.NextBounded(9); i > 0; --i) {
    req.segments.push_back(static_cast<uint32_t>(rng.NextBounded(64)));
  }
  req.allow_degraded = rng.NextBernoulli(0.5);
  req.want_trace = rng.NextBernoulli(0.5);
  return req;
}

// Doubles drawn straight from the bit space: mutations already produce
// NaNs and infinities, but the CLEAN message should carry them too so the
// canonical contract is exercised on every bit pattern, not just finite
// values.
double RandomDoubleBits(Rng& rng) {
  const uint64_t bits = rng.Next();
  double d;
  __builtin_memcpy(&d, &bits, 8);
  return d;
}

wire::WireQueryResponse RandomWireResponse(Rng& rng) {
  wire::WireQueryResponse resp;
  resp.segments.resize(rng.NextBounded(5));
  for (wire::WireSegmentResult& seg : resp.segments) {
    seg.segment = static_cast<uint32_t>(rng.NextBounded(64));
    seg.lost = rng.NextBernoulli(0.2) ? 1 : 0;
    if (seg.lost == 0) {
      const size_t cells = rng.NextBounded(8);
      for (size_t i = 0; i < cells; ++i) {
        seg.sums.push_back(RandomDoubleBits(rng));
        seg.counts.push_back(RandomDoubleBits(rng));
      }
    }
  }
  resp.retries = static_cast<uint32_t>(rng.NextBounded(10));
  resp.faults_survived = static_cast<uint32_t>(rng.NextBounded(10));
  resp.bytes_from_cold = rng.Next();
  resp.hot_hits = rng.Next();
  resp.cpu_seconds = RandomDoubleBits(rng);
  resp.spans.resize(rng.NextBounded(4));
  uint32_t id = 0;
  for (wire::WireSpan& span : resp.spans) {
    span.id = ++id;
    span.parent_id = id > 1 ? 1 + static_cast<uint32_t>(
                                      rng.NextBounded(id - 1))
                            : 0;
    span.name = RandomWireBytes(rng, 24);  // arbitrary bytes, not just text
    span.start_ns = rng.Next();
    span.duration_ns = rng.Next();
    span.attrs.resize(rng.NextBounded(3));
    for (auto& [key, value] : span.attrs) {
      key = RandomWireBytes(rng, 16);
      value = rng.Next();
    }
  }
  return resp;
}

wire::WireError RandomWireError(Rng& rng) {
  wire::WireError err;
  err.code = static_cast<StatusCode>(
      1 + rng.NextBounded(static_cast<uint64_t>(StatusCode::kUnavailable)));
  err.message = RandomWireBytes(rng, 120);
  return err;
}

void RunEnvelopeIteration(uint64_t seed) {
  Rng rng(seed);
  std::string frame;
  wire::EncodeEnvelope(RandomEnvelope(rng), &frame);
  const std::string mutated = Mutate(rng, frame, RandomMutation(rng));
  const std::string ctx = Ctx(seed, "envelope");

  // The transport-side header peek must never promise a frame beyond the
  // cap -- this is the check that bounds the receive allocation.
  if (mutated.size() >= wire::kEnvelopeHeaderBytes) {
    const Result<size_t> size = wire::FrameSizeFromHeader(
        mutated.substr(0, wire::kEnvelopeHeaderBytes));
    if (size.ok()) {
      EXPECT_LE(size.value(), wire::kEnvelopeHeaderBytes +
                                  size_t{wire::kMaxEnvelopePayloadBytes} + 4)
          << ctx << " header peek promised a frame over the cap";
    }
  }

  const Result<wire::Envelope> parsed = wire::DecodeEnvelope(mutated);
  if (!parsed.ok()) {
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption) << ctx;
    return;
  }
  std::string again;
  wire::EncodeEnvelope(parsed.value(), &again);
  EXPECT_EQ(again, mutated)
      << ctx << " accepted frame did not re-encode bit-identically";
}

void RunWireRequestIteration(uint64_t seed) {
  Rng rng(seed);
  std::string payload;
  wire::EncodeQueryRequest(RandomWireRequest(rng), &payload);
  const std::string mutated = Mutate(rng, payload, RandomMutation(rng));
  const std::string ctx = Ctx(seed, "wire request");

  const Result<wire::WireQueryRequest> parsed =
      wire::DecodeQueryRequest(mutated);
  if (!parsed.ok()) {
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption) << ctx;
    return;
  }
  std::string again;
  wire::EncodeQueryRequest(parsed.value(), &again);
  EXPECT_EQ(again, mutated)
      << ctx << " accepted payload did not re-encode bit-identically";
}

void RunWireResponseIteration(uint64_t seed) {
  Rng rng(seed);
  std::string payload;
  wire::EncodeQueryResponse(RandomWireResponse(rng), &payload);
  const std::string mutated = Mutate(rng, payload, RandomMutation(rng));
  const std::string ctx = Ctx(seed, "wire response");

  const Result<wire::WireQueryResponse> parsed =
      wire::DecodeQueryResponse(mutated);
  if (!parsed.ok()) {
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption) << ctx;
    return;
  }
  std::string again;
  wire::EncodeQueryResponse(parsed.value(), &again);
  EXPECT_EQ(again, mutated)
      << ctx << " accepted payload did not re-encode bit-identically";
  for (const wire::WireSegmentResult& seg : parsed.value().segments) {
    EXPECT_LE(seg.lost, 1) << ctx;
  }
}

void RunWireErrorIteration(uint64_t seed) {
  Rng rng(seed);
  std::string payload;
  wire::EncodeError(RandomWireError(rng), &payload);
  const std::string mutated = Mutate(rng, payload, RandomMutation(rng));
  const std::string ctx = Ctx(seed, "wire error");

  const Result<wire::WireError> parsed = wire::DecodeError(mutated);
  if (!parsed.ok()) {
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption) << ctx;
    return;
  }
  // An accepted error must carry a code the coordinator can act on.
  EXPECT_NE(static_cast<uint8_t>(parsed.value().code), 0) << ctx;
  EXPECT_LE(static_cast<uint8_t>(parsed.value().code),
            static_cast<uint8_t>(StatusCode::kUnavailable))
      << ctx;
  std::string again;
  wire::EncodeError(parsed.value(), &again);
  EXPECT_EQ(again, mutated)
      << ctx << " accepted payload did not re-encode bit-identically";
}

wire::WireSegmentFetch RandomSegmentFetch(Rng& rng) {
  wire::WireSegmentFetch fetch;
  fetch.segment = static_cast<uint32_t>(rng.NextBounded(65536));
  return fetch;
}

wire::WireSegmentPush RandomSegmentPush(Rng& rng) {
  wire::WireSegmentPush push;
  push.segment = static_cast<uint32_t>(rng.NextBounded(65536));
  // Strictly ascending (kind, id, date) keys: the canonical order the
  // decoder enforces.
  std::set<std::tuple<uint8_t, uint64_t, uint32_t>> keys;
  for (uint64_t i = rng.NextBounded(5); i > 0; --i) {
    keys.insert({static_cast<uint8_t>(rng.NextBounded(4)),
                 rng.NextBounded(2000), static_cast<uint32_t>(
                     rng.NextBounded(50))});
  }
  for (const auto& [kind, id, date] : keys) {
    wire::WireRepairBlob blob;
    blob.kind = kind;
    blob.id = id;
    blob.date = date;
    blob.fingerprint = rng.Next();
    blob.bytes = RandomWireBytes(rng, 200);
    push.blobs.push_back(std::move(blob));
  }
  return push;
}

void RunSegmentFetchIteration(uint64_t seed) {
  Rng rng(seed);
  std::string payload;
  wire::EncodeSegmentFetch(RandomSegmentFetch(rng), &payload);
  const std::string mutated = Mutate(rng, payload, RandomMutation(rng));
  const std::string ctx = Ctx(seed, "segment fetch");

  const Result<wire::WireSegmentFetch> parsed =
      wire::DecodeSegmentFetch(mutated);
  if (!parsed.ok()) {
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption) << ctx;
    return;
  }
  EXPECT_LE(parsed.value().segment, 65535u) << ctx;
  std::string again;
  wire::EncodeSegmentFetch(parsed.value(), &again);
  EXPECT_EQ(again, mutated)
      << ctx << " accepted payload did not re-encode bit-identically";
}

void RunSegmentPushIteration(uint64_t seed) {
  Rng rng(seed);
  std::string payload;
  wire::EncodeSegmentPush(RandomSegmentPush(rng), &payload);
  const std::string mutated = Mutate(rng, payload, RandomMutation(rng));
  const std::string ctx = Ctx(seed, "segment push");

  const Result<wire::WireSegmentPush> parsed =
      wire::DecodeSegmentPush(mutated);
  if (!parsed.ok()) {
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption) << ctx;
    return;
  }
  // Accepted pushes obey every structural invariant the repair client
  // relies on: canonical order, bounded kinds and blob sizes.
  EXPECT_LE(parsed.value().segment, 65535u) << ctx;
  for (size_t i = 0; i < parsed.value().blobs.size(); ++i) {
    const wire::WireRepairBlob& blob = parsed.value().blobs[i];
    EXPECT_LE(blob.kind, 3) << ctx;
    EXPECT_LE(blob.bytes.size(), wire::kMaxRepairBlobBytes) << ctx;
    if (i > 0) {
      const wire::WireRepairBlob& prev = parsed.value().blobs[i - 1];
      EXPECT_LT(std::make_tuple(prev.kind, prev.id, prev.date),
                std::make_tuple(blob.kind, blob.id, blob.date))
          << ctx << " accepted blobs out of canonical order";
    }
  }
  std::string again;
  wire::EncodeSegmentPush(parsed.value(), &again);
  EXPECT_EQ(again, mutated)
      << ctx << " accepted payload did not re-encode bit-identically";
}

wire::WireStatsFetch RandomStatsFetch(Rng& rng) {
  wire::WireStatsFetch fetch;
  fetch.since_seq = rng.Next() >> (rng.NextBounded(64));
  fetch.want_metrics = rng.NextBounded(2) == 1;
  fetch.want_events = rng.NextBounded(2) == 1;
  return fetch;
}

wire::WireStatsReply RandomStatsReply(Rng& rng) {
  wire::WireStatsReply reply;
  reply.node_id = static_cast<uint32_t>(rng.NextBounded(64));
  reply.uptime_seconds = static_cast<double>(rng.NextBounded(100000)) / 7.0;
  reply.build_info = "expbsi/0.t " + std::to_string(rng.NextBounded(100));
  reply.queries_served = rng.NextBounded(1u << 20);
  reply.backpressure_rejections = rng.NextBounded(100);
  // Strictly ascending names per section: build from a set.
  std::set<std::string> names;
  for (uint64_t i = rng.NextBounded(5); i > 0; --i) {
    names.insert("c." + std::to_string(rng.NextBounded(1000)));
  }
  for (const std::string& n : names) {
    reply.counters.emplace_back(n, rng.Next());
  }
  names.clear();
  for (uint64_t i = rng.NextBounded(4); i > 0; --i) {
    names.insert("g." + std::to_string(rng.NextBounded(1000)));
  }
  for (const std::string& n : names) {
    reply.gauges.emplace_back(
        n, static_cast<double>(rng.NextBounded(1u << 16)) / 3.0);
  }
  names.clear();
  for (uint64_t i = rng.NextBounded(3); i > 0; --i) {
    names.insert("h." + std::to_string(rng.NextBounded(1000)));
  }
  for (const std::string& n : names) {
    wire::WireHistogram h;
    h.name = n;
    // Strictly le-ascending non-empty buckets whose counts total `count`.
    uint64_t le = 0;
    for (uint64_t b = rng.NextBounded(4); b > 0; --b) {
      le += 1 + rng.NextBounded(100);
      const uint64_t cnt = 1 + rng.NextBounded(50);
      h.buckets.emplace_back(le, cnt);
      h.count += cnt;
      h.sum += cnt * le;
    }
    reply.histograms.push_back(std::move(h));
  }
  // Strictly seq-ascending events, all below next_seq.
  uint64_t seq = rng.NextBounded(100);
  for (uint64_t i = rng.NextBounded(6); i > 0; --i) {
    wire::WireFlightEvent ev;
    ev.seq = seq;
    seq += 1 + rng.NextBounded(5);
    ev.t_ns = rng.Next() >> 20;
    ev.trace_id = rng.NextBounded(1000);
    ev.kind = static_cast<uint8_t>(rng.NextBounded(obs::kMaxFlightEventKind + 1));
    ev.a = rng.NextBounded(10000);
    ev.b = rng.NextBounded(10000);
    reply.events.push_back(ev);
  }
  reply.next_seq = seq + rng.NextBounded(10);
  return reply;
}

void RunStatsFetchIteration(uint64_t seed) {
  Rng rng(seed);
  std::string payload;
  wire::EncodeStatsFetch(RandomStatsFetch(rng), &payload);
  const std::string mutated = Mutate(rng, payload, RandomMutation(rng));
  const std::string ctx = Ctx(seed, "stats fetch");

  const Result<wire::WireStatsFetch> parsed =
      wire::DecodeStatsFetch(mutated);
  if (!parsed.ok()) {
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption) << ctx;
    return;
  }
  std::string again;
  wire::EncodeStatsFetch(parsed.value(), &again);
  EXPECT_EQ(again, mutated)
      << ctx << " accepted payload did not re-encode bit-identically";
}

void RunStatsReplyIteration(uint64_t seed) {
  Rng rng(seed);
  std::string payload;
  wire::EncodeStatsReply(RandomStatsReply(rng), &payload);
  const std::string mutated = Mutate(rng, payload, RandomMutation(rng));
  const std::string ctx = Ctx(seed, "stats reply");

  const Result<wire::WireStatsReply> parsed =
      wire::DecodeStatsReply(mutated);
  if (!parsed.ok()) {
    EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption) << ctx;
    return;
  }
  // Accepted replies obey the invariants the fleet merger trusts: canonical
  // name order, consistent histograms, bounded event kinds under next_seq.
  const wire::WireStatsReply& reply = parsed.value();
  for (size_t i = 1; i < reply.counters.size(); ++i) {
    EXPECT_LT(reply.counters[i - 1].first, reply.counters[i].first) << ctx;
  }
  for (const wire::WireHistogram& h : reply.histograms) {
    uint64_t total = 0;
    uint64_t prev_le = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) {
        EXPECT_LT(prev_le, h.buckets[b].first) << ctx;
      }
      prev_le = h.buckets[b].first;
      EXPECT_NE(h.buckets[b].second, 0u) << ctx;
      total += h.buckets[b].second;
    }
    EXPECT_EQ(total, h.count) << ctx;
  }
  for (size_t i = 0; i < reply.events.size(); ++i) {
    EXPECT_LE(reply.events[i].kind, obs::kMaxFlightEventKind) << ctx;
    if (i > 0) {
      EXPECT_LT(reply.events[i - 1].seq, reply.events[i].seq) << ctx;
    }
  }
  if (!reply.events.empty()) {
    EXPECT_LT(reply.events.back().seq, reply.next_seq) << ctx;
  }
  std::string again;
  wire::EncodeStatsReply(reply, &again);
  EXPECT_EQ(again, mutated)
      << ctx << " accepted payload did not re-encode bit-identically";
}

TEST(DecodeFuzzTest, EnvelopeDecodeSurvivesMutations) {
  for (uint64_t seed : FuzzSeedSchedule(0xE4E10BE5ull)) {
    RunEnvelopeIteration(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DecodeFuzzTest, WireRequestDecodeSurvivesMutations) {
  for (uint64_t seed : FuzzSeedSchedule(0x317E0E01ull)) {
    RunWireRequestIteration(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DecodeFuzzTest, WireResponseDecodeSurvivesMutations) {
  for (uint64_t seed : FuzzSeedSchedule(0x317E0E02ull)) {
    RunWireResponseIteration(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DecodeFuzzTest, WireErrorDecodeSurvivesMutations) {
  for (uint64_t seed : FuzzSeedSchedule(0x317E0E03ull)) {
    RunWireErrorIteration(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DecodeFuzzTest, SegmentFetchDecodeSurvivesMutations) {
  for (uint64_t seed : FuzzSeedSchedule(0x317E0E04ull)) {
    RunSegmentFetchIteration(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DecodeFuzzTest, SegmentPushDecodeSurvivesMutations) {
  for (uint64_t seed : FuzzSeedSchedule(0x317E0E05ull)) {
    RunSegmentPushIteration(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DecodeFuzzTest, StatsFetchDecodeSurvivesMutations) {
  for (uint64_t seed : FuzzSeedSchedule(0x317E0E06ull)) {
    RunStatsFetchIteration(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DecodeFuzzTest, StatsReplyDecodeSurvivesMutations) {
  for (uint64_t seed : FuzzSeedSchedule(0x317E0E07ull)) {
    RunStatsReplyIteration(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Snapshot reader: the checksummed layer. A mutated file must never be
// presented as recovered -- surviving segments bit-identical, the rest
// enumerated as lost (or the whole recovery cleanly refused).
// ---------------------------------------------------------------------------

// Each test gets its own directory: ctest runs gtest cases as concurrent
// processes, so two tests sharing a dir would clobber each other's files.
std::string FuzzDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "expbsi_decode_fuzz_" + name;
  EXPECT_TRUE(fileio::CreateDirIfMissing(dir).ok());
  const Result<std::vector<std::string>> entries = fileio::ListDir(dir);
  EXPECT_TRUE(entries.ok());
  for (const std::string& entry : entries.value()) {
    EXPECT_TRUE(fileio::RemoveFileIfExists(dir + "/" + entry).ok());
  }
  return dir;
}

BsiStore MakeFuzzStore(Rng& rng) {
  BsiStore store;
  const int num_segments = 1 + static_cast<int>(rng.NextBounded(3));
  for (int seg = 0; seg < num_segments; ++seg) {
    const int blobs = 1 + static_cast<int>(rng.NextBounded(4));
    for (int b = 0; b < blobs; ++b) {
      std::string bytes(1 + rng.NextBounded(400), '\0');
      for (char& c : bytes) c = static_cast<char>(rng.Next() & 0xff);
      BsiStoreKey key;
      key.segment = static_cast<uint16_t>(seg);
      key.kind = static_cast<BsiKind>(b % 3);
      key.id = 10 + b;
      key.date = static_cast<uint32_t>(b);
      store.Put(key, std::move(bytes));
    }
  }
  return store;
}

using BlobKey = std::tuple<uint16_t, uint8_t, uint64_t, uint32_t>;

std::map<BlobKey, std::string> ContentsOf(const BsiStore& store) {
  std::map<BlobKey, std::string> out;
  store.ForEach([&](const BsiStoreKey& key, const std::string& bytes) {
    out[{key.segment, static_cast<uint8_t>(key.kind), key.id, key.date}] =
        bytes;
  });
  return out;
}

void RunSnapshotIteration(uint64_t seed, const std::string& dir) {
  // One committed version per iteration: with older versions on disk a
  // mutation could hit a file recovery legitimately ignores (or legitimately
  // falls back to), which would make the assertions below meaningless. The
  // multi-version fallback path is chaos_test.cc territory.
  {
    const Result<std::vector<std::string>> stale = fileio::ListDir(dir);
    ASSERT_TRUE(stale.ok());
    for (const std::string& entry : stale.value()) {
      ASSERT_TRUE(fileio::RemoveFileIfExists(dir + "/" + entry).ok());
    }
  }
  Rng rng(seed);
  const BsiStore store = MakeFuzzStore(rng);
  const Result<SnapshotWriteStats> written = SnapshotWriter::Write(store, dir);
  const std::string ctx = Ctx(seed, "snapshot");
  ASSERT_TRUE(written.ok()) << ctx << ": " << written.status().ToString();

  Result<std::vector<std::string>> files = fileio::ListDir(dir);
  ASSERT_TRUE(files.ok()) << ctx;
  ASSERT_FALSE(files.value().empty()) << ctx;
  // Sorted so victim choice depends only on the seed, not on readdir order.
  std::sort(files.value().begin(), files.value().end());
  const std::string victim =
      files.value()[rng.NextBounded(files.value().size())];
  const Result<std::string> clean =
      fileio::ReadFileToString(dir + "/" + victim, kMaxSegmentFileBytes);
  ASSERT_TRUE(clean.ok()) << ctx;
  const MutationKind kind = RandomMutation(rng);
  const std::string mutated = Mutate(rng, clean.value(), kind);
  const bool changed = mutated != clean.value();
  {
    std::ofstream out(dir + "/" + victim,
                      std::ios::binary | std::ios::trunc);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    ASSERT_TRUE(out.good()) << ctx;
  }

  RecoveryReport report;
  const Result<BsiStore> recovered = BsiStore::Recover(dir, &report);
  if (changed && kind == MutationKind::kBitflips) {
    // The checksum contract: bitflips anywhere in any snapshot file are
    // ALWAYS caught -- a flipped file can contribute nothing to a "fully
    // recovered" result.
    EXPECT_FALSE(recovered.ok() && report.fully_recovered())
        << ctx << " bitflipped " << victim << " silently accepted";
  }
  if (!recovered.ok()) {
    // Refusal must be classified, never a crash.
    EXPECT_TRUE(recovered.status().code() == StatusCode::kCorruption ||
                recovered.status().code() == StatusCode::kNotFound)
        << ctx << ": " << recovered.status().ToString();
    return;
  }
  // Whatever was recovered must be bit-identical to the written store, and
  // the lost/recovered lists must exactly partition the manifest segments.
  const std::map<BlobKey, std::string> want = ContentsOf(store);
  const std::map<BlobKey, std::string> got = ContentsOf(recovered.value());
  const std::set<uint16_t> lost(report.lost_segments.begin(),
                                report.lost_segments.end());
  const std::set<uint16_t> ok_segs(report.segments_recovered.begin(),
                                   report.segments_recovered.end());
  for (uint16_t seg : lost) {
    EXPECT_EQ(ok_segs.count(seg), 0u) << ctx << " segment both lost and ok";
  }
  for (const auto& [k, v] : want) {
    const uint16_t seg = std::get<0>(k);
    const auto it = got.find(k);
    if (lost.count(seg) > 0) {
      EXPECT_EQ(it, got.end()) << ctx << " lost segment leaked a blob";
    } else {
      ASSERT_NE(it, got.end())
          << ctx << " segment " << seg << " silently dropped a blob";
      EXPECT_EQ(it->second, v) << ctx << " recovered blob diverged";
    }
  }
  EXPECT_EQ(got.size() + [&] {
    size_t lost_blobs = 0;
    for (const auto& [k, v] : want) {
      if (lost.count(std::get<0>(k)) > 0) ++lost_blobs;
    }
    return lost_blobs;
  }(), want.size())
      << ctx << " recovered store holds foreign blobs";
}

TEST(DecodeFuzzTest, SnapshotRecoverySurvivesMutations) {
  const std::string dir = FuzzDir("snapshot");
  for (uint64_t seed : FuzzSeedSchedule(0x5A4E0F11ull)) {
    RunSnapshotIteration(seed, dir);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// WAL segments: the CRC-framed replay path (DESIGN.md §8.1-8.2). The log's
// contract under arbitrary at-rest corruption:
//
//   (a) replay never crashes and never runs past the buffer;
//   (b) a replayed record is bit-identical to one the writer appended, at
//       its original sequence: bitflipped records never replay (header and
//       payload CRCs), and replay stops at the first damaged record, so
//       what comes back is an EXACT PREFIX of the appended stream --
//       including across segments, where the sequence-continuity check
//       drops everything after a shortened middle segment;
//   (c) the stop point is exactly where the corruption begins: truncating
//       a tail keeps every record wholly before the tear, and appended
//       garbage loses nothing;
//   (d) repair-on-open leaves a log that accepts new appends and then
//       replays the surviving prefix plus the new record, tear-free.
//
// The framed layout is a deterministic function of the event counts and
// the roll threshold, so the test rebuilds it (SimulateWalLayout) to map
// the mutation's first damaged byte to the first record that must vanish.
// ---------------------------------------------------------------------------

std::vector<WalEvent> RandomWalEvents(Rng& rng) {
  std::vector<WalEvent> events(1 + rng.NextBounded(6));
  for (WalEvent& event : events) {
    event.kind = static_cast<WalEventKind>(rng.NextBounded(3));
    event.id = 1 + rng.NextBounded(1000);
    event.analysis_unit_id = rng.NextBounded(5000);
    event.randomization_unit_id = rng.NextBounded(5000);
    event.date = static_cast<Date>(10 + rng.NextBounded(5));
    event.value = rng.NextBounded(uint64_t{1} << 20);
  }
  return events;
}

struct WalSegSim {
  uint64_t first_sequence = 0;
  std::vector<size_t> record_sizes;  // framed sizes, in append order
};

// Mirrors WalWriter's roll rule: a record rolls to a fresh segment when the
// active one already holds a record and would overflow the threshold.
std::vector<WalSegSim> SimulateWalLayout(const std::vector<size_t>& counts,
                                         uint64_t segment_bytes) {
  std::vector<WalSegSim> segments;
  segments.push_back({1, {}});
  size_t active = kWalSegmentHeaderBytes;
  uint64_t sequence = 1;
  for (size_t count : counts) {
    const size_t record = kWalRecordHeaderBytes + count * kWalEventBytes + 4;
    if (active > kWalSegmentHeaderBytes && active + record > segment_bytes) {
      segments.push_back({sequence, {}});
      active = kWalSegmentHeaderBytes;
    }
    segments.back().record_sizes.push_back(record);
    active += record;
    ++sequence;
  }
  return segments;
}

void RunWalSegmentIteration(uint64_t seed, const std::string& dir) {
  {
    const Result<std::vector<std::string>> stale = fileio::ListDir(dir);
    ASSERT_TRUE(stale.ok());
    for (const std::string& entry : stale.value()) {
      ASSERT_TRUE(fileio::RemoveFileIfExists(dir + "/" + entry).ok());
    }
  }
  Rng rng(seed);
  WalOptions options;
  const uint64_t segment_sizes[] = {128, 512, 1ull << 20};
  options.segment_bytes = segment_sizes[rng.NextBounded(3)];
  options.sync_each_append = false;  // durability is chaos_test territory
  const std::string ctx = Ctx(seed, "wal");

  std::vector<WalRecord> appended;
  std::vector<size_t> counts;
  {
    Result<std::unique_ptr<WalWriter>> writer = WalWriter::Open(dir, options);
    ASSERT_TRUE(writer.ok()) << ctx;
    const int n = 1 + static_cast<int>(rng.NextBounded(8));
    for (int i = 0; i < n; ++i) {
      WalRecord record;
      record.events = RandomWalEvents(rng);
      const Result<uint64_t> seq = writer.value()->Append(record.events);
      ASSERT_TRUE(seq.ok()) << ctx;
      record.sequence = seq.value();
      counts.push_back(record.events.size());
      appended.push_back(std::move(record));
    }
  }

  const std::vector<WalSegSim> layout =
      SimulateWalLayout(counts, options.segment_bytes);
  std::vector<std::string> files;
  {
    const Result<std::vector<std::string>> listing = fileio::ListDir(dir);
    ASSERT_TRUE(listing.ok()) << ctx;
    for (const std::string& name : listing.value()) {
      uint64_t first = 0;
      if (ParseWalSegmentFileName(name, &first)) files.push_back(name);
    }
    std::sort(files.begin(), files.end());
  }
  ASSERT_EQ(files.size(), layout.size()) << ctx << " layout model diverged";

  const size_t victim_index = rng.NextBounded(files.size());
  const WalSegSim& victim = layout[victim_index];
  const std::string victim_path = dir + "/" + files[victim_index];
  const Result<std::string> clean =
      fileio::ReadFileToString(victim_path, 1u << 24);
  ASSERT_TRUE(clean.ok()) << ctx;
  {
    size_t want = kWalSegmentHeaderBytes;
    for (size_t record : victim.record_sizes) want += record;
    ASSERT_EQ(clean.value().size(), want) << ctx << " layout model diverged";
  }

  const std::string mutated = Mutate(rng, clean.value(), RandomMutation(rng));
  {
    std::ofstream out(victim_path, std::ios::binary | std::ios::trunc);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    ASSERT_TRUE(out.good()) << ctx;
  }

  // First damaged byte of the CLEAN file: the first in-place difference, or
  // the truncation point when bytes were removed. Bytes appended past the
  // original end damage nothing that was already durable.
  size_t damaged_from = clean.value().size();
  const size_t common = std::min(clean.value().size(), mutated.size());
  for (size_t i = 0; i < common; ++i) {
    if (clean.value()[i] != mutated[i]) {
      damaged_from = i;
      break;
    }
  }
  if (mutated.size() < clean.value().size()) {
    damaged_from = std::min(damaged_from, mutated.size());
  }

  // Map the damage to the first sequence that must vanish. Damage inside
  // the segment header refuses the whole segment; damage inside record r
  // stops replay at r; replay of later segments is then cut off by the
  // sequence-continuity check. Bytes APPENDED to the victim damage no
  // record, but they do tear the scan right after the victim's last
  // record, so a middle segment's extension still drops later segments
  // (for the last segment the same formula is a no-op).
  uint64_t expected_last = appended.size();
  if (damaged_from < clean.value().size()) {
    if (damaged_from < kWalSegmentHeaderBytes) {
      expected_last = victim.first_sequence - 1;
    } else {
      size_t offset = kWalSegmentHeaderBytes;
      uint64_t sequence = victim.first_sequence;
      for (size_t record : victim.record_sizes) {
        if (damaged_from < offset + record) break;
        offset += record;
        ++sequence;
      }
      expected_last = sequence - 1;
    }
  } else if (mutated.size() > clean.value().size()) {
    expected_last = std::min<uint64_t>(
        expected_last,
        victim.first_sequence + victim.record_sizes.size() - 1);
  }

  WalRecoveryReport report;
  const Result<std::vector<WalRecord>> replayed = ReplayWal(dir, &report);
  ASSERT_TRUE(replayed.ok()) << ctx << ": " << replayed.status().ToString();
  ASSERT_EQ(replayed.value().size(), expected_last)
      << ctx << " replay did not stop exactly at the corruption";
  EXPECT_EQ(report.last_sequence, expected_last) << ctx;
  for (size_t i = 0; i < replayed.value().size(); ++i) {
    ASSERT_EQ(replayed.value()[i].sequence, i + 1) << ctx;
    ASSERT_EQ(replayed.value()[i].events, appended[i].events)
        << ctx << " replayed record diverged from what was appended";
  }

  // Repair-on-open must leave an appendable, tear-free log holding exactly
  // the surviving prefix.
  std::vector<WalEvent> extra;
  {
    WalRecoveryReport repair_report;
    std::vector<WalRecord> survivors;
    Result<std::unique_ptr<WalWriter>> writer =
        WalWriter::Open(dir, options, &repair_report, &survivors);
    ASSERT_TRUE(writer.ok()) << ctx;
    ASSERT_EQ(survivors.size(), expected_last)
        << ctx << " repair changed the surviving prefix";
    extra = RandomWalEvents(rng);
    const Result<uint64_t> seq = writer.value()->Append(extra);
    ASSERT_TRUE(seq.ok()) << ctx << " repaired log refused an append";
    ASSERT_EQ(seq.value(), expected_last + 1) << ctx;
  }
  WalRecoveryReport after;
  const Result<std::vector<WalRecord>> final_replay = ReplayWal(dir, &after);
  ASSERT_TRUE(final_replay.ok()) << ctx;
  ASSERT_EQ(final_replay.value().size(), expected_last + 1) << ctx;
  ASSERT_EQ(final_replay.value().back().events, extra)
      << ctx << " record appended after repair diverged";
  EXPECT_FALSE(after.tail_torn)
      << ctx << " repaired log still reports a tear";
}

TEST(DecodeFuzzTest, WalReplaySurvivesMutations) {
  const std::string dir = FuzzDir("wal");
  for (uint64_t seed : FuzzSeedSchedule(0x7A111EDull)) {
    RunWalSegmentIteration(seed, dir);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Hostile-header fail-fast: counts that exceed what the payload can hold
// must be rejected before they size an allocation.
// ---------------------------------------------------------------------------

std::string Hex(std::string_view hex) {
  std::string out;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    EXPECT_GE(hi, 0);
    EXPECT_GE(lo, 0);
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

TEST(DecodeFuzzTest, HostileCountsFailBeforeAllocation) {
  {
    // Roaring header claiming 65535 containers over a 1-byte payload.
    const std::string bytes = Hex("ffff0000" "00");
    const Result<RoaringBitmap> r = RoaringBitmap::Deserialize(bytes);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("count exceeds payload"),
              std::string::npos)
        << r.status().ToString();
  }
  {
    // Bsi header claiming 64 slices over 4 remaining bytes.
    const std::string bytes = Hex("40000000" "00000000");
    const Result<Bsi> r = Bsi::Deserialize(bytes);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("slice count exceeds payload"),
              std::string::npos)
        << r.status().ToString();
  }
  {
    // Container array claiming 70000 values (over the 65536 cap).
    const std::string bytes = Hex("00" "70110100");
    const uint8_t* cursor = reinterpret_cast<const uint8_t*>(bytes.data());
    const Result<Container> r =
        Container::Deserialize(&cursor, cursor + bytes.size());
    ASSERT_FALSE(r.ok());
  }
  {
    // Wire request claiming 2^30 strategy ids over an empty remainder.
    const Result<wire::WireQueryRequest> r =
        wire::DecodeQueryRequest(Hex("00000040"));
    ASSERT_FALSE(r.ok());
  }
  {
    // Wire response claiming 2^30 segment results over an empty remainder.
    const Result<wire::WireQueryResponse> r =
        wire::DecodeQueryResponse(Hex("00000040"));
    ASSERT_FALSE(r.ok());
  }
  {
    // Wire response with valid empty segments and stats, then a span count
    // of 2^32-1: rejected against the remaining bytes before resize.
    std::string payload;
    wire::PutU32(&payload, 0);  // segments
    wire::PutU32(&payload, 0);  // retries
    wire::PutU32(&payload, 0);  // faults_survived
    wire::PutU64(&payload, 0);  // bytes_from_cold
    wire::PutU64(&payload, 0);  // hot_hits
    wire::PutF64(&payload, 0);  // cpu_seconds
    wire::PutU32(&payload, 0xffffffffu);  // hostile span count
    ASSERT_FALSE(wire::DecodeQueryResponse(payload).ok());
  }
  {
    // Wire error whose message claims 4 GiB: the string cap rejects it
    // before any allocation.
    ASSERT_FALSE(wire::DecodeError(Hex("01" "ffffffff")).ok());
  }
}

// ---------------------------------------------------------------------------
// Regression corpus: hand-crafted malformed blobs, every one of which must
// be rejected cleanly. Lines: "<decoder> <hex>  # comment", decoder one of
// container / roaring / bsi / storefile / envelope / queryrequest /
// queryresponse / wireerror / segmentfetch / segmentpush.
// ---------------------------------------------------------------------------

TEST(DecodeFuzzTest, MalformedCorpusIsRejected) {
#ifdef EXPBSI_CORPUS_DIR
  std::ifstream in(std::string(EXPBSI_CORPUS_DIR) + "/malformed_blobs.txt");
  ASSERT_TRUE(in.good()) << "missing corpus file " << EXPBSI_CORPUS_DIR
                         << "/malformed_blobs.txt";
  std::string line;
  int entries = 0;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    std::string decoder, hex;
    if (!(ls >> decoder >> hex)) continue;
    ++entries;
    const std::string bytes = Hex(hex);
    const std::string ctx = "corpus entry " + decoder + " " + hex;
    if (decoder == "container") {
      const uint8_t* cursor = reinterpret_cast<const uint8_t*>(bytes.data());
      EXPECT_FALSE(Container::Deserialize(&cursor, cursor + bytes.size()).ok())
          << ctx;
    } else if (decoder == "roaring") {
      EXPECT_FALSE(RoaringBitmap::Deserialize(bytes).ok()) << ctx;
    } else if (decoder == "bsi") {
      EXPECT_FALSE(Bsi::Deserialize(bytes).ok()) << ctx;
    } else if (decoder == "storefile") {
      const std::string path = FuzzDir("corpus") + "/corpus_store";
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      out.close();
      EXPECT_FALSE(BsiStore::LoadFromFile(path).ok()) << ctx;
    } else if (decoder == "envelope") {
      EXPECT_FALSE(wire::DecodeEnvelope(bytes).ok()) << ctx;
    } else if (decoder == "queryrequest") {
      EXPECT_FALSE(wire::DecodeQueryRequest(bytes).ok()) << ctx;
    } else if (decoder == "queryresponse") {
      EXPECT_FALSE(wire::DecodeQueryResponse(bytes).ok()) << ctx;
    } else if (decoder == "wireerror") {
      EXPECT_FALSE(wire::DecodeError(bytes).ok()) << ctx;
    } else if (decoder == "segmentfetch") {
      EXPECT_FALSE(wire::DecodeSegmentFetch(bytes).ok()) << ctx;
    } else if (decoder == "segmentpush") {
      EXPECT_FALSE(wire::DecodeSegmentPush(bytes).ok()) << ctx;
    } else if (decoder == "statsfetch") {
      EXPECT_FALSE(wire::DecodeStatsFetch(bytes).ok()) << ctx;
    } else if (decoder == "statsreply") {
      EXPECT_FALSE(wire::DecodeStatsReply(bytes).ok()) << ctx;
    } else {
      ADD_FAILURE() << "unknown decoder in corpus: " << decoder;
    }
  }
  EXPECT_GE(entries, 10) << "malformed-blob corpus unexpectedly small";
#else
  GTEST_SKIP() << "corpus dir not configured";
#endif
}

}  // namespace
}  // namespace expbsi
