#include "roaring/roaring_bitmap.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace expbsi {
namespace {

using testing_util::RandomSet;

RoaringBitmap FromSet(const std::set<uint32_t>& s) {
  return RoaringBitmap::FromSorted({s.begin(), s.end()});
}

std::set<uint32_t> ToSet(const RoaringBitmap& bm) {
  std::set<uint32_t> out;
  bm.ForEach([&out](uint32_t v) { out.insert(v); });
  return out;
}

TEST(RoaringBitmapTest, EmptyBitmap) {
  RoaringBitmap bm;
  EXPECT_TRUE(bm.IsEmpty());
  EXPECT_EQ(bm.Cardinality(), 0u);
  EXPECT_FALSE(bm.Contains(0));
  EXPECT_EQ(bm.NumContainers(), 0);
}

TEST(RoaringBitmapTest, AddAcrossContainers) {
  RoaringBitmap bm;
  bm.Add(1);
  bm.Add(70000);        // second container
  bm.Add(4000000000u);  // high key
  EXPECT_EQ(bm.Cardinality(), 3u);
  EXPECT_EQ(bm.NumContainers(), 3);
  EXPECT_TRUE(bm.Contains(1));
  EXPECT_TRUE(bm.Contains(70000));
  EXPECT_TRUE(bm.Contains(4000000000u));
  EXPECT_FALSE(bm.Contains(2));
  EXPECT_EQ(bm.Minimum(), 1u);
  EXPECT_EQ(bm.Maximum(), 4000000000u);
}

TEST(RoaringBitmapTest, RemoveDropsEmptyContainers) {
  RoaringBitmap bm;
  bm.Add(70000);
  EXPECT_EQ(bm.NumContainers(), 1);
  bm.Remove(70000);
  EXPECT_EQ(bm.NumContainers(), 0);
  EXPECT_TRUE(bm.IsEmpty());
}

TEST(RoaringBitmapTest, AddRangeSpanningContainers) {
  RoaringBitmap bm;
  bm.AddRange(65000, 140000);
  EXPECT_EQ(bm.Cardinality(), 140000u - 65000u);
  EXPECT_TRUE(bm.Contains(65000));
  EXPECT_TRUE(bm.Contains(65536));
  EXPECT_TRUE(bm.Contains(139999));
  EXPECT_FALSE(bm.Contains(140000));
  EXPECT_FALSE(bm.Contains(64999));
}

TEST(RoaringBitmapTest, FromUnsortedDeduplicates) {
  RoaringBitmap bm = RoaringBitmap::FromUnsorted({5, 1, 5, 70000, 1});
  EXPECT_EQ(bm.Cardinality(), 3u);
  EXPECT_EQ(ToSet(bm), (std::set<uint32_t>{1, 5, 70000}));
}

TEST(RoaringBitmapTest, RankSelect) {
  RoaringBitmap bm = RoaringBitmap::FromSorted({10, 20, 70000, 200000});
  EXPECT_EQ(bm.Rank(9), 0u);
  EXPECT_EQ(bm.Rank(10), 1u);
  EXPECT_EQ(bm.Rank(70000), 3u);
  EXPECT_EQ(bm.Rank(4000000000u), 4u);
  EXPECT_EQ(bm.Select(0), 10u);
  EXPECT_EQ(bm.Select(2), 70000u);
  EXPECT_EQ(bm.Select(3), 200000u);
}

TEST(RoaringBitmapTest, SerializeRoundTrip) {
  Rng rng(99);
  RoaringBitmap bm;
  for (int i = 0; i < 20000; ++i) {
    bm.Add(static_cast<uint32_t>(rng.NextBounded(1u << 24)));
  }
  bm.AddRange(5000000, 5200000);
  bm.RunOptimize();
  const std::string bytes = bm.SerializeToString();
  Result<RoaringBitmap> parsed = RoaringBitmap::Deserialize(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().Equals(bm));
}

TEST(RoaringBitmapTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(RoaringBitmap::Deserialize("xy").ok());
  RoaringBitmap bm;
  bm.Add(7);
  std::string bytes = bm.SerializeToString();
  EXPECT_FALSE(
      RoaringBitmap::Deserialize(bytes.substr(0, bytes.size() - 1)).ok());
}

TEST(RoaringBitmapTest, RunOptimizeKeepsSemantics) {
  RoaringBitmap bm;
  for (uint32_t v = 0; v < 100000; ++v) bm.Add(v);  // bitmap containers
  RoaringBitmap copy = bm;
  bm.RunOptimize();
  EXPECT_GT(bm.NumRunContainers(), 0);
  EXPECT_TRUE(bm.Equals(copy));
  EXPECT_LT(bm.SizeInBytes(), copy.SizeInBytes());
}

// Property tests over random universes, including cross-container values.
class RoaringOpTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoaringOpTest, MatchesSetAlgebra) {
  Rng rng(GetParam());
  // Mix of sparse wide-range values and a dense band, to cross container
  // types within one bitmap.
  std::set<uint32_t> set_a = RandomSet(rng, 3000, 1u << 22);
  std::set<uint32_t> set_b = RandomSet(rng, 3000, 1u << 22);
  for (int i = 0; i < 20000; ++i) {
    set_a.insert(static_cast<uint32_t>(100000 + rng.NextBounded(30000)));
    set_b.insert(static_cast<uint32_t>(110000 + rng.NextBounded(30000)));
  }
  RoaringBitmap a = FromSet(set_a);
  RoaringBitmap b = FromSet(set_b);
  if (GetParam() % 2 == 0) {
    a.RunOptimize();
    b.RunOptimize();
  }

  std::set<uint32_t> expect_and, expect_or, expect_xor, expect_andnot;
  std::set_intersection(set_a.begin(), set_a.end(), set_b.begin(),
                        set_b.end(),
                        std::inserter(expect_and, expect_and.begin()));
  std::set_union(set_a.begin(), set_a.end(), set_b.begin(), set_b.end(),
                 std::inserter(expect_or, expect_or.begin()));
  std::set_symmetric_difference(
      set_a.begin(), set_a.end(), set_b.begin(), set_b.end(),
      std::inserter(expect_xor, expect_xor.begin()));
  std::set_difference(set_a.begin(), set_a.end(), set_b.begin(), set_b.end(),
                      std::inserter(expect_andnot, expect_andnot.begin()));

  EXPECT_EQ(ToSet(RoaringBitmap::And(a, b)), expect_and);
  EXPECT_EQ(ToSet(RoaringBitmap::Or(a, b)), expect_or);
  EXPECT_EQ(ToSet(RoaringBitmap::Xor(a, b)), expect_xor);
  EXPECT_EQ(ToSet(RoaringBitmap::AndNot(a, b)), expect_andnot);
  EXPECT_EQ(RoaringBitmap::AndCardinality(a, b), expect_and.size());
  EXPECT_EQ(RoaringBitmap::Intersects(a, b), !expect_and.empty());

  // In-place variants agree with the static ones.
  RoaringBitmap t = a;
  t.AndInPlace(b);
  EXPECT_EQ(ToSet(t), expect_and);
  t = a;
  t.OrInPlace(b);
  EXPECT_EQ(ToSet(t), expect_or);
  t = a;
  t.XorInPlace(b);
  EXPECT_EQ(ToSet(t), expect_xor);
  t = a;
  t.AndNotInPlace(b);
  EXPECT_EQ(ToSet(t), expect_andnot);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoaringOpTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

TEST(RoaringBitmapTest, OpsWithEmptyOperand) {
  RoaringBitmap a = RoaringBitmap::FromSorted({1, 2, 3});
  RoaringBitmap empty;
  EXPECT_TRUE(RoaringBitmap::And(a, empty).IsEmpty());
  EXPECT_TRUE(RoaringBitmap::And(empty, a).IsEmpty());
  EXPECT_TRUE(RoaringBitmap::Or(a, empty).Equals(a));
  EXPECT_TRUE(RoaringBitmap::Or(empty, a).Equals(a));
  EXPECT_TRUE(RoaringBitmap::Xor(a, empty).Equals(a));
  EXPECT_TRUE(RoaringBitmap::AndNot(a, empty).Equals(a));
  EXPECT_TRUE(RoaringBitmap::AndNot(empty, a).IsEmpty());
  EXPECT_EQ(RoaringBitmap::AndCardinality(a, empty), 0u);
  EXPECT_FALSE(RoaringBitmap::Intersects(a, empty));
}

TEST(RoaringBitmapTest, SizeInBytesReflectsDensity) {
  // A dense, compact-position bitmap must be far smaller per element than a
  // scattered one -- the §3.4 rationale for engagement-ordered encoding.
  RoaringBitmap dense;
  dense.AddRange(0, 1000000);
  dense.RunOptimize();
  Rng rng(7);
  RoaringBitmap sparse;
  for (int i = 0; i < 1000000; ++i) {
    sparse.Add(static_cast<uint32_t>(rng.NextBounded(1u << 31)));
  }
  const double dense_bytes_per_elem =
      static_cast<double>(dense.SizeInBytes()) /
      static_cast<double>(dense.Cardinality());
  const double sparse_bytes_per_elem =
      static_cast<double>(sparse.SizeInBytes()) /
      static_cast<double>(sparse.Cardinality());
  EXPECT_LT(dense_bytes_per_elem * 20, sparse_bytes_per_elem);
}

}  // namespace
}  // namespace expbsi

namespace expbsi {
namespace {

TEST(RoaringIteratorTest, WalksAllValuesInOrder) {
  Rng rng(201);
  std::set<uint32_t> values = testing_util::RandomSet(rng, 5000, 1u << 24);
  values.insert(0);
  values.insert(0xFFFFFFFFu);
  RoaringBitmap bm = RoaringBitmap::FromSorted({values.begin(), values.end()});
  bm.AddRange(1u << 20, (1u << 20) + 30000);  // dense stretch
  bm.RunOptimize();
  std::vector<uint32_t> expect = bm.ToVector();
  std::vector<uint32_t> got;
  for (RoaringBitmap::Iterator it(bm); it.HasValue(); it.Next()) {
    got.push_back(it.value());
  }
  EXPECT_EQ(got, expect);
}

TEST(RoaringIteratorTest, EmptyBitmap) {
  RoaringBitmap bm;
  RoaringBitmap::Iterator it(bm);
  EXPECT_FALSE(it.HasValue());
}

TEST(RoaringIteratorTest, SkipTo) {
  RoaringBitmap bm = RoaringBitmap::FromSorted({10, 20, 70000, 200000});
  RoaringBitmap::Iterator it(bm);
  it.SkipTo(15);
  ASSERT_TRUE(it.HasValue());
  EXPECT_EQ(it.value(), 20u);
  it.SkipTo(20);  // no-op: already at/after target
  EXPECT_EQ(it.value(), 20u);
  it.SkipTo(65537);
  ASSERT_TRUE(it.HasValue());
  EXPECT_EQ(it.value(), 70000u);
  it.SkipTo(300000);
  EXPECT_FALSE(it.HasValue());
}

TEST(RoaringIteratorTest, SkipToPropertyMatchesLowerBound) {
  Rng rng(202);
  std::set<uint32_t> values = testing_util::RandomSet(rng, 3000, 1u << 22);
  RoaringBitmap bm = RoaringBitmap::FromSorted({values.begin(), values.end()});
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t target = static_cast<uint32_t>(rng.NextBounded(1u << 22));
    RoaringBitmap::Iterator it(bm);
    it.SkipTo(target);
    auto lb = values.lower_bound(target);
    if (lb == values.end()) {
      EXPECT_FALSE(it.HasValue());
    } else {
      ASSERT_TRUE(it.HasValue());
      EXPECT_EQ(it.value(), *lb);
    }
  }
}

}  // namespace
}  // namespace expbsi
