// Chaos suite: seeded fault schedules (tests/property_gen.h
// GenFaultSchedule) replayed against the PR-1 differential oracle. The
// invariants, per docs/TESTING.md "Chaos tests":
//
//   (a) a non-degraded result is BIT-IDENTICAL to the fault-free run;
//   (b) a degraded result reports exactly the lost segments -- every other
//       segment's values still match the fault-free run bit for bit;
//   (c) no crash, no hang, no silently wrong answer (also exercised under
//       asan/tsan in the CI chaos job).
//
// Reproducing a failure: every assertion message carries the iteration
// seed. Re-run just that seed with
//
//   EXPBSI_CHAOS_SEED=<seed> ./build/tests/expbsi_tests
//       --gtest_filter='ChaosTest.*'   (one command, line-wrapped)
//
// EXPBSI_CHAOS_ITERS widens the random exploration (CI runs 200 in Release,
// 20 under each sanitizer); the corpus in tests/corpus/chaos_seeds.txt is
// replayed BEFORE the exploration so known-nasty recovery interleavings
// stay covered. EXPBSI_CHAOS_LOG=1 prints a one-line classification per
// seed, which is how corpus candidates are hunted.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/adhoc_cluster.h"
#include "cluster/precompute_pipeline.h"
#include "common/fault_injector.h"
#include "common/file_io.h"
#include "common/rng.h"
#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"
#include "reference/ref_data.h"
#include "reference/ref_engine.h"
#include "storage/bsi_store.h"
#include "storage/snapshot.h"
#include "wal/event_stream.h"
#include "wal/ingest_store.h"
#include "wal/wal.h"
#include "tests/property_gen.h"

namespace expbsi {
namespace {

// ---------------------------------------------------------------------------
// Seed schedule (same shape as differential_test.cc).
// ---------------------------------------------------------------------------

uint64_t Splitmix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::vector<uint64_t> CorpusSeeds() {
  std::vector<uint64_t> seeds;
#ifdef EXPBSI_CORPUS_DIR
  std::ifstream in(std::string(EXPBSI_CORPUS_DIR) + "/chaos_seeds.txt");
  EXPECT_TRUE(in.good()) << "missing corpus file " << EXPBSI_CORPUS_DIR
                         << "/chaos_seeds.txt";
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    uint64_t seed;
    if (ls >> seed) seeds.push_back(seed);
  }
  EXPECT_GE(seeds.size(), 4u) << "chaos corpus unexpectedly small";
#endif
  return seeds;
}

int ExploreIters() {
  if (const char* env = std::getenv("EXPBSI_CHAOS_ITERS")) {
    return static_cast<int>(std::strtol(env, nullptr, 0));
  }
  return 25;
}

std::vector<uint64_t> SeedSchedule(uint64_t base) {
  if (const char* env = std::getenv("EXPBSI_CHAOS_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(env, nullptr, 0))};
  }
  std::vector<uint64_t> seeds = CorpusSeeds();
  uint64_t x = base;
  for (int i = 0, n = ExploreIters(); i < n; ++i) {
    x = Splitmix(x);
    seeds.push_back(x);
  }
  return seeds;
}

std::string Ctx(uint64_t seed, const std::string& what) {
  return what + " (reproduce: EXPBSI_CHAOS_SEED=" + std::to_string(seed) +
         " ./build/tests/expbsi_tests"
         " --gtest_filter='ChaosTest.*')";
}

bool ChaosLogEnabled() {
  static const bool enabled = std::getenv("EXPBSI_CHAOS_LOG") != nullptr;
  return enabled;
}

// ---------------------------------------------------------------------------
// Fixture: one small dataset, fault-free baselines computed once.
// ---------------------------------------------------------------------------

constexpr Date kLo = 10;
constexpr Date kHi = 14;
const std::vector<uint64_t> kStrategies = {801, 802};
const std::vector<uint64_t> kMetrics = {901, 902};

std::vector<StrategyMetricPair> AllPairs() {
  std::vector<StrategyMetricPair> pairs;
  for (uint64_t s : kStrategies) {
    for (uint64_t m : kMetrics) pairs.push_back({s, m});
  }
  return pairs;
}

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.num_users = 3000;
    config.num_segments = 6;
    config.num_days = 5;
    config.start_date = kLo;
    config.seed = 71;

    ExperimentConfig exp;
    exp.strategy_ids = {801, 802};
    exp.arm_effects = {1.0, 1.1};
    exp.traffic_salt = 5;

    MetricConfig m1;
    m1.metric_id = 901;
    m1.value_range = 100;
    m1.daily_participation = 0.5;
    MetricConfig m2;
    m2.metric_id = 902;
    m2.value_range = 1;
    m2.daily_participation = 0.7;

    dataset_ = new Dataset(GenerateDataset(config, {exp}, {m1, m2}, {}));
    bsi_ = new ExperimentBsiData(BuildExperimentBsiData(*dataset_, true));
    baseline_ = new std::map<StrategyMetricPair, BucketValues>();
    for (const StrategyMetricPair& pair : AllPairs()) {
      (*baseline_)[pair] =
          ComputeStrategyMetricBsi(*bsi_, pair.first, pair.second, kLo, kHi);
    }
  }

  static void TearDownTestSuite() {
    delete baseline_;
    delete bsi_;
    delete dataset_;
  }

  // Degraded-aware comparison against the fault-free baseline: segments in
  // `lost` must be zero slots, every other segment bit-identical.
  static void ExpectMatchesBaselineExcept(
      const std::map<StrategyMetricPair, BucketValues>& results,
      const std::vector<int>& lost_segments, const std::string& ctx) {
    const std::set<int> lost(lost_segments.begin(), lost_segments.end());
    ASSERT_EQ(results.size(), baseline_->size()) << ctx;
    for (const auto& [pair, values] : results) {
      const BucketValues& want = baseline_->at(pair);
      ASSERT_EQ(values.sums.size(), want.sums.size()) << ctx;
      ASSERT_EQ(values.counts.size(), want.counts.size()) << ctx;
      for (size_t seg = 0; seg < values.sums.size(); ++seg) {
        if (lost.count(static_cast<int>(seg)) > 0) {
          EXPECT_EQ(values.sums[seg], 0.0)
              << ctx << " lost segment " << seg << " has a nonzero sum";
          EXPECT_EQ(values.counts[seg], 0.0)
              << ctx << " lost segment " << seg << " has a nonzero count";
        } else {
          EXPECT_EQ(values.sums[seg], want.sums[seg])
              << ctx << " pair " << pair.first << "/" << pair.second
              << " segment " << seg << " diverged without being reported";
          EXPECT_EQ(values.counts[seg], want.counts[seg])
              << ctx << " pair " << pair.first << "/" << pair.second
              << " segment " << seg << " count diverged";
        }
      }
    }
  }

  static void ExpectDegradedInfoWellFormed(
      const AdhocCluster::DegradedInfo& info, const std::string& ctx) {
    EXPECT_TRUE(std::is_sorted(info.lost_segments.begin(),
                               info.lost_segments.end()))
        << ctx;
    EXPECT_EQ(std::adjacent_find(info.lost_segments.begin(),
                                 info.lost_segments.end()),
              info.lost_segments.end())
        << ctx << " duplicate lost segment";
    for (int seg : info.lost_segments) {
      EXPECT_GE(seg, 0) << ctx;
      EXPECT_LT(seg, dataset_->config.num_segments) << ctx;
    }
    EXPECT_EQ(info.segments_answered,
              dataset_->config.num_segments -
                  static_cast<int>(info.lost_segments.size()))
        << ctx;
  }

  // One full ad-hoc chaos iteration for `seed`: generate a schedule, run a
  // fresh cluster under it in degraded mode, check invariants (a)-(c).
  static void RunAdhocIteration(uint64_t seed) {
    Rng rng(seed);
    const propgen::FaultSchedule schedule = propgen::GenFaultSchedule(rng);
    AdhocClusterConfig config;
    config.num_nodes = 2 + static_cast<int>(rng.NextBounded(3));
    config.allow_degraded = true;
    AdhocCluster cluster(dataset_, bsi_, config);

    FaultInjector injector(schedule.injector_seed);
    schedule.ApplyTo(&injector);
    Result<AdhocCluster::QueryStats> result(Status::Unavailable("not run"));
    {
      ScopedFaultInjection scoped(&injector);
      result = cluster.QueryBsi(kStrategies, kMetrics, kLo, kHi);
    }
    const std::string ctx = Ctx(seed, "adhoc chaos");
    ASSERT_TRUE(result.ok()) << ctx << " degraded-mode query failed: "
                             << result.status().ToString();
    const AdhocCluster::QueryStats& stats = result.value();
    ExpectDegradedInfoWellFormed(stats.degraded, ctx);
    ExpectMatchesBaselineExcept(stats.results, stats.degraded.lost_segments,
                                ctx);
    if (ChaosLogEnabled()) {
      std::fprintf(
          stderr,
          "[chaos] seed=%llu lost=%d nodes_lost=%d retries=%d survived=%d "
          "corruptions=%llu injected=%llu\n",
          static_cast<unsigned long long>(seed),
          static_cast<int>(stats.degraded.lost_segments.size()),
          stats.degraded.nodes_lost, stats.degraded.retries,
          stats.degraded.faults_survived,
          static_cast<unsigned long long>(injector.stats().corruptions),
          static_cast<unsigned long long>(injector.stats().any()));
    }
  }

  // One pipeline chaos iteration: successful pairs bit-identical, failed
  // pairs explicit and uncached.
  static void RunPipelineIteration(uint64_t seed) {
    Rng rng(seed);
    const propgen::FaultSchedule schedule = propgen::GenFaultSchedule(rng);
    PrecomputeConfig config;
    config.num_threads = 1 + static_cast<int>(rng.NextBounded(4));
    config.batch_size = 1 + static_cast<int>(rng.NextBounded(6));
    PrecomputePipeline pipeline(dataset_, bsi_, config);

    FaultInjector injector(schedule.injector_seed);
    schedule.ApplyTo(&injector);
    const std::vector<StrategyMetricPair> pairs = AllPairs();
    PrecomputeStats stats;
    {
      ScopedFaultInjection scoped(&injector);
      stats = pipeline.RunBsi(pairs, kLo, kHi);
    }
    const std::string ctx = Ctx(seed, "pipeline chaos");
    const std::set<StrategyMetricPair> failed(stats.failed_pairs.begin(),
                                              stats.failed_pairs.end());
    EXPECT_EQ(failed.size(), stats.failed_pairs.size())
        << ctx << " duplicate failed pair";
    EXPECT_EQ(stats.pairs_computed + static_cast<int>(failed.size()),
              static_cast<int>(pairs.size()))
        << ctx;
    for (const StrategyMetricPair& pair : pairs) {
      const BucketValues* got = pipeline.GetResult(pair);
      if (failed.count(pair) > 0) {
        EXPECT_EQ(got, nullptr)
            << ctx << " failed pair still has a cached result";
        continue;
      }
      ASSERT_NE(got, nullptr) << ctx;
      const BucketValues& want = baseline_->at(pair);
      EXPECT_EQ(got->sums, want.sums) << ctx;
      EXPECT_EQ(got->counts, want.counts) << ctx;
    }
  }

  static Dataset* dataset_;
  static ExperimentBsiData* bsi_;
  static std::map<StrategyMetricPair, BucketValues>* baseline_;
};

Dataset* ChaosTest::dataset_ = nullptr;
ExperimentBsiData* ChaosTest::bsi_ = nullptr;
std::map<StrategyMetricPair, BucketValues>* ChaosTest::baseline_ = nullptr;

// ---------------------------------------------------------------------------
// Baseline sanity: the fault-free cluster answer IS the oracle answer.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, FaultFreeBaselineMatchesScalarOracle) {
  ASSERT_EQ(FaultInjector::Get(), nullptr);
  const RefExperimentData ref = BuildRefExperimentData(*dataset_);
  for (const auto& [pair, values] : *baseline_) {
    const BucketValues want =
        RefComputeStrategyMetric(ref, pair.first, pair.second, kLo, kHi);
    EXPECT_EQ(values.sums, want.sums) << pair.first << "/" << pair.second;
    EXPECT_EQ(values.counts, want.counts);
  }
  AdhocCluster cluster(dataset_, bsi_, AdhocClusterConfig{});
  const auto stats = cluster.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats.value().degraded.degraded());
  ExpectMatchesBaselineExcept(stats.value().results, {}, "fault-free");
}

// ---------------------------------------------------------------------------
// The seeded sweeps (corpus first, then exploration).
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, AdhocSurvivesSeededFaultSchedules) {
  for (uint64_t seed : SeedSchedule(0xADC0C5u)) {
    RunAdhocIteration(seed);
    if (HasFatalFailure()) return;
  }
}

TEST_F(ChaosTest, PipelineSurvivesSeededFaultSchedules) {
  for (uint64_t seed : SeedSchedule(0xF1BE5u)) {
    RunPipelineIteration(seed);
    if (HasFatalFailure()) return;
  }
}

// Same seed, fresh cluster and injector: results and degradation accounting
// replay identically (the whole point of deterministic injection).
TEST_F(ChaosTest, SameSeedReplaysIdentically) {
  const uint64_t seed = Splitmix(0xDE7E12ull);
  auto run = [&](std::map<StrategyMetricPair, BucketValues>* results,
                 AdhocCluster::DegradedInfo* degraded) {
    Rng rng(seed);
    const propgen::FaultSchedule schedule = propgen::GenFaultSchedule(rng);
    AdhocClusterConfig config;
    config.num_nodes = 2 + static_cast<int>(rng.NextBounded(3));
    config.allow_degraded = true;
    AdhocCluster cluster(dataset_, bsi_, config);
    FaultInjector injector(schedule.injector_seed);
    schedule.ApplyTo(&injector);
    ScopedFaultInjection scoped(&injector);
    const auto stats = cluster.QueryBsi(kStrategies, kMetrics, kLo, kHi);
    ASSERT_TRUE(stats.ok());
    *results = stats.value().results;
    *degraded = stats.value().degraded;
  };
  std::map<StrategyMetricPair, BucketValues> first, second;
  AdhocCluster::DegradedInfo dfirst, dsecond;
  run(&first, &dfirst);
  run(&second, &dsecond);
  ASSERT_EQ(first.size(), second.size());
  for (const auto& [pair, values] : first) {
    EXPECT_EQ(values.sums, second.at(pair).sums);
    EXPECT_EQ(values.counts, second.at(pair).counts);
  }
  EXPECT_EQ(dfirst.lost_segments, dsecond.lost_segments);
  EXPECT_EQ(dfirst.segments_answered, dsecond.segments_answered);
  EXPECT_EQ(dfirst.retries, dsecond.retries);
  EXPECT_EQ(dfirst.faults_survived, dsecond.faults_survived);
  EXPECT_EQ(dfirst.nodes_lost, dsecond.nodes_lost);
}

// ---------------------------------------------------------------------------
// Named recovery scenarios (hand-pinned schedules).
// ---------------------------------------------------------------------------

// A corrupt transfer is caught by the fingerprint gate, retried, and the
// retry re-reads the warehouse: full recovery, flagged only in the stats.
TEST_F(ChaosTest, CorruptTransferRecoversOnRetry) {
  AdhocClusterConfig config;
  config.num_nodes = 3;
  config.allow_degraded = true;
  AdhocCluster cluster(dataset_, bsi_, config);
  FaultInjector injector(/*seed=*/11);
  injector.ScheduleFault(fault_sites::kTierFetch, 0, FaultKind::kCorrupt);
  ScopedFaultInjection scoped(&injector);
  const auto stats = cluster.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats.value().degraded.degraded());
  EXPECT_GE(stats.value().degraded.retries, 1);
  EXPECT_GE(stats.value().degraded.faults_survived, 1);
  EXPECT_EQ(injector.stats().corruptions, 1u);
  ExpectMatchesBaselineExcept(stats.value().results, {},
                              "corrupt-transfer-retry");
}

// Node 0 crashes in wave 1; its segments requeue onto nodes 1 and 2. Node 1
// then crashes at the start of wave 2 -- a crash DURING requeue -- and the
// twice-orphaned segment finishes on node 2. Nothing is lost.
TEST_F(ChaosTest, CrashDuringRequeueStillCompletes) {
  AdhocClusterConfig config;
  config.num_nodes = 3;
  config.allow_degraded = true;
  AdhocCluster cluster(dataset_, bsi_, config);
  // 6 segments over 3 nodes: node0={0,3} node1={1,4} node2={2,5}. Wave-1
  // coordinator order evaluates adhoc.node_segment ops 0..4 (node0 crashes
  // at op 0, so segments 1,4,2,5 take ops 1-4); the wave-2 requeue puts
  // segment 0 on node1 (op 5, crash again) and segment 3 on node2 (op 6);
  // wave 3 retries segment 0 on node2 (op 7).
  FaultInjector injector(/*seed=*/12);
  injector.ScheduleFault(fault_sites::kNodeSegment, 0, FaultKind::kCrash);
  injector.ScheduleFault(fault_sites::kNodeSegment, 5, FaultKind::kCrash);
  ScopedFaultInjection scoped(&injector);
  const auto stats = cluster.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats.value().degraded.degraded());
  EXPECT_EQ(stats.value().degraded.nodes_lost, 2);
  EXPECT_GE(stats.value().degraded.faults_survived, 2);
  ExpectMatchesBaselineExcept(stats.value().results, {},
                              "crash-during-requeue");
}

// Every node crashes: in degraded mode the whole scorecard is lost but the
// loss is fully reported; in strict mode the query errors out.
TEST_F(ChaosTest, TotalNodeLossDegradesEverySegment) {
  AdhocClusterConfig config;
  config.num_nodes = 3;
  config.allow_degraded = true;
  AdhocCluster cluster(dataset_, bsi_, config);
  FaultInjector injector(/*seed=*/13);
  injector.SetCrashProbability(fault_sites::kNodeSegment, 1.0);
  ScopedFaultInjection scoped(&injector);
  const auto stats = cluster.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  ASSERT_TRUE(stats.ok());
  const AdhocCluster::DegradedInfo& info = stats.value().degraded;
  EXPECT_EQ(static_cast<int>(info.lost_segments.size()),
            dataset_->config.num_segments);
  EXPECT_EQ(info.segments_answered, 0);
  EXPECT_EQ(info.nodes_lost, 3);
  ExpectMatchesBaselineExcept(stats.value().results, info.lost_segments,
                              "total-node-loss");

  AdhocClusterConfig strict = config;
  strict.allow_degraded = false;
  AdhocCluster strict_cluster(dataset_, bsi_, strict);
  FaultInjector strict_injector(/*seed=*/13);
  strict_injector.SetCrashProbability(fault_sites::kNodeSegment, 1.0);
  ScopedFaultInjection strict_scoped(&strict_injector);
  const auto strict_result =
      strict_cluster.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  ASSERT_FALSE(strict_result.ok());
  EXPECT_EQ(strict_result.status().code(), StatusCode::kUnavailable);
}

// Persistent corruption (every transfer flips bits) exhausts the retry
// budget; strict mode surfaces it as a Status instead of degrading.
TEST_F(ChaosTest, StrictModePersistentCorruptionSurfacesAsStatus) {
  AdhocClusterConfig config;
  config.allow_degraded = false;
  AdhocCluster cluster(dataset_, bsi_, config);
  FaultInjector injector(/*seed=*/14);
  injector.SetCorruptProbability(fault_sites::kTierFetch, 1.0);
  ScopedFaultInjection scoped(&injector);
  const auto result = cluster.QueryBsi(kStrategies, kMetrics, kLo, kHi);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

// Pipeline: one pair's every attempt fails -> explicit failed_pairs entry
// and no cached result; a single-attempt blip on another pair is retried
// away without a trace beyond the retry counter.
TEST_F(ChaosTest, PipelineFailedPairsAreExplicitAndUncached) {
  const std::vector<StrategyMetricPair> pairs = AllPairs();
  PrecomputeConfig config;
  config.num_threads = 2;
  config.batch_size = 2;
  PrecomputePipeline pipeline(dataset_, bsi_, config);
  FaultInjector injector(/*seed=*/15);
  // Pair index 2 fails all three attempts; pair index 0 only the first.
  for (uint64_t attempt = 0; attempt < 3; ++attempt) {
    injector.ScheduleFault(fault_sites::kPipelineTask,
                           2 * kPipelineAttemptStride + attempt,
                           FaultKind::kFail);
  }
  injector.ScheduleFault(fault_sites::kPipelineTask, 0, FaultKind::kFail);
  PrecomputeStats stats;
  {
    ScopedFaultInjection scoped(&injector);
    stats = pipeline.RunBsi(pairs, kLo, kHi);
  }
  ASSERT_EQ(stats.failed_pairs.size(), 1u);
  EXPECT_EQ(stats.failed_pairs[0], pairs[2]);
  EXPECT_EQ(pipeline.GetResult(pairs[2]), nullptr);
  EXPECT_EQ(stats.pairs_computed, static_cast<int>(pairs.size()) - 1);
  EXPECT_GE(stats.retries, 3);  // 2 for the doomed pair + 1 for the blip
  EXPECT_GT(stats.backoff_seconds, 0.0);
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i == 2) continue;
    const BucketValues* got = pipeline.GetResult(pairs[i]);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->sums, baseline_->at(pairs[i]).sums);
    EXPECT_EQ(got->counts, baseline_->at(pairs[i]).counts);
  }
}

// ---------------------------------------------------------------------------
// FaultInjector unit behavior.
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, DisabledByDefault) {
  EXPECT_EQ(FaultInjector::Get(), nullptr);
}

TEST(FaultInjectorTest, ScopedInstallRestoresPrevious) {
  FaultInjector outer(1), inner(2);
  {
    ScopedFaultInjection outer_scope(&outer);
    EXPECT_EQ(FaultInjector::Get(), &outer);
    {
      ScopedFaultInjection inner_scope(&inner);
      EXPECT_EQ(FaultInjector::Get(), &inner);
    }
    EXPECT_EQ(FaultInjector::Get(), &outer);
  }
  EXPECT_EQ(FaultInjector::Get(), nullptr);
}

TEST(FaultInjectorTest, SameSeedSameDecisions) {
  const auto decisions = [](uint64_t seed) {
    FaultInjector fi(seed);
    fi.SetFailProbability(fault_sites::kTierFetch, 0.3);
    fi.SetCorruptProbability(fault_sites::kTierFetch, 0.2);
    fi.SetDelayProbability(fault_sites::kTierFetch, 0.25, 0.01);
    fi.SetCrashProbability(fault_sites::kNodeSegment, 0.15);
    std::vector<int> out;
    for (int i = 0; i < 200; ++i) {
      const FaultDecision a = fi.Evaluate(fault_sites::kTierFetch);
      const FaultDecision b = fi.Evaluate(fault_sites::kNodeSegment);
      out.push_back((a.fail ? 1 : 0) | (a.corrupt ? 2 : 0) |
                    (a.delay_seconds > 0 ? 4 : 0) | (b.crash ? 8 : 0));
    }
    return out;
  };
  EXPECT_EQ(decisions(42), decisions(42));
  EXPECT_NE(decisions(42), decisions(43));
}

TEST(FaultInjectorTest, OneShotFiresAtExactlyItsOpIndex) {
  FaultInjector fi(7);
  fi.ScheduleFault(fault_sites::kWarehouseGet, 3, FaultKind::kFail);
  for (int i = 0; i < 10; ++i) {
    const FaultDecision d = fi.Evaluate(fault_sites::kWarehouseGet);
    EXPECT_EQ(d.fail, i == 3) << "op " << i;
  }
  EXPECT_EQ(fi.stats().fails, 1u);
  EXPECT_EQ(fi.stats().evaluations, 10u);
}

TEST(FaultInjectorTest, EvaluateAtDoesNotAdvanceTheCounter) {
  FaultInjector fi(8);
  fi.ScheduleFault(fault_sites::kPipelineTask, 0, FaultKind::kFail);
  EXPECT_TRUE(fi.EvaluateAt(fault_sites::kPipelineTask, 0).fail);
  EXPECT_FALSE(fi.EvaluateAt(fault_sites::kPipelineTask, 1).fail);
  // The counter-consuming path still starts at op 0.
  EXPECT_TRUE(fi.Evaluate(fault_sites::kPipelineTask).fail);
}

TEST(FaultInjectorTest, CorruptBlobIsDeterministicAndFlipsBits) {
  const std::string original = "serialized bsi payload bytes 0123456789";
  FaultInjector fi(9);
  std::string a = original, b = original;
  fi.CorruptBlob(17, &a);
  fi.CorruptBlob(17, &b);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, original);
  EXPECT_EQ(a.size(), original.size());
  std::string c = original;
  fi.CorruptBlob(18, &c);
  EXPECT_NE(c, a);  // different token, different flips
  std::string empty;
  fi.CorruptBlob(17, &empty);  // no-op, must not crash
  EXPECT_TRUE(empty.empty());
}

TEST(FaultInjectorTest, UnconfiguredSitesNeverFire) {
  FaultInjector fi(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fi.Evaluate(fault_sites::kTierFetch).any());
  }
  EXPECT_EQ(fi.stats().any(), 0u);
  EXPECT_EQ(fi.stats().evaluations, 100u);
}

// BlobFingerprint is the corruption detector; it must see single bit flips.
TEST(FaultInjectorTest, FingerprintDetectsEveryInjectedCorruption) {
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    std::string blob(1 + rng.NextBounded(300), '\0');
    for (char& ch : blob) ch = static_cast<char>(rng.NextBounded(256));
    const uint64_t clean = BlobFingerprint(blob);
    FaultInjector fi(rng.Next());
    std::string corrupted = blob;
    fi.CorruptBlob(iter, &corrupted);
    if (corrupted != blob) {
      EXPECT_NE(BlobFingerprint(corrupted), clean) << "iter " << iter;
    }
  }
}


// ---------------------------------------------------------------------------
// Snapshot kill-recovery chaos (DESIGN.md §6). The property under test: a
// snapshot commit killed or corrupted at ANY step leaves the directory in a
// state where recovery returns either the previous version or the new one
// -- surviving segments bit-identical to that version, lost segments
// enumerated, never a torn mix and never a silent zero.
// ---------------------------------------------------------------------------

std::string SnapCtx(uint64_t seed, const std::string& what) {
  return what + " (reproduce: EXPBSI_CHAOS_SEED=" + std::to_string(seed) +
         " ./build/tests/expbsi_tests"
         " --gtest_filter='SnapshotChaosTest.*')";
}

// Fresh, emptied scratch directory (snapshot files persist across runs in
// the test tmp root otherwise).
std::string SnapshotChaosDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "expbsi_chaos_" + name;
  EXPECT_TRUE(fileio::CreateDirIfMissing(dir).ok());
  const Result<std::vector<std::string>> listing1 = fileio::ListDir(dir);
  EXPECT_TRUE(listing1.ok());
  if (listing1.ok()) {
    for (const std::string& entry : listing1.value()) {
      EXPECT_TRUE(fileio::RemoveFileIfExists(dir + "/" + entry).ok());
    }
  }
  return dir;
}

// Opaque deterministic blobs; the snapshot layer never looks inside them.
BsiStore MakeChaosStore(uint64_t seed, int num_segments) {
  Rng rng(seed);
  BsiStore store;
  for (int seg = 0; seg < num_segments; ++seg) {
    const int blobs = 1 + static_cast<int>(rng.NextBounded(4));
    for (int b = 0; b < blobs; ++b) {
      std::string bytes(1 + rng.NextBounded(500), '\0');
      for (char& c : bytes) c = static_cast<char>(rng.Next() & 0xff);
      BsiStoreKey key;
      key.segment = static_cast<uint16_t>(seg);
      key.kind = static_cast<BsiKind>(b % 3);
      key.id = 50 + b;
      key.date = static_cast<uint32_t>(b);
      store.Put(key, std::move(bytes));
    }
  }
  return store;
}

using SnapBlobKey = std::tuple<uint16_t, uint8_t, uint64_t, uint32_t>;

std::map<SnapBlobKey, std::string> SnapContentsOf(const BsiStore& store) {
  std::map<SnapBlobKey, std::string> out;
  store.ForEach([&](const BsiStoreKey& key, const std::string& bytes) {
    out[{key.segment, static_cast<uint8_t>(key.kind), key.id, key.date}] =
        bytes;
  });
  return out;
}

// The core invariant: `recovered` against the version the manifest says was
// loaded. Surviving segments bit-identical, lost enumerated, nothing else.
void ExpectRecoveredConsistent(const BsiStore& recovered,
                               const RecoveryReport& report,
                               const BsiStore& expected,
                               const std::string& ctx) {
  const std::map<SnapBlobKey, std::string> want = SnapContentsOf(expected);
  const std::map<SnapBlobKey, std::string> got = SnapContentsOf(recovered);
  const std::set<uint16_t> lost(report.lost_segments.begin(),
                                report.lost_segments.end());
  const std::set<uint16_t> ok_segs(report.segments_recovered.begin(),
                                   report.segments_recovered.end());
  EXPECT_EQ(lost.size(), report.lost_segments.size())
      << ctx << " duplicate lost segment";
  for (uint16_t seg : lost) {
    EXPECT_EQ(ok_segs.count(seg), 0u)
        << ctx << " segment " << seg << " both lost and recovered";
  }
  std::set<uint16_t> expected_segments;
  for (const auto& [k, v] : want) expected_segments.insert(std::get<0>(k));
  std::set<uint16_t> reported;
  reported.insert(lost.begin(), lost.end());
  reported.insert(ok_segs.begin(), ok_segs.end());
  EXPECT_EQ(reported, expected_segments)
      << ctx << " lost+recovered does not partition the manifest segments";
  size_t live_blobs = 0;
  for (const auto& [k, v] : want) {
    const uint16_t seg = std::get<0>(k);
    const auto it = got.find(k);
    if (lost.count(seg) > 0) {
      EXPECT_EQ(it, got.end()) << ctx << " lost segment leaked a blob";
    } else {
      ++live_blobs;
      ASSERT_NE(it, got.end())
          << ctx << " segment " << seg << " silently dropped a blob";
      EXPECT_EQ(it->second, v)
          << ctx << " recovered blob diverged from the committed version";
    }
  }
  EXPECT_EQ(got.size(), live_blobs)
      << ctx << " recovered store holds blobs from no committed version";
}

// One seeded iteration: commit v1 clean, attempt v2 under a generated
// snapshot fault schedule, recover under the same injector (read faults
// fire here), then check the invariant against whichever version the
// manifest selected.
void RunSnapshotChaosIteration(uint64_t seed, const std::string& dir) {
  Rng rng(seed);
  const int v1_segments = 1 + static_cast<int>(rng.NextBounded(3));
  const BsiStore v1 = MakeChaosStore(rng.Next(), v1_segments);
  ASSERT_TRUE(SnapshotWriter::Write(v1, dir).ok());

  const int v2_segments =
      v1_segments + (rng.NextBernoulli(0.3) ? 1 : 0);
  const BsiStore v2 = MakeChaosStore(rng.Next(), v2_segments);
  const propgen::FaultSchedule schedule = propgen::GenSnapshotFaultSchedule(
      rng, static_cast<uint64_t>(v2_segments) + 1);

  FaultInjector injector(schedule.injector_seed);
  schedule.ApplyTo(&injector);
  Status write_status = Status::OK();
  Result<BsiStore> recovered(Status::Unavailable("not run"));
  RecoveryReport report;
  {
    ScopedFaultInjection scoped(&injector);
    const Result<SnapshotWriteStats> written =
        SnapshotWriter::Write(v2, dir);
    write_status = written.status();
    recovered = BsiStore::Recover(dir, &report);
  }
  const std::string ctx = SnapCtx(seed, "snapshot chaos");
  // v1's manifest was committed fault-free and manifest reads are never
  // injected, so recovery always has a floor to land on.
  ASSERT_TRUE(recovered.ok()) << ctx << ": "
                              << recovered.status().ToString();
  ASSERT_TRUE(report.manifest_version == 1 || report.manifest_version == 2)
      << ctx << " manifest version " << report.manifest_version;
  if (!write_status.ok()) {
    EXPECT_EQ(report.manifest_version, 1u)
        << ctx << " failed commit must not be visible";
  }
  const BsiStore& expected = report.manifest_version == 2 ? v2 : v1;
  ExpectRecoveredConsistent(recovered.value(), report, expected, ctx);
  if (ChaosLogEnabled()) {
    std::fprintf(
        stderr,
        "[snapchaos] seed=%llu write_ok=%d version=%llu lost=%d skipped=%u "
        "injected=%llu\n",
        static_cast<unsigned long long>(seed),
        write_status.ok() ? 1 : 0,
        static_cast<unsigned long long>(report.manifest_version),
        static_cast<int>(report.lost_segments.size()),
        report.manifests_skipped,
        static_cast<unsigned long long>(injector.stats().any()));
  }
}

std::vector<uint64_t> SnapshotSeedSchedule(uint64_t base) {
  if (const char* env = std::getenv("EXPBSI_CHAOS_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(env, nullptr, 0))};
  }
  std::vector<uint64_t> seeds;
#ifdef EXPBSI_CORPUS_DIR
  std::ifstream in(std::string(EXPBSI_CORPUS_DIR) + "/snapshot_seeds.txt");
  EXPECT_TRUE(in.good()) << "missing corpus file " << EXPBSI_CORPUS_DIR
                         << "/snapshot_seeds.txt";
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    uint64_t seed;
    if (ls >> seed) seeds.push_back(seed);
  }
  EXPECT_GE(seeds.size(), 4u) << "snapshot chaos corpus unexpectedly small";
#endif
  uint64_t x = base;
  for (int i = 0, n = ExploreIters(); i < n; ++i) {
    x = Splitmix(x);
    seeds.push_back(x);
  }
  return seeds;
}

TEST(SnapshotChaosTest, SurvivesSeededKillSchedules) {
  const std::string dir = SnapshotChaosDir("seeded");
  for (uint64_t seed : SnapshotSeedSchedule(0x5A4B111ull)) {
    // Fresh directory per iteration: stale committed versions from the
    // previous seed would shift version numbers.
    const Result<std::vector<std::string>> listing2 = fileio::ListDir(dir);
    ASSERT_TRUE(listing2.ok());
    for (const std::string& entry : listing2.value()) {
      ASSERT_TRUE(fileio::RemoveFileIfExists(dir + "/" + entry).ok());
    }
    RunSnapshotChaosIteration(seed, dir);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Exhaustive deterministic sweep: one-shot kill at EVERY write and rename
// step of the commit. Before the manifest rename lands the old version must
// recover exactly; a clean retry must then commit the new version with no
// residue from the killed attempt.
TEST(SnapshotChaosTest, KillSweepMidCommitNeverTearsASnapshot) {
  constexpr int kSegments = 3;
  const BsiStore v1 = MakeChaosStore(101, kSegments);
  const BsiStore v2 = MakeChaosStore(202, kSegments);
  const char* sites[] = {fault_sites::kSnapshotWrite,
                         fault_sites::kSnapshotRename};
  for (const char* site : sites) {
    // kSegments segment files + the manifest = kSegments + 1 ops per site.
    for (uint64_t k = 0; k <= kSegments; ++k) {
      const std::string ctx = std::string("kill at ") + site + " op " +
                              std::to_string(k);
      const std::string dir = SnapshotChaosDir("kill_sweep");
      ASSERT_TRUE(SnapshotWriter::Write(v1, dir).ok()) << ctx;
      {
        FaultInjector injector(7);
        injector.ScheduleFault(site, k, FaultKind::kCrash);
        ScopedFaultInjection scoped(&injector);
        EXPECT_FALSE(SnapshotWriter::Write(v2, dir).ok()) << ctx;
      }
      RecoveryReport report;
      Result<BsiStore> recovered = BsiStore::Recover(dir, &report);
      ASSERT_TRUE(recovered.ok()) << ctx;
      EXPECT_EQ(report.manifest_version, 1u) << ctx;
      EXPECT_TRUE(report.fully_recovered()) << ctx;
      ExpectRecoveredConsistent(recovered.value(), report, v1, ctx);

      // Clean retry: the killed attempt's residue must not block or taint
      // the next commit.
      ASSERT_TRUE(SnapshotWriter::Write(v2, dir).ok()) << ctx;
      report = RecoveryReport();
      recovered = BsiStore::Recover(dir, &report);
      ASSERT_TRUE(recovered.ok()) << ctx;
      EXPECT_EQ(report.manifest_version, 2u) << ctx;
      EXPECT_TRUE(report.fully_recovered()) << ctx;
      ExpectRecoveredConsistent(recovered.value(), report, v2,
                                ctx + " after retry");
      const Result<std::vector<std::string>> listing3 = fileio::ListDir(dir);
      ASSERT_TRUE(listing3.ok());
      for (const std::string& name : listing3.value()) {
        EXPECT_EQ(name.find(".tmp"), std::string::npos)
            << ctx << " stale temp file " << name << " survived the commit";
      }
    }
  }
}

// A kill right before the manifest rename: the new version's manifest is
// durable as a .tmp, which must never count as a commit.
TEST(SnapshotChaosTest, RecoverAfterTornManifestFallsBack) {
  constexpr int kSegments = 2;
  const std::string dir = SnapshotChaosDir("torn_manifest");
  const BsiStore v1 = MakeChaosStore(301, kSegments);
  const BsiStore v2 = MakeChaosStore(302, kSegments);
  ASSERT_TRUE(SnapshotWriter::Write(v1, dir).ok());
  {
    FaultInjector injector(9);
    // Crash on the write of the manifest itself (op kSegments): its .tmp
    // holds a torn prefix.
    injector.ScheduleFault(fault_sites::kSnapshotWrite, kSegments,
                           FaultKind::kCrash);
    ScopedFaultInjection scoped(&injector);
    EXPECT_FALSE(SnapshotWriter::Write(v2, dir).ok());
  }
  RecoveryReport report;
  const Result<BsiStore> recovered = BsiStore::Recover(dir, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.manifest_version, 1u);
  EXPECT_EQ(report.manifests_skipped, 0u);  // a .tmp is not a candidate
  ExpectRecoveredConsistent(recovered.value(), report, v1, "torn manifest");
}

// A kill mid-way through a segment file write: v2's partial bytes exist
// only as a .tmp; v1 recovers untouched.
TEST(SnapshotChaosTest, RecoverAfterPartialSegmentFile) {
  constexpr int kSegments = 2;
  const std::string dir = SnapshotChaosDir("partial_segment");
  const BsiStore v1 = MakeChaosStore(401, kSegments);
  const BsiStore v2 = MakeChaosStore(402, kSegments);
  ASSERT_TRUE(SnapshotWriter::Write(v1, dir).ok());
  {
    FaultInjector injector(13);
    injector.ScheduleFault(fault_sites::kSnapshotWrite, 0,
                           FaultKind::kCrash);
    ScopedFaultInjection scoped(&injector);
    EXPECT_FALSE(SnapshotWriter::Write(v2, dir).ok());
  }
  // The torn prefix is on disk (as .tmp), proving the kill really happened
  // mid-write rather than before it.
  bool saw_tmp = false;
  const Result<std::vector<std::string>> listing4 = fileio::ListDir(dir);
  ASSERT_TRUE(listing4.ok());
  for (const std::string& name : listing4.value()) {
    if (name.find(".tmp") != std::string::npos) saw_tmp = true;
  }
  EXPECT_TRUE(saw_tmp);
  RecoveryReport report;
  const Result<BsiStore> recovered = BsiStore::Recover(dir, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.manifest_version, 1u);
  EXPECT_TRUE(report.fully_recovered());
  ExpectRecoveredConsistent(recovered.value(), report, v1,
                            "partial segment");
}

// Bits flipped in a segment file while it was being written, with the
// commit still landing: the block checksums catch it at recovery, the
// segment is quarantined and enumerated, the rest of v2 serves.
TEST(SnapshotChaosTest, RecoverAfterBitflippedBlockQuarantines) {
  constexpr int kSegments = 3;
  const std::string dir = SnapshotChaosDir("bitflipped_block");
  const BsiStore v1 = MakeChaosStore(501, kSegments);
  const BsiStore v2 = MakeChaosStore(502, kSegments);
  ASSERT_TRUE(SnapshotWriter::Write(v1, dir).ok());
  {
    FaultInjector injector(17);
    injector.ScheduleFault(fault_sites::kSnapshotWrite, 1,
                           FaultKind::kCorrupt);
    ScopedFaultInjection scoped(&injector);
    // The corruption is silent at write time -- exactly the failure mode
    // the read-side checksums exist for.
    ASSERT_TRUE(SnapshotWriter::Write(v2, dir).ok());
  }
  RecoveryReport report;
  const Result<BsiStore> recovered = BsiStore::Recover(dir, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.manifest_version, 2u);
  EXPECT_EQ(report.lost_segments, (std::vector<uint16_t>{1}));
  EXPECT_FALSE(report.quarantined_files.empty());
  ASSERT_FALSE(report.errors.empty());
  ExpectRecoveredConsistent(recovered.value(), report, v2,
                            "bitflipped block");
}

// ---------------------------------------------------------------------------
// WAL kill-recovery chaos (DESIGN.md §8.4). The property under test: a
// writer killed at ANY append, fsync barrier or segment roll leaves a log
// from which IngestStore::Open recovers an exact prefix of the acked batch
// stream -- never a torn record, never a lost acked record, never a
// phantom -- and resuming ingestion from last_sequence() converges to an
// answer bit-identical to the scalar reference engine's full rebuild.
// ---------------------------------------------------------------------------

std::string WalCtx(uint64_t seed, const std::string& what) {
  return what + " (reproduce: EXPBSI_CHAOS_SEED=" + std::to_string(seed) +
         " ./build/tests/expbsi_tests"
         " --gtest_filter='WalChaosTest.*')";
}

std::vector<uint64_t> WalChaosCorpusSeeds() {
  std::vector<uint64_t> seeds;
#ifdef EXPBSI_CORPUS_DIR
  std::ifstream in(std::string(EXPBSI_CORPUS_DIR) + "/wal_chaos_seeds.txt");
  EXPECT_TRUE(in.good()) << "missing corpus file " << EXPBSI_CORPUS_DIR
                         << "/wal_chaos_seeds.txt";
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    uint64_t seed;
    if (ls >> seed) seeds.push_back(seed);
  }
  EXPECT_GE(seeds.size(), 4u) << "WAL chaos corpus unexpectedly small";
#endif
  return seeds;
}

std::vector<uint64_t> WalChaosSeedSchedule(uint64_t base) {
  if (const char* env = std::getenv("EXPBSI_CHAOS_SEED")) {
    return {static_cast<uint64_t>(std::strtoull(env, nullptr, 0))};
  }
  std::vector<uint64_t> seeds = WalChaosCorpusSeeds();
  uint64_t x = base;
  for (int i = 0, n = ExploreIters(); i < n; ++i) {
    x = Splitmix(x);
    seeds.push_back(x);
  }
  return seeds;
}

constexpr int kWalChaosSegments = 2;
constexpr int kWalChaosBuckets = 5;
constexpr size_t kWalChaosBatch = 32;

// One fixed dataset for the whole WAL chaos suite: the faults are the
// random surface here, not the data. Built (with its scalar-reference
// oracle and the canonical event stream) once.
struct WalChaosData {
  Dataset dataset;
  RefExperimentData ref;
  std::vector<WalEvent> events;
  std::vector<std::vector<WalEvent>> batches;  // canonical 32-event records
  Date lo = 0;
  Date hi = 0;
};

const WalChaosData& WalData() {
  static const WalChaosData* data = [] {
    auto* d = new WalChaosData();
    DatasetConfig config;
    config.num_users = 90;
    config.num_segments = kWalChaosSegments;
    config.num_buckets = kWalChaosBuckets;
    config.bucket_equals_segment = false;
    config.start_date = 20;
    config.num_days = 3;
    config.seed = 93;
    ExperimentConfig experiment;
    experiment.strategy_ids = {951, 952};
    experiment.arm_effects = {1.0, 1.2};
    experiment.traffic_fraction = 0.9;
    MetricConfig metric_a;
    metric_a.metric_id = 651;
    metric_a.value_range = 40;
    MetricConfig metric_b;
    metric_b.metric_id = 652;
    metric_b.value_range = 6;
    metric_b.daily_participation = 0.5;
    DimensionConfig dim;
    dim.dimension_id = 21;
    dim.cardinality = 3;
    d->dataset =
        GenerateDataset(config, {experiment}, {metric_a, metric_b}, {dim});
    d->ref = BuildRefExperimentData(d->dataset);
    d->events = MakeWalEventStream(d->dataset);
    d->batches = BatchWalEvents(d->events, kWalChaosBatch);
    d->lo = config.start_date;
    d->hi = config.start_date + config.num_days - 1;
    return d;
  }();
  return *data;
}

IngestOptions WalChaosOptions(uint64_t segment_bytes) {
  IngestOptions options;
  options.num_segments = kWalChaosSegments;
  options.num_buckets = kWalChaosBuckets;
  options.bucket_equals_segment = false;
  options.wal.segment_bytes = segment_bytes;
  return options;
}

// The answer of record: every strategy x metric scorecard query against the
// recovered store must be bit-identical to the scalar reference, over the
// full date range and a subrange (the subrange exercises the per-day
// exposure filters the delta merges maintain).
void ExpectWalMatchesReference(const IngestStore& store,
                               const std::string& ctx) {
  const WalChaosData& d = WalData();
  for (uint64_t strategy : {951ull, 952ull}) {
    for (uint64_t metric : {651ull, 652ull}) {
      for (Date lo : {d.lo, static_cast<Date>(d.lo + 1)}) {
        const BucketValues got =
            ComputeStrategyMetricBsi(store.data(), strategy, metric, lo, d.hi);
        const BucketValues want =
            RefComputeStrategyMetric(d.ref, strategy, metric, lo, d.hi);
        EXPECT_EQ(got.sums, want.sums)
            << ctx << " strategy=" << strategy << " metric=" << metric
            << " lo=" << lo << " sums diverged from the scalar oracle";
        EXPECT_EQ(got.counts, want.counts)
            << ctx << " strategy=" << strategy << " metric=" << metric
            << " lo=" << lo << " counts diverged from the scalar oracle";
      }
    }
  }
}

// Reopen with retry: recovery itself passes through the wal.roll site (the
// fresh active segment's header), so a scheduled roll fault can fail the
// first attempt. A later attempt must succeed -- each attempt consumes the
// fault without corrupting anything.
std::unique_ptr<IngestStore> ReopenWalStore(const std::string& wal_dir,
                                            const std::string& snap_dir,
                                            const IngestOptions& options,
                                            IngestRecoveryReport* report,
                                            const std::string& ctx) {
  for (int attempt = 0; attempt < 10; ++attempt) {
    Result<std::unique_ptr<IngestStore>> store =
        IngestStore::Open(wal_dir, snap_dir, options, report);
    if (store.ok()) return std::move(store.value());
  }
  ADD_FAILURE() << ctx << " store did not reopen within 10 attempts";
  return nullptr;
}

TEST(WalChaosTest, WalChaosCorpusIsPresent) {
  const std::vector<uint64_t> seeds = WalChaosCorpusSeeds();
#ifdef EXPBSI_CORPUS_DIR
  EXPECT_GE(seeds.size(), 4u);
#endif
}

// The kill-at-every-record sweep: for each WAL fault site, crash the writer
// at op 0, 1, 2, ... and prove recovery lands on an exact prefix every
// time. 1 KB segments against ~1.2 KB records force a roll before (almost)
// every append, so the roll sweep visits every record boundary too. A
// checkpoint halfway through makes half the sweep points recover through
// snapshot + WAL tail rather than a cold replay.
TEST(WalChaosTest, KillSweepAtEveryRecordRecoversExactPrefix) {
  const WalChaosData& d = WalData();
  const size_t num_batches = d.batches.size();
  ASSERT_GE(num_batches, 8u) << "dataset too small to sweep";
  const IngestOptions options = WalChaosOptions(/*segment_bytes=*/1024);

  struct SweepSite {
    const char* site;
    const char* name;
  };
  const SweepSite sites[] = {{fault_sites::kWalAppend, "append"},
                             {fault_sites::kWalFsync, "fsync"},
                             {fault_sites::kWalRoll, "roll"}};
  for (const SweepSite& site : sites) {
    // wal.roll op 0 is consumed by Open() itself (the first segment's
    // header); killing it fails Open before any batch exists, which the
    // random sweep's reopen-retry path covers. Start the sweep at the
    // first op that can interrupt a record.
    const size_t first_op = (site.site == fault_sites::kWalRoll) ? 1 : 0;
    for (size_t k = first_op; k < num_batches; ++k) {
      const std::string ctx =
          std::string("kill site=") + site.name + " op=" + std::to_string(k);
      const std::string wal_dir = SnapshotChaosDir("walsweep_wal");
      const std::string snap_dir = SnapshotChaosDir("walsweep_snap");

      size_t acked = 0;
      bool crashed = false;
      {
        FaultInjector injector(7);
        injector.ScheduleFault(site.site, k, FaultKind::kCrash);
        ScopedFaultInjection scoped(&injector);
        Result<std::unique_ptr<IngestStore>> store =
            IngestStore::Open(wal_dir, snap_dir, options);
        ASSERT_TRUE(store.ok()) << ctx;
        for (size_t i = 0; i < num_batches; ++i) {
          if (i == num_batches / 2) {
            ASSERT_TRUE(store.value()->Checkpoint().ok()) << ctx;
          }
          const Result<uint64_t> seq = store.value()->Ingest(d.batches[i]);
          if (!seq.ok()) {
            crashed = true;
            break;
          }
          ASSERT_EQ(seq.value(), i + 1) << ctx;
          ++acked;
        }
      }
      ASSERT_TRUE(crashed) << ctx << " scheduled kill never fired";
      // Every site is evaluated once per record, so op k dies during
      // batch k: exactly k batches were acked before the crash.
      ASSERT_EQ(acked, k) << ctx;

      // Recover (no injector: the kill is in the past) and check the
      // no-silent-loss window. The batch in flight may or may not have
      // become durable:
      //  * append-kill fsyncs a torn prefix of the record -- usually lost,
      //    but the torn length can cover the whole record, which then
      //    replays (CRC-complete records are indistinguishable from acked
      //    ones, and replaying them is the correct choice);
      //  * fsync-kill fires AFTER the flush: the record must ALWAYS
      //    survive -- losing it would be losing flushed bytes;
      //  * roll-kill dies writing the new segment's header, before any of
      //    the record's bytes: the record must NEVER appear.
      IngestRecoveryReport report;
      Result<std::unique_ptr<IngestStore>> recovered =
          IngestStore::Open(wal_dir, snap_dir, options, &report);
      ASSERT_TRUE(recovered.ok()) << ctx;
      const uint64_t resumed = recovered.value()->last_sequence();
      ASSERT_GE(resumed, acked) << ctx << " lost an acked record";
      ASSERT_LE(resumed, acked + 1) << ctx << " replayed a phantom record";
      if (site.site == fault_sites::kWalFsync) {
        ASSERT_EQ(resumed, acked + 1) << ctx << " flushed record lost";
      }
      if (site.site == fault_sites::kWalRoll) {
        ASSERT_EQ(resumed, acked)
            << ctx << " record appeared before its segment header";
      }

      // Replay determinism: recovering the same log again (after the
      // first recovery's torn-tail repair) lands on the same sequence.
      recovered.value().reset();
      recovered = IngestStore::Open(wal_dir, snap_dir, options, &report);
      ASSERT_TRUE(recovered.ok()) << ctx;
      ASSERT_EQ(recovered.value()->last_sequence(), resumed)
          << ctx << " recovery is not deterministic";

      // Resume exactly where the log says; the final answer must be
      // bit-identical to the oracle -- nothing lost, nothing doubled.
      for (size_t i = resumed; i < num_batches; ++i) {
        const Result<uint64_t> seq = recovered.value()->Ingest(d.batches[i]);
        ASSERT_TRUE(seq.ok()) << ctx;
        ASSERT_EQ(seq.value(), i + 1) << ctx;
      }
      ExpectWalMatchesReference(*recovered.value(), ctx);
      if (HasFatalFailure() || HasNonfatalFailure()) return;
    }
  }
}

// One seeded iteration of the random schedule sweep: a generated fault
// schedule (background append rejections plus crash/fail one-shots across
// all three WAL sites), random batching, random segment sizes and random
// checkpoints. Clean rejections retry the same batch (the writer is alive
// and the sequence was not consumed); crashes recover and resume from
// whatever sequence the log proves durable.
void RunWalChaosIteration(uint64_t seed, const std::string& wal_dir,
                          const std::string& snap_dir) {
  const WalChaosData& d = WalData();
  Rng rng(seed);
  const size_t batch_sizes[] = {8, 32, 128};
  const uint64_t segment_sizes[] = {512, 2048, 16384};
  const double checkpoint_levels[] = {0.0, 0.1, 0.25};
  const std::vector<std::vector<WalEvent>> batches =
      BatchWalEvents(d.events, batch_sizes[rng.NextBounded(3)]);
  const IngestOptions options =
      WalChaosOptions(segment_sizes[rng.NextBounded(3)]);
  const double checkpoint_p = checkpoint_levels[rng.NextBounded(3)];
  const propgen::FaultSchedule schedule =
      propgen::GenWalFaultSchedule(rng, batches.size());
  const std::string ctx = WalCtx(seed, "wal schedule");

  int crashes = 0;
  int rejects = 0;
  int checkpoints = 0;
  FaultInjector injector(schedule.injector_seed);
  schedule.ApplyTo(&injector);
  {
    ScopedFaultInjection scoped(&injector);
    std::unique_ptr<IngestStore> store =
        ReopenWalStore(wal_dir, snap_dir, options, nullptr, ctx);
    ASSERT_TRUE(store != nullptr) << ctx;
    ASSERT_EQ(store->last_sequence(), 0u) << ctx << " dirty scratch dir";
    size_t next = 0;  // index of the next batch to ingest == acked count
    while (next < batches.size()) {
      const Result<uint64_t> seq = store->Ingest(batches[next]);
      if (seq.ok()) {
        ASSERT_EQ(seq.value(), next + 1) << ctx;
        ++next;
        if (rng.NextBernoulli(checkpoint_p)) {
          ASSERT_TRUE(store->Checkpoint().ok()) << ctx;
          ++checkpoints;
        }
        continue;
      }
      if (!store->wal().dead()) {
        // Clean rejection: the append was refused before any byte was
        // written, the sequence was not consumed and the live data was
        // not touched. Retrying the SAME batch is the correct move.
        ++rejects;
        ASSERT_LT(rejects, 10000) << ctx << " reject storm never cleared";
        continue;
      }
      // Crash: the writer is dead. Recover and resume from whatever the
      // log proves durable -- at least every acked batch, at most one
      // more (the record that was in flight when the crash hit).
      ++crashes;
      store.reset();
      IngestRecoveryReport report;
      store = ReopenWalStore(wal_dir, snap_dir, options, &report, ctx);
      ASSERT_TRUE(store != nullptr) << ctx;
      const uint64_t resumed = store->last_sequence();
      ASSERT_GE(resumed, next) << ctx << " lost an acked record";
      ASSERT_LE(resumed, next + 1) << ctx << " replayed a phantom record";
      next = static_cast<size_t>(resumed);
    }
  }
  // Fault-free final recovery: the complete stream must have landed, and
  // the scorecards must be bit-identical to the scalar oracle.
  IngestRecoveryReport report;
  Result<std::unique_ptr<IngestStore>> final_store =
      IngestStore::Open(wal_dir, snap_dir, options, &report);
  ASSERT_TRUE(final_store.ok()) << ctx;
  ASSERT_EQ(final_store.value()->last_sequence(), batches.size()) << ctx;
  ExpectWalMatchesReference(*final_store.value(), ctx);

  if (ChaosLogEnabled()) {
    std::fprintf(stderr,
                 "[walchaos] seed=%llu batches=%zu crashes=%d rejects=%d "
                 "checkpoints=%d injected=%llu\n",
                 static_cast<unsigned long long>(seed), batches.size(),
                 crashes, rejects, checkpoints,
                 static_cast<unsigned long long>(injector.stats().any()));
  }
}

TEST(WalChaosTest, SeededScheduleSweepConvergesToOracle) {
  for (uint64_t seed : WalChaosSeedSchedule(0x57A1C4A05ull)) {
    const std::string wal_dir = SnapshotChaosDir("walchaos_wal");
    const std::string snap_dir = SnapshotChaosDir("walchaos_snap");
    RunWalChaosIteration(seed, wal_dir, snap_dir);
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
}

}  // namespace
}  // namespace expbsi
