#ifndef EXPBSI_TESTS_TEST_UTIL_H_
#define EXPBSI_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace expbsi {
namespace testing_util {

// Random set of uint32 values: `n` draws bounded by `universe`, with a bias
// knob so some tests exercise dense containers.
inline std::set<uint32_t> RandomSet(Rng& rng, int n, uint32_t universe) {
  std::set<uint32_t> out;
  for (int i = 0; i < n; ++i) {
    out.insert(static_cast<uint32_t>(rng.NextBounded(universe)));
  }
  return out;
}

// Random position->value map (values in [1, max_value]).
inline std::map<uint32_t, uint64_t> RandomValueMap(Rng& rng, int n,
                                                   uint32_t universe,
                                                   uint64_t max_value) {
  std::map<uint32_t, uint64_t> out;
  for (int i = 0; i < n; ++i) {
    out[static_cast<uint32_t>(rng.NextBounded(universe))] =
        1 + rng.NextBounded(max_value);
  }
  return out;
}

inline std::vector<std::pair<uint32_t, uint64_t>> ToPairVector(
    const std::map<uint32_t, uint64_t>& m) {
  return {m.begin(), m.end()};
}

}  // namespace testing_util
}  // namespace expbsi

#endif  // EXPBSI_TESTS_TEST_UTIL_H_
