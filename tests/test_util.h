#ifndef EXPBSI_TESTS_TEST_UTIL_H_
#define EXPBSI_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace expbsi {
namespace testing_util {

// Random set of exactly min(n, universe) distinct uint32 values below
// `universe`. Draws are deduplicated until the target size is reached (or
// the universe is exhausted), so tests asking for n elements get n elements
// even when the universe is small and collisions are frequent.
inline std::set<uint32_t> RandomSet(Rng& rng, int n, uint32_t universe) {
  std::set<uint32_t> out;
  const size_t target =
      std::min<size_t>(static_cast<size_t>(n < 0 ? 0 : n), universe);
  while (out.size() < target) {
    out.insert(static_cast<uint32_t>(rng.NextBounded(universe)));
  }
  return out;
}

// Random position->value map (values in [1, max_value]) with exactly
// min(n, universe) distinct positions, deduplicated like RandomSet.
inline std::map<uint32_t, uint64_t> RandomValueMap(Rng& rng, int n,
                                                   uint32_t universe,
                                                   uint64_t max_value) {
  std::map<uint32_t, uint64_t> out;
  const size_t target =
      std::min<size_t>(static_cast<size_t>(n < 0 ? 0 : n), universe);
  while (out.size() < target) {
    out[static_cast<uint32_t>(rng.NextBounded(universe))] =
        1 + rng.NextBounded(max_value);
  }
  return out;
}

inline std::vector<std::pair<uint32_t, uint64_t>> ToPairVector(
    const std::map<uint32_t, uint64_t>& m) {
  return {m.begin(), m.end()};
}

}  // namespace testing_util
}  // namespace expbsi

#endif  // EXPBSI_TESTS_TEST_UTIL_H_
