// Observability suite (docs/OBSERVABILITY.md): the metrics registry
// (counters / gauges / log-linear histograms, Prometheus + JSON
// exposition), the per-query trace tree with deterministic span ids, the
// slow-query log, the instrumentation-overhead contract, and the
// chaos-visibility guarantee that an injected tier.fetch fault surfaces as
// monotone counter increments in one scraped registry dump plus one
// slow-query trace tree.
//
// Suite naming: ObservabilityConcurrencyTest and ObservabilityChaosTest
// intentionally match the tsan CI filter ('ConcurrencyTest|...|ChaosTest')
// so the hammer test runs under TSan.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bsi/bsi.h"
#include "bsi/bsi_aggregate.h"
#include "cluster/adhoc_cluster.h"
#include "common/fault_injector.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "engine/experiment_data.h"
#include "expdata/generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace expbsi {
namespace {

using obs::GetCounter;
using obs::GetGauge;
using obs::GetHistogram;
using obs::MetricsRegistry;

#if !defined(EXPBSI_NO_METRICS)

// ---------------------------------------------------------------------------
// Registry primitives
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CounterAccumulatesAndIsStableByName) {
  obs::Counter& c = GetCounter("test.obs.counter_basic");
  const uint64_t before = c.Value();
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), before + 42);
  // Same name -> same object (addresses are stable for the process life).
  EXPECT_EQ(&c, &GetCounter("test.obs.counter_basic"));
}

TEST(MetricsRegistryTest, GaugeMovesBothWays) {
  obs::Gauge& g = GetGauge("test.obs.gauge_basic");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 4.0);
  g.Sub(5.0);
  EXPECT_DOUBLE_EQ(g.Value(), -1.0);
}

TEST(MetricsRegistryTest, HistogramBucketIndexMonotoneAndBoundsConsistent) {
  // BucketIndex must be monotone in the value and each value must fall at or
  // below its bucket's inclusive upper bound but above the previous one's.
  const std::vector<uint64_t> samples = {
      0,      1,         2,       3,       4,       5,      7,
      8,      9,         15,      16,      17,      63,     64,
      100,    1000,      4095,    4096,    1 << 20, 1u << 31,
      1ull << 40,        (1ull << 63) - 1, 1ull << 63, ~0ull};
  int prev_idx = -1;
  for (uint64_t v : samples) {
    const int idx = obs::Histogram::BucketIndex(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, obs::Histogram::kNumBuckets);
    EXPECT_GE(idx, prev_idx) << "BucketIndex not monotone at " << v;
    EXPECT_LE(v, obs::Histogram::BucketUpperBound(idx)) << v;
    if (idx > 0) {
      EXPECT_GT(v, obs::Histogram::BucketUpperBound(idx - 1)) << v;
    }
    prev_idx = idx;
  }
  // Bounds themselves are monotone across the whole range.
  for (int i = 1; i < obs::Histogram::kNumBuckets; ++i) {
    EXPECT_GE(obs::Histogram::BucketUpperBound(i),
              obs::Histogram::BucketUpperBound(i - 1));
  }
}

TEST(MetricsRegistryTest, HistogramViewCountsEveryRecord) {
  obs::Histogram& h = GetHistogram("test.obs.hist_view");
  uint64_t expect_sum = 0;
  const std::vector<uint64_t> values = {0, 1, 1, 7, 100, 100, 5000, 1 << 22};
  for (uint64_t v : values) {
    h.Record(v);
    expect_sum += v;
  }
  const obs::MetricsSnapshot::HistogramView view = h.View();
  EXPECT_EQ(view.count, values.size());
  EXPECT_EQ(view.sum, expect_sum);
  uint64_t bucketed = 0;
  uint64_t prev_le = 0;
  for (size_t i = 0; i < view.buckets.size(); ++i) {
    const auto& [le, n] = view.buckets[i];
    if (i > 0) {
      EXPECT_GT(le, prev_le);  // strictly ascending bounds
    }
    EXPECT_GT(n, 0u);  // only non-empty buckets in the view
    bucketed += n;
    prev_le = le;
  }
  EXPECT_EQ(bucketed, view.count);
}

TEST(MetricsRegistryTest, PrometheusExpositionIsWellFormed) {
  GetCounter("test.obs.prom_counter").Add(3);
  GetGauge("test.obs.prom_gauge").Set(1.5);
  GetHistogram("test.obs.prom_hist").Record(10);
  GetHistogram("test.obs.prom_hist").Record(1000);
  const std::string text = MetricsRegistry::Global().RenderPrometheus();

  EXPECT_NE(text.find("# TYPE expbsi_test_obs_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("expbsi_test_obs_prom_counter 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE expbsi_test_obs_prom_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE expbsi_test_obs_prom_hist histogram"),
            std::string::npos);
  EXPECT_NE(text.find("expbsi_test_obs_prom_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("expbsi_test_obs_prom_hist_count 2"),
            std::string::npos);
  EXPECT_NE(text.find("expbsi_test_obs_prom_hist_sum 1010"),
            std::string::npos);
  // No unflattened dots may survive in sample names.
  EXPECT_EQ(text.find("expbsi_test.obs"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonDumpContainsRegisteredMetrics) {
  GetCounter("test.obs.json_counter").Add(7);
  const std::string json = MetricsRegistry::Global().RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json_counter\": 7"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesInPlaceKeepingAddressesValid) {
  obs::Counter& c = GetCounter("test.obs.reset_counter");
  c.Add(9);
  MetricsRegistry::Global().ResetForTesting();
  EXPECT_EQ(c.Value(), 0u);
  c.Add(2);  // the cached reference keeps working after the reset
  EXPECT_EQ(c.Value(), 2u);
  EXPECT_EQ(GetCounter("test.obs.reset_counter").Value(), 2u);
}

#endif  // !EXPBSI_NO_METRICS

// ---------------------------------------------------------------------------
// Trace tree
// ---------------------------------------------------------------------------

// Runs the same nested-span scenario and returns the recorded spans.
std::vector<obs::QueryTrace::Span> RunCannedTrace(obs::QueryTrace* trace) {
  obs::ScopedTrace install(trace);
  {
    obs::ScopedSpan parse("parse");
    parse.AddAttr("text_bytes", 12);
  }
  {
    obs::ScopedSpan exec("execute");
    {
      obs::ScopedSpan seg("segment");
      seg.AddAttr("segment", 0);
    }
    {
      obs::ScopedSpan seg("segment");
      seg.AddAttr("segment", 1);
    }
  }
  return trace->spans();
}

TEST(TraceTest, SpanIdsAreDeterministicCreationOrder) {
  obs::QueryTrace t1("canned");
  obs::QueryTrace t2("canned");
  std::vector<obs::QueryTrace::Span> s1, s2;
  {
    obs::ScopedTrace done1(nullptr);  // ensure no ambient trace leaks in
    s1 = RunCannedTrace(&t1);
    s2 = RunCannedTrace(&t2);
  }
  ASSERT_EQ(s1.size(), 5u);  // root + parse + execute + 2 segments
  ASSERT_EQ(s2.size(), s1.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].id, i + 1);  // 1-based creation order
    EXPECT_EQ(s1[i].id, s2[i].id);
    EXPECT_EQ(s1[i].parent_id, s2[i].parent_id);
    EXPECT_EQ(s1[i].name, s2[i].name);
    EXPECT_LT(s1[i].parent_id, s1[i].id);  // parents precede children
  }
  EXPECT_EQ(s1[0].name, "canned");
  EXPECT_EQ(s1[0].parent_id, 0u);
  EXPECT_EQ(s1[1].name, "parse");
  EXPECT_EQ(s1[1].parent_id, 1u);
  EXPECT_EQ(s1[3].name, "segment");
  EXPECT_EQ(s1[3].parent_id, 3u);  // child of "execute"
}

TEST(TraceTest, TextTreeIndentsChildrenAndCarriesAttrs) {
  obs::QueryTrace trace("query");
  RunCannedTrace(&trace);
  const std::string text = trace.ToText();
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("  - parse"), std::string::npos);
  EXPECT_NE(text.find("    - segment"), std::string::npos);
  EXPECT_NE(text.find("segment=1"), std::string::npos);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"name\": \"query\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
}

TEST(TraceTest, ScopedSpanWithoutActiveTraceIsNoop) {
  obs::ScopedSpan span("orphan");
  EXPECT_FALSE(span.active());
  span.AddAttr("ignored", 1);  // must not crash
  EXPECT_EQ(obs::CurrentTrace(), nullptr);
}

TEST(TraceTest, TracesNestAndRestore) {
  obs::QueryTrace outer("outer");
  obs::QueryTrace inner("inner");
  {
    obs::ScopedTrace a(&outer);
    EXPECT_EQ(obs::CurrentTrace(), &outer);
    {
      obs::ScopedTrace b(&inner);
      EXPECT_EQ(obs::CurrentTrace(), &inner);
    }
    EXPECT_EQ(obs::CurrentTrace(), &outer);
  }
  EXPECT_EQ(obs::CurrentTrace(), nullptr);
}

TEST(TraceTest, SlowQueryLogFiresAtThresholdZero) {
  obs::SetSlowQueryThresholdMsForTesting(0.0);
  {
    obs::QueryTrace trace("slow_canary");
    obs::ScopedTrace install(&trace);
    obs::ScopedSpan work("work");
  }
  const std::string text = obs::LastSlowQueryTextForTesting();
  EXPECT_NE(text.find("slow_canary"), std::string::npos);
  EXPECT_NE(text.find("work"), std::string::npos);
  obs::SetSlowQueryThresholdMsForTesting(-1.0);  // disable again
}

#if !defined(EXPBSI_NO_METRICS)

// ---------------------------------------------------------------------------
// Concurrency: hammer the registry from pool workers (runs under TSan via
// the CI filter).
// ---------------------------------------------------------------------------

TEST(ObservabilityConcurrencyTest, RegistryHammerFromThreadPoolWorkers) {
  constexpr int kTasks = 64;
  constexpr int kOpsPerTask = 2000;
  obs::Counter& counter = GetCounter("test.obs.hammer_counter");
  obs::Gauge& gauge = GetGauge("test.obs.hammer_gauge");
  obs::Histogram& hist = GetHistogram("test.obs.hammer_hist");
  const uint64_t count_before = counter.Value();
  const uint64_t hist_before = hist.Count();
  gauge.Set(0.0);
  {
    ThreadPool pool(8);
    for (int t = 0; t < kTasks; ++t) {
      pool.Submit([&counter, &gauge, &hist] {
        for (int i = 0; i < kOpsPerTask; ++i) {
          counter.Add();
          gauge.Add(1.0);
          hist.Record(static_cast<uint64_t>(i));
          // Concurrent registration against the same names must also be
          // safe, not just increments on cached references.
          GetCounter("test.obs.hammer_counter2").Add();
        }
        gauge.Sub(static_cast<double>(kOpsPerTask));
      });
    }
    pool.Wait();
    // Concurrent scrapes while (potentially) racing with late increments.
    (void)MetricsRegistry::Global().Scrape();
    (void)MetricsRegistry::Global().RenderPrometheus();
  }
  EXPECT_EQ(counter.Value() - count_before,
            static_cast<uint64_t>(kTasks) * kOpsPerTask);
  EXPECT_EQ(hist.Count() - hist_before,
            static_cast<uint64_t>(kTasks) * kOpsPerTask);
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);  // every Add matched by the Sub
}

// ---------------------------------------------------------------------------
// Overhead contract: increments are cheap and the kernels publish batched
// totals, not per-word registry traffic. The compile-mode comparison
// (instrumented vs EXPBSI_NO_METRICS) is pinned by the committed
// BENCH_pr5.json / BENCH_pr5_nometrics.json pair; this test pins the
// in-binary properties that keep that delta small.
// ---------------------------------------------------------------------------

TEST(MetricsOverheadTest, CounterAddStaysCheap) {
  obs::Counter& c = GetCounter("test.obs.overhead_counter");
  constexpr int kAdds = 1000000;
  Stopwatch wall;
  for (int i = 0; i < kAdds; ++i) c.Add();
  const double ns_per_add = wall.ElapsedSeconds() * 1e9 / kAdds;
  // A relaxed fetch_add on a thread-striped padded cell is single-digit
  // nanoseconds; 200ns leaves two orders of magnitude of slack for
  // sanitizer builds and noisy CI machines.
  EXPECT_LT(ns_per_add, 200.0) << "counter Add too slow";
  EXPECT_GE(c.Value(), static_cast<uint64_t>(kAdds));
}

TEST(MetricsOverheadTest, SumBsiKernelPublishesBatchedCounts) {
  Rng rng(2024);
  std::vector<Bsi> days;
  std::vector<const Bsi*> ptrs;
  for (int d = 0; d < 8; ++d) {
    const auto values = testing_util::RandomValueMap(rng, 4000, 20000,
                                                     1u << 15);
    days.push_back(Bsi::FromPairs(testing_util::ToPairVector(values)));
  }
  for (const Bsi& b : days) ptrs.push_back(&b);

  obs::Counter& calls = GetCounter("kernel.csa_calls");
  obs::Counter& words = GetCounter("kernel.csa_words_processed");
  obs::Counter& slices = GetCounter("kernel.sum_slices_touched");
  const uint64_t calls_before = calls.Value();
  const uint64_t words_before = words.Value();
  const uint64_t slices_before = slices.Value();

  const Bsi sum = SumBsi(ptrs);
  ASSERT_GT(sum.Sum(), 0u);

  const uint64_t calls_delta = calls.Value() - calls_before;
  const uint64_t words_delta = words.Value() - words_before;
  EXPECT_GT(slices.Value() - slices_before, 0u);
  ASSERT_GT(calls_delta, 0u);
  // The batching contract: one publish per kernel call that covers many
  // words of work. If the kernel ever started issuing registry ops
  // per-word, calls_delta would explode relative to the work done and this
  // ratio would collapse.
  EXPECT_GT(words_delta / calls_delta, 32u)
      << "kernel publishes too often relative to work per call";
}

// ---------------------------------------------------------------------------
// Chaos visibility (acceptance criterion): one injected tier.fetch
// corruption must show up as fault -> retries -> recovery in a single
// scraped registry dump, and in one slow-query trace tree.
// ---------------------------------------------------------------------------

TEST(ObservabilityChaosTest, InjectedTierCorruptionVisibleEndToEnd) {
  DatasetConfig config;
  config.num_users = 3000;
  config.num_segments = 4;
  config.num_days = 5;
  config.start_date = 10;
  config.seed = 77;
  ExperimentConfig exp;
  exp.strategy_ids = {11, 12};
  exp.arm_effects = {1.0, 1.0};
  MetricConfig metric;
  metric.metric_id = 5;
  metric.daily_participation = 0.5;
  const Dataset dataset = GenerateDataset(config, {exp}, {metric}, {});
  const ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);

  auto counter_value = [](const obs::MetricsSnapshot& snap,
                          const std::string& name) -> uint64_t {
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  const obs::MetricsSnapshot before = MetricsRegistry::Global().Scrape();

  FaultInjector injector(/*seed=*/7);
  injector.ScheduleFault(fault_sites::kTierFetch, /*op_index=*/0,
                         FaultKind::kCorrupt);
  obs::SetSlowQueryThresholdMsForTesting(0.0);
  AdhocCluster::QueryStats stats;
  {
    ScopedFaultInjection guard(&injector);
    AdhocCluster cluster(&dataset, &bsi, AdhocClusterConfig{});
    auto result = cluster.QueryBsi({11}, {5}, 10, 14);
    ASSERT_TRUE(result.ok()) << result.status().message();
    stats = std::move(result).value();
  }
  obs::SetSlowQueryThresholdMsForTesting(-1.0);

  // The per-query stats saw the fault and its recovery.
  EXPECT_GE(stats.degraded.retries, 1);
  EXPECT_GE(stats.degraded.faults_survived, 1);
  EXPECT_TRUE(stats.degraded.lost_segments.empty());

  // One registry scrape shows the whole causal chain, each counter a
  // monotone increment over the pre-query snapshot.
  const obs::MetricsSnapshot after = MetricsRegistry::Global().Scrape();
  const std::vector<std::string> chain = {
      "fault.injected",          "fault.injected_corruptions",
      "tier.injected_faults",    "retry.attempts",
      "retry.retries",           "retry.recovered_ops",
      "trace.slow_queries",
  };
  for (const std::string& name : chain) {
    EXPECT_GT(counter_value(after, name), counter_value(before, name))
        << name << " did not increase";
  }
  for (const auto& [name, value] : before.counters) {
    EXPECT_GE(counter_value(after, name), value)
        << name << " went backwards";
  }
  const std::string prom = MetricsRegistry::Global().RenderPrometheus();
  EXPECT_NE(prom.find("expbsi_tier_injected_faults"), std::string::npos);

  // And the query's own trace tree records the retried fetch.
  ASSERT_NE(stats.trace, nullptr);
  const std::string tree = stats.trace->ToText();
  EXPECT_NE(tree.find("adhoc_query_bsi"), std::string::npos);
  EXPECT_NE(tree.find("segment_execute"), std::string::npos);
  EXPECT_NE(tree.find("fetch_retries"), std::string::npos);
  const std::string slow = obs::LastSlowQueryTextForTesting();
  EXPECT_NE(slow.find("adhoc_query_bsi"), std::string::npos);
}

#endif  // !EXPBSI_NO_METRICS

}  // namespace
}  // namespace expbsi
